//! Rendering simulation happenings into raw log lines.
//!
//! All formatting goes through the `craylog` emitters, so everything the
//! simulator writes is guaranteed parseable by the same crate's parsers —
//! the corruption injected for robustness testing is added *on top* by the
//! test harnesses, not here.

use bw_faults::{FaultEvent, FaultKind};
use bw_topology::{Location, Machine};
use craylog::alps::{AlpsRecord, AppExitRecord, AppLaunchErrRecord, AppPlacedRecord};
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::{NetwatchEvent, NetwatchRecord};
use craylog::syslog::SyslogRecord;
use craylog::templates;
use craylog::torque::TorqueRecord;
use logdiver_types::{
    AppId, ExitStatus, JobId, NodeId, NodeSet, NodeType, SimDuration, Timestamp, UserId,
};

use crate::output::{LogStream, SimOutput};

/// Emits the Torque start record for a job.
pub fn job_start(
    out: &mut dyn SimOutput,
    t: Timestamp,
    job: JobId,
    user: UserId,
    queue: &str,
    nodes: u32,
    walltime: SimDuration,
) {
    let rec = TorqueRecord::start(t, job, user, queue, nodes, walltime.as_secs());
    out.log_line(LogStream::Torque, &rec.to_string());
}

/// Emits the Torque end record for a job.
#[allow(clippy::too_many_arguments)]
pub fn job_end(
    out: &mut dyn SimOutput,
    t: Timestamp,
    job: JobId,
    user: UserId,
    queue: &str,
    nodes: u32,
    walltime: SimDuration,
    started: Timestamp,
    exit_status: i32,
) {
    let rec = TorqueRecord::end(
        t,
        job,
        user,
        queue,
        nodes,
        walltime.as_secs(),
        started,
        exit_status,
    );
    out.log_line(LogStream::Torque, &rec.to_string());
}

/// Emits the ALPS placement record for an application.
#[allow(clippy::too_many_arguments)]
pub fn app_placed(
    out: &mut dyn SimOutput,
    t: Timestamp,
    apid: AppId,
    job: JobId,
    user: UserId,
    command: &str,
    node_type: NodeType,
    nodes: &NodeSet,
) {
    let rec = AlpsRecord::Placed(AppPlacedRecord {
        timestamp: t,
        apid,
        job,
        user,
        command: command.into(),
        node_type,
        width: nodes.len() as u32,
        nodes: nodes.clone(),
    });
    out.log_line(LogStream::Alps, &rec.to_string());
}

/// Emits the ALPS exit record for an application.
pub fn app_exit(
    out: &mut dyn SimOutput,
    t: Timestamp,
    apid: AppId,
    exit: ExitStatus,
    runtime: SimDuration,
) {
    let rec = AlpsRecord::Exit(AppExitRecord {
        timestamp: t,
        apid,
        exit,
        runtime_secs: runtime.as_secs().max(0),
    });
    out.log_line(LogStream::Alps, &rec.to_string());
}

/// Emits an ALPS launch-failure record.
pub fn launch_error(out: &mut dyn SimOutput, t: Timestamp, apid: AppId, reason: &str) {
    let rec = AlpsRecord::LaunchErr(AppLaunchErrRecord {
        timestamp: t,
        apid,
        reason: reason.to_string(),
    });
    out.log_line(LogStream::Alps, &rec.to_string());
    // The launcher also complains in syslog from a service host.
    let sys = SyslogRecord {
        timestamp: t,
        host: "boot".into(),
        tag: "apsched".into(),
        message: templates::error_message(
            logdiver_types::ErrorCategory::AlpsLaunchFailure,
            apid.value() as u32,
        ),
    };
    out.log_line(LogStream::Syslog, &sys.to_string());
}

/// Emits the log evidence of a fault event (call only when detected).
///
/// Every lethal hardware fault produces a structured hardware-error record
/// keyed by location, plus one or more free-text syslog lines; interconnect
/// and filesystem events produce their own streams.
pub fn fault_evidence(
    out: &mut dyn SimOutput,
    machine: &Machine,
    event: &FaultEvent,
    variant: u32,
) {
    let t = event.time;
    match &event.kind {
        FaultKind::NodeCrash { nid, cause } => {
            let cat = cause.category();
            hwerr_line(out, t + SimDuration::from_secs(1), *nid, cat, variant);
            syslog_error(out, t, *nid, cat, variant);
            // The heartbeat sweep declares the node dead shortly after.
            let dead = logdiver_types::ErrorCategory::NodeHeartbeatFault;
            hwerr_line(out, t + SimDuration::from_secs(31), *nid, dead, variant);
            smw_line(out, t + SimDuration::from_secs(31), dead, variant);
        }
        FaultKind::GpuFault { nid, kind } => {
            let cat = kind.category();
            syslog_error(out, t, *nid, cat, variant);
            hwerr_line(out, t + SimDuration::from_secs(5), *nid, cat, variant);
        }
        FaultKind::BladeFailure { blade } => {
            let nid = NodeId::new(blade * 4);
            let cat = logdiver_types::ErrorCategory::BladeControllerFailure;
            hwerr_line(out, t + SimDuration::from_secs(2), nid, cat, variant);
            smw_line(out, t, cat, variant);
        }
        FaultKind::GeminiLinkFailure { link, stall } => {
            out.log_line(
                LogStream::Netwatch,
                &NetwatchRecord {
                    timestamp: t,
                    event: NetwatchEvent::LinkFailed {
                        coord: link.coord,
                        dim: link.dim,
                    },
                }
                .to_string(),
            );
            out.log_line(
                LogStream::Netwatch,
                &NetwatchRecord {
                    timestamp: t + SimDuration::from_secs(3),
                    event: NetwatchEvent::RerouteStart {
                        affected: machine.torus().link_count(),
                    },
                }
                .to_string(),
            );
            out.log_line(
                LogStream::Netwatch,
                &NetwatchRecord {
                    timestamp: t + *stall,
                    event: NetwatchEvent::RerouteDone {
                        duration_secs: stall.as_secs().max(0) as u32,
                    },
                }
                .to_string(),
            );
            // The nodes behind the Gemini see the link drop too.
            let [a, _b] = machine.torus().nids_at(link.coord);
            syslog_error(
                out,
                t,
                a,
                logdiver_types::ErrorCategory::GeminiLinkFailure,
                variant,
            );
            smw_line(
                out,
                t + SimDuration::from_secs(3),
                logdiver_types::ErrorCategory::GeminiRouteReconfig,
                variant,
            );
        }
        FaultKind::LustreOstFailure { ost } => {
            let sys = SyslogRecord {
                timestamp: t,
                host: machine.lustre().oss_of(*ost).to_string().into(),
                tag: "lustre".into(),
                message: format!(
                    "LustreError: {}: {} failed over, client I/O will block",
                    137 + variant % 20,
                    ost
                ),
            };
            out.log_line(LogStream::Syslog, &sys.to_string());
            // Evictions ripple to a few random-ish clients.
            for k in 0..3u32 {
                let nid = NodeId::new(
                    (variant.wrapping_mul(2_654_435_761).wrapping_add(k * 97))
                        % machine.compute_nodes().max(1),
                );
                syslog_error(
                    out,
                    t + SimDuration::from_secs(5 + k as i64),
                    nid,
                    logdiver_types::ErrorCategory::LustreClientEviction,
                    variant + k,
                );
            }
        }
        FaultKind::LustreMdsFailover { mds } => {
            let sys = SyslogRecord {
                timestamp: t,
                host: mds.to_string().into(),
                tag: "lustre".into(),
                message: templates::error_message(
                    logdiver_types::ErrorCategory::LustreMdsFailover,
                    variant,
                ),
            };
            out.log_line(LogStream::Syslog, &sys.to_string());
        }
        FaultKind::MemoryCeFlood { nid } => {
            // A flood: a burst of correctable-error lines over ~2 minutes.
            let n = 4 + variant % 24;
            for k in 0..n {
                syslog_error(
                    out,
                    t + SimDuration::from_secs((k as i64 * 120) / n as i64),
                    *nid,
                    logdiver_types::ErrorCategory::MemoryCorrectable,
                    variant + k,
                );
            }
            hwerr_line(
                out,
                t,
                *nid,
                logdiver_types::ErrorCategory::MemoryCorrectable,
                variant,
            );
        }
        FaultKind::GpuPageRetirement { nid } => {
            syslog_error(
                out,
                t,
                *nid,
                logdiver_types::ErrorCategory::GpuPageRetirement,
                variant,
            );
        }
        FaultKind::Maintenance { blade } => {
            let nid = NodeId::new(blade * 4);
            syslog_error(
                out,
                t,
                nid,
                logdiver_types::ErrorCategory::MaintenanceNotice,
                variant,
            );
            smw_line(
                out,
                t,
                logdiver_types::ErrorCategory::MaintenanceNotice,
                variant,
            );
        }
    }
}

/// Emits one benign chatter line.
pub fn noise(out: &mut dyn SimOutput, machine: &Machine, t: Timestamp, variant: u32) {
    let (tag, message) = templates::noise_message(variant);
    let host = if variant.is_multiple_of(5) {
        "smw".to_string()
    } else {
        NodeId::new(variant.wrapping_mul(48_271) % machine.total_nodes().max(1)).hostname()
    };
    let rec = SyslogRecord {
        timestamp: t,
        host: host.into(),
        tag: tag.into(),
        message,
    };
    out.log_line(LogStream::Syslog, &rec.to_string());
}

fn hwerr_line(
    out: &mut dyn SimOutput,
    t: Timestamp,
    nid: NodeId,
    cat: logdiver_types::ErrorCategory,
    variant: u32,
) {
    let rec = HwErrRecord::new(t, Location::of_nid(nid), cat, format!("v={variant}"));
    out.log_line(LogStream::HwErr, &rec.to_string());
}

fn syslog_error(
    out: &mut dyn SimOutput,
    t: Timestamp,
    nid: NodeId,
    cat: logdiver_types::ErrorCategory,
    variant: u32,
) {
    let rec = SyslogRecord::from_node(
        t,
        nid,
        templates::tag_for(cat),
        templates::error_message(cat, variant),
    );
    out.log_line(LogStream::Syslog, &rec.to_string());
}

fn smw_line(
    out: &mut dyn SimOutput,
    t: Timestamp,
    cat: logdiver_types::ErrorCategory,
    variant: u32,
) {
    let rec = SyslogRecord {
        timestamp: t,
        host: "smw".into(),
        tag: templates::tag_for(cat).into(),
        message: templates::error_message(cat, variant),
    };
    out.log_line(LogStream::Syslog, &rec.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::MemoryOutput;
    use bw_faults::{FaultEvent, GpuFaultKind, NodeCrashCause};
    use bw_topology::Machine;

    fn t0() -> Timestamp {
        Timestamp::PRODUCTION_EPOCH
    }

    #[test]
    fn emitted_alps_lines_parse_back() {
        let mut out = MemoryOutput::new();
        let nodes: NodeSet = (0..4).map(NodeId::new).collect();
        app_placed(
            &mut out,
            t0(),
            AppId::new(5),
            JobId::new(2),
            UserId::new(1),
            "namd2",
            NodeType::Xe,
            &nodes,
        );
        app_exit(
            &mut out,
            t0(),
            AppId::new(5),
            ExitStatus::SUCCESS,
            SimDuration::from_hours(1),
        );
        launch_error(&mut out, t0(), AppId::new(6), "placement timeout");
        for line in &out.alps {
            AlpsRecord::parse(line).unwrap();
        }
        assert_eq!(out.alps.len(), 3);
        assert_eq!(out.syslog.len(), 1, "launch error also hits syslog");
    }

    #[test]
    fn emitted_torque_lines_parse_back() {
        let mut out = MemoryOutput::new();
        job_start(
            &mut out,
            t0(),
            JobId::new(9),
            UserId::new(3),
            "normal",
            128,
            SimDuration::from_hours(4),
        );
        job_end(
            &mut out,
            t0() + SimDuration::from_hours(2),
            JobId::new(9),
            UserId::new(3),
            "normal",
            128,
            SimDuration::from_hours(4),
            t0(),
            0,
        );
        for line in &out.torque {
            TorqueRecord::parse(line).unwrap();
        }
    }

    #[test]
    fn node_crash_evidence_has_hwerr_and_syslog() {
        let machine = Machine::blue_waters_scaled(64);
        let mut out = MemoryOutput::new();
        let ev = FaultEvent {
            time: t0(),
            kind: FaultKind::NodeCrash {
                nid: NodeId::new(7),
                cause: NodeCrashCause::MachineCheck,
            },
            repair: SimDuration::from_hours(4),
            detected: true,
        };
        fault_evidence(&mut out, &machine, &ev, 3);
        assert_eq!(out.hwerr.len(), 2, "cause + heartbeat declaration");
        assert!(out.syslog.len() >= 2);
        for line in &out.hwerr {
            HwErrRecord::parse(line).unwrap();
        }
        for line in &out.syslog {
            SyslogRecord::parse(line).unwrap();
        }
    }

    #[test]
    fn link_failure_emits_reroute_bracket() {
        let machine = Machine::blue_waters_scaled(64);
        let mut out = MemoryOutput::new();
        let link = machine.torus().link_by_index(0);
        let ev = FaultEvent {
            time: t0(),
            kind: FaultKind::GeminiLinkFailure {
                link,
                stall: SimDuration::from_secs(45),
            },
            repair: SimDuration::ZERO,
            detected: true,
        };
        fault_evidence(&mut out, &machine, &ev, 1);
        assert_eq!(out.netwatch.len(), 3);
        for line in &out.netwatch {
            NetwatchRecord::parse(line).unwrap();
        }
        assert!(out.netwatch[1].contains("REROUTE_START"));
        assert!(out.netwatch[2].contains("REROUTE_DONE"));
    }

    #[test]
    fn ce_flood_is_a_burst() {
        let machine = Machine::blue_waters_scaled(64);
        let mut out = MemoryOutput::new();
        let ev = FaultEvent {
            time: t0(),
            kind: FaultKind::MemoryCeFlood {
                nid: NodeId::new(3),
            },
            repair: SimDuration::ZERO,
            detected: true,
        };
        fault_evidence(&mut out, &machine, &ev, 20);
        assert!(
            out.syslog.len() >= 4,
            "flood should burst: {}",
            out.syslog.len()
        );
    }

    #[test]
    fn gpu_fault_evidence_parses() {
        let machine = Machine::blue_waters_scaled(64);
        let mut out = MemoryOutput::new();
        let nid = machine.nodes_of_type(NodeType::Xk).next().unwrap();
        let ev = FaultEvent {
            time: t0(),
            kind: FaultKind::GpuFault {
                nid,
                kind: GpuFaultKind::DoubleBitEcc,
            },
            repair: SimDuration::from_hours(1),
            detected: true,
        };
        fault_evidence(&mut out, &machine, &ev, 2);
        assert!(out.syslog[0].contains("Xid"));
        HwErrRecord::parse(&out.hwerr[0]).unwrap();
    }

    #[test]
    fn noise_lines_parse() {
        let machine = Machine::blue_waters_scaled(64);
        let mut out = MemoryOutput::new();
        for v in 0..40 {
            noise(&mut out, &machine, t0(), v);
        }
        for line in &out.syslog {
            SyslogRecord::parse(line).unwrap();
        }
        assert_eq!(out.syslog.len(), 40);
    }
}
