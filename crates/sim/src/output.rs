//! Simulation output sinks.
//!
//! The simulator writes log *lines* (already formatted by `craylog`
//! emitters) plus ground-truth records through the [`SimOutput`] trait, so
//! a 518-day full-scale run can stream to disk while tests keep everything
//! in memory.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use crate::truth::AppTruth;

/// Which log file a line belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogStream {
    /// Consolidated syslog (`messages`).
    Syslog,
    /// Hardware error log.
    HwErr,
    /// ALPS `apsys` log.
    Alps,
    /// Torque accounting log.
    Torque,
    /// HSN netwatch log.
    Netwatch,
}

impl LogStream {
    /// All streams in file order.
    pub const ALL: [LogStream; 5] = [
        LogStream::Syslog,
        LogStream::HwErr,
        LogStream::Alps,
        LogStream::Torque,
        LogStream::Netwatch,
    ];

    /// Conventional file name for the stream.
    pub const fn file_name(self) -> &'static str {
        match self {
            LogStream::Syslog => "messages.log",
            LogStream::HwErr => "hwerr.log",
            LogStream::Alps => "apsys.log",
            LogStream::Torque => "torque.log",
            LogStream::Netwatch => "netwatch.log",
        }
    }
}

/// Receives everything the simulation produces.
pub trait SimOutput {
    /// One formatted log line for `stream`.
    fn log_line(&mut self, stream: LogStream, line: &str);
    /// Ground truth for one completed application run.
    fn app_truth(&mut self, truth: AppTruth);
}

/// In-memory sink: five line vectors plus the ground-truth table.
#[derive(Debug, Default)]
pub struct MemoryOutput {
    /// Syslog lines.
    pub syslog: Vec<String>,
    /// Hardware-error lines.
    pub hwerr: Vec<String>,
    /// ALPS lines.
    pub alps: Vec<String>,
    /// Torque accounting lines.
    pub torque: Vec<String>,
    /// Netwatch lines.
    pub netwatch: Vec<String>,
    /// Ground truth per application.
    pub truths: Vec<AppTruth>,
}

impl MemoryOutput {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemoryOutput::default()
    }

    /// Total log lines across all streams.
    pub fn total_lines(&self) -> usize {
        self.syslog.len()
            + self.hwerr.len()
            + self.alps.len()
            + self.torque.len()
            + self.netwatch.len()
    }

    /// Lines of one stream.
    pub fn lines(&self, stream: LogStream) -> &[String] {
        match stream {
            LogStream::Syslog => &self.syslog,
            LogStream::HwErr => &self.hwerr,
            LogStream::Alps => &self.alps,
            LogStream::Torque => &self.torque,
            LogStream::Netwatch => &self.netwatch,
        }
    }
}

impl SimOutput for MemoryOutput {
    fn log_line(&mut self, stream: LogStream, line: &str) {
        let v = match stream {
            LogStream::Syslog => &mut self.syslog,
            LogStream::HwErr => &mut self.hwerr,
            LogStream::Alps => &mut self.alps,
            LogStream::Torque => &mut self.torque,
            LogStream::Netwatch => &mut self.netwatch,
        };
        v.push(line.to_string());
    }

    fn app_truth(&mut self, truth: AppTruth) {
        self.truths.push(truth);
    }
}

/// File-backed sink: one file per stream plus `ground_truth.jsonl`.
#[derive(Debug)]
pub struct FileOutput {
    dir: PathBuf,
    writers: Vec<BufWriter<File>>, // indexed like LogStream::ALL
    truth: BufWriter<File>,
    lines: u64,
}

impl FileOutput {
    /// Creates (or truncates) the five log files and the ground-truth file
    /// under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation.
    pub fn create(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut writers = Vec::with_capacity(LogStream::ALL.len());
        for s in LogStream::ALL {
            writers.push(BufWriter::new(File::create(dir.join(s.file_name()))?));
        }
        let truth = BufWriter::new(File::create(dir.join("ground_truth.jsonl"))?);
        Ok(FileOutput {
            dir,
            writers,
            truth,
            lines: 0,
        })
    }

    /// Directory the files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total lines written so far.
    pub fn total_lines(&self) -> u64 {
        self.lines
    }

    /// Flushes all buffers. Called automatically on drop; call explicitly to
    /// observe I/O errors.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing.
    pub fn flush(&mut self) -> std::io::Result<()> {
        for w in &mut self.writers {
            w.flush()?;
        }
        self.truth.flush()
    }
}

impl Drop for FileOutput {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl SimOutput for FileOutput {
    fn log_line(&mut self, stream: LogStream, line: &str) {
        let idx = LogStream::ALL
            .iter()
            .position(|s| *s == stream)
            .expect("known stream");
        // Errors surface at flush(); per-line handling would swamp the hot path.
        let _ = writeln!(self.writers[idx], "{line}");
        self.lines += 1;
    }

    fn app_truth(&mut self, truth: AppTruth) {
        if let Ok(json) = serde_json::to_string(&truth) {
            let _ = writeln!(self.truth, "{json}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::{AppId, JobId, NodeType, Timestamp, UserId};

    fn truth() -> AppTruth {
        AppTruth {
            apid: AppId::new(1),
            job: JobId::new(1),
            user: UserId::new(0),
            node_type: NodeType::Xe,
            width: 4,
            start: Timestamp::PRODUCTION_EPOCH,
            end: Timestamp::PRODUCTION_EPOCH,
            outcome: crate::truth::TrueOutcome::Success,
        }
    }

    #[test]
    fn memory_output_routes_streams() {
        let mut out = MemoryOutput::new();
        out.log_line(LogStream::Syslog, "a");
        out.log_line(LogStream::Alps, "b");
        out.log_line(LogStream::Alps, "c");
        out.app_truth(truth());
        assert_eq!(out.syslog, vec!["a"]);
        assert_eq!(out.alps, vec!["b", "c"]);
        assert_eq!(out.total_lines(), 3);
        assert_eq!(out.truths.len(), 1);
        assert_eq!(out.lines(LogStream::Alps).len(), 2);
    }

    #[test]
    fn file_output_writes_files() {
        let dir = std::env::temp_dir().join(format!("bw-sim-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut out = FileOutput::create(&dir).unwrap();
            out.log_line(LogStream::Syslog, "hello syslog");
            out.log_line(LogStream::Torque, "hello torque");
            out.app_truth(truth());
            out.flush().unwrap();
            assert_eq!(out.total_lines(), 2);
        }
        let syslog = std::fs::read_to_string(dir.join("messages.log")).unwrap();
        assert_eq!(syslog, "hello syslog\n");
        let torque = std::fs::read_to_string(dir.join("torque.log")).unwrap();
        assert_eq!(torque, "hello torque\n");
        let gt = std::fs::read_to_string(dir.join("ground_truth.jsonl")).unwrap();
        assert!(gt.contains("\"Success\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
