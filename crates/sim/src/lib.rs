//! # bw-sim
//!
//! Discrete-event simulator of Blue Waters production: the substitute for
//! the proprietary field data (see DESIGN.md §2).
//!
//! The simulator composes the substrates:
//!
//! - a [`bw_topology::Machine`] with its torus and Lustre layout,
//! - a [`bw_workload::WorkloadGenerator`] + [`bw_workload::Scheduler`]
//!   placing jobs on concrete node sets,
//! - a [`bw_faults::FaultInjector`] striking nodes, blades, links and
//!   filesystem components,
//!
//! and produces two artifacts:
//!
//! 1. **Raw log files** in the five `craylog` formats — the only thing
//!    LogDiver is allowed to read, and
//! 2. **Ground truth** ([`AppTruth`] per application run) — used solely to
//!    validate LogDiver's attribution quality (experiment V1), never by the
//!    tool itself.
//!
//! [`calibration`] solves the wide-event kill laws and the launch-failure
//! probability so that the *measured* resilience curves land on the
//! abstract's anchored numbers (DESIGN.md §5).
//!
//! ## Example
//!
//! ```
//! use bw_sim::{SimConfig, Simulation, MemoryOutput};
//!
//! let config = SimConfig::scaled(64, 2).with_seed(7); // tiny machine, 2 days
//! let mut out = MemoryOutput::new();
//! let report = Simulation::new(config).unwrap().run(&mut out);
//! assert!(report.apps_completed > 0);
//! assert!(!out.alps.is_empty());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod calibration;
pub mod config;
pub mod emit;
pub mod engine;
pub mod output;
pub mod truth;

pub use config::SimConfig;
pub use engine::{SimReport, Simulation};
pub use output::{FileOutput, MemoryOutput, SimOutput};
pub use truth::{AppTruth, TrueOutcome};
