//! Ground truth: what actually happened to every application run.
//!
//! The simulator knows; LogDiver must infer. Comparing the two is
//! experiment V1 (attribution precision/recall), this reproduction's
//! stand-in for the paper's manual cross-validation against operator
//! failure reports.

use logdiver_types::{AppId, FailureCause, JobId, NodeType, Timestamp, UserFailureKind, UserId};
use serde::{Deserialize, Serialize};

/// The true fate of one application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrueOutcome {
    /// Ran to completion.
    Success,
    /// Died of its own bug / environment.
    UserFailure(UserFailureKind),
    /// Cut off by the scheduler at the walltime limit.
    WalltimeExceeded,
    /// Killed by a system problem.
    SystemFailure {
        /// Which subsystem killed it.
        cause: FailureCause,
        /// Whether the underlying fault left log evidence.
        detected: bool,
    },
}

impl TrueOutcome {
    /// True for any system-caused death.
    pub const fn is_system(self) -> bool {
        matches!(self, TrueOutcome::SystemFailure { .. })
    }
}

/// Ground-truth record for one application run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppTruth {
    /// Application id (joins with the ALPS log).
    pub apid: AppId,
    /// Enclosing job.
    pub job: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Node class.
    pub node_type: NodeType,
    /// Width in nodes.
    pub width: u32,
    /// Launch time.
    pub start: Timestamp,
    /// Termination time.
    pub end: Timestamp,
    /// What actually happened.
    pub outcome: TrueOutcome,
}

impl AppTruth {
    /// Node-hours consumed by the run.
    pub fn node_hours(&self) -> f64 {
        self.width as f64 * (self.end - self.start).as_hours_f64().max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::SimDuration;

    #[test]
    fn node_hours_accumulate() {
        let t = AppTruth {
            apid: AppId::new(1),
            job: JobId::new(1),
            user: UserId::new(0),
            node_type: NodeType::Xe,
            width: 100,
            start: Timestamp::PRODUCTION_EPOCH,
            end: Timestamp::PRODUCTION_EPOCH + SimDuration::from_hours(3),
            outcome: TrueOutcome::Success,
        };
        assert!((t.node_hours() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn system_predicate() {
        assert!(TrueOutcome::SystemFailure {
            cause: FailureCause::Gpu,
            detected: false
        }
        .is_system());
        assert!(!TrueOutcome::Success.is_system());
        assert!(!TrueOutcome::UserFailure(UserFailureKind::Abort).is_system());
    }
}
