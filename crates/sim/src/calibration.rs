//! Calibration: solving the fault model against the abstract's anchors.
//!
//! The abstract of the paper pins five numbers (DESIGN.md §4/§5):
//!
//! | anchor | value |
//! |---|---|
//! | XE failure probability at 10,000 nodes | 0.008 |
//! | XE failure probability at 22,640 nodes (full) | 0.162 |
//! | XK failure probability at 2,000 nodes | 0.02 |
//! | XK failure probability at 4,224 nodes (full) | 0.129 |
//! | overall fraction of runs failed by system problems | 1.53 % |
//!
//! The failure model for an *executing* application of width `w`, class `τ`
//! and duration `t` (hours) is
//!
//! ```text
//! p_exec(w, τ) = E_t[ 1 − exp(−(λ_node(τ)·w + R·q_max(τ)·(w/N_τ)^γ(τ)) · t) ]
//! ```
//!
//! where `λ_node` is the per-node-hour lethal-fault rate (node crashes plus
//! GPU faults plus the per-node share of blade failures — a fixed prior),
//! `R` is the machine-wide lethal event rate, and the expectation runs over
//! the class's duration distribution *for that width* (capability-scale runs
//! carry the configured duration multiplier).
//!
//! Given the priors, the solver finds per class:
//!
//! 1. `q_max` — from the full-scale anchor (1-D bisection), then
//! 2. `γ` — from the mid-scale anchor (1-D bisection, monotone),
//!
//! and finally the scale-independent launch-failure probability from the
//! 1.53 % blend over the *whole* size mixture (launch failures are counted
//! in the outcome table T2 but excluded from the scaling figures F1/F2,
//! which plot failures of executing applications — see EXPERIMENTS.md).

use bw_faults::{FaultConfig, WideKillModel};
use bw_workload::config::ClassMix;
use bw_workload::generator::sample_width_for_mix;
use bw_workload::WorkloadConfig;
use logdiver_types::NodeType;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The anchored targets (abstract of Di Martino et al., DSN 2015).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anchors {
    /// (width-fraction of the class, target probability) — mid-scale point.
    pub mid: (f64, f64),
    /// Target probability at full class width.
    pub full: f64,
}

/// Paper anchors for a class.
pub fn paper_anchors(ty: NodeType) -> Anchors {
    match ty {
        NodeType::Xk => Anchors {
            mid: (2_000.0 / 4_224.0, 0.02),
            full: 0.129,
        },
        _ => Anchors {
            mid: (10_000.0 / 22_640.0, 0.008),
            full: 0.162,
        },
    }
}

/// Overall fraction of application runs failed by system problems.
pub const BLEND_TARGET: f64 = 0.0153;

/// `E_t[1 − e^{−h·t}]` over a log-normal duration (hours) given by
/// `(median_secs · multiplier, sigma)`, by quantile quadrature.
fn expected_failure_prob(
    hazard_per_hour: f64,
    median_secs: f64,
    sigma: f64,
    multiplier: f64,
) -> f64 {
    if hazard_per_hour <= 0.0 {
        return 0.0;
    }
    let median_h = median_secs * multiplier / 3_600.0;
    let dist = hpc_stats::LogNormal::new(median_h.ln(), sigma).expect("positive parameters");
    const N: usize = 400;
    let mut acc = 0.0;
    for i in 0..N {
        let p = (i as f64 + 0.5) / N as f64;
        let t = hpc_stats::dist::Distribution::quantile(&dist, p).min(24.0);
        acc += 1.0 - (-hazard_per_hour * t).exp();
    }
    acc / N as f64
}

/// Per-node-hour lethal hazard for a class under a fault configuration,
/// including the precursor-escalation channels (CE floods spread over all
/// compute nodes; page-retirement escalations over the XK class).
fn node_hazard(cfg: &FaultConfig, ty: NodeType, total_compute: f64, n_xk: f64) -> f64 {
    let gpu = if ty == NodeType::Xk {
        cfg.gpu_fault_per_node_hour
    } else {
        0.0
    };
    let ce_escalation =
        cfg.ce_floods_per_hour * cfg.ce_flood_escalation_prob / total_compute.max(1.0);
    let gpu_escalation = if ty == NodeType::Xk {
        cfg.gpu_page_retirements_per_hour * cfg.gpu_retirement_escalation_prob / n_xk.max(1.0)
    } else {
        0.0
    };
    cfg.node_crash_rate(ty)
        + gpu
        + cfg.blade_failure_per_blade_hour / 4.0
        + ce_escalation
        + gpu_escalation
}

/// Class sizes implied by a workload configuration: `(total_compute, n_xk)`.
fn class_sizes(workload: &WorkloadConfig) -> (f64, f64) {
    let total: u32 = workload.classes.iter().map(|c| c.max_nodes).sum();
    let xk = workload
        .classes
        .iter()
        .find(|c| c.node_type == NodeType::Xk)
        .map(|c| c.max_nodes)
        .unwrap_or(0);
    (total as f64, xk as f64)
}

/// Model probability that an *executing* application of `width` nodes dies
/// of a system problem, under `faults` + the class's workload mix.
///
/// `total_compute`/`n_xk` are the machine's class sizes (used to spread the
/// machine-wide escalation processes over nodes).
pub fn exec_failure_prob_sized(
    faults: &FaultConfig,
    mix: &ClassMix,
    width: u32,
    total_compute: f64,
    n_xk: f64,
) -> f64 {
    let lam = node_hazard(faults, mix.node_type, total_compute, n_xk);
    let wide = faults.wide_event_rate()
        * faults
            .wide_kill(mix.node_type)
            .kill_probability(width, mix.max_nodes);
    let mult = if (width as f64) >= mix.capability_lo_frac * mix.max_nodes as f64 {
        mix.capability_duration_multiplier
    } else {
        1.0
    };
    expected_failure_prob(
        lam * width as f64 + wide,
        mix.duration_median_secs,
        mix.duration_sigma,
        mult,
    )
}

fn bisect(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    // f must be increasing over [lo, hi] with f(lo) ≤ 0 ≤ f(hi).
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Convenience wrapper deriving the class sizes from a workload config.
pub fn exec_failure_prob_for(
    workload: &WorkloadConfig,
    faults: &FaultConfig,
    mix: &ClassMix,
    width: u32,
) -> f64 {
    let (total, xk) = class_sizes(workload);
    exec_failure_prob_sized(faults, mix, width, total, xk)
}

/// Solves the wide-kill law for one class against its anchors.
///
/// # Errors
///
/// Returns a descriptive message when the priors make the anchors
/// unreachable (node hazard already exceeds an anchor, or the full-scale
/// anchor demands `q_max > 1`).
pub fn solve_class(
    faults: &FaultConfig,
    mix: &ClassMix,
    total_compute: f64,
    n_xk: f64,
) -> Result<WideKillModel, String> {
    let anchors = paper_anchors(mix.node_type);
    let lam = node_hazard(faults, mix.node_type, total_compute, n_xk);
    let n = mix.max_nodes as f64;
    let rate = faults.wide_event_rate();
    let mult = mix.capability_duration_multiplier;
    let f_of = |hazard: f64| {
        expected_failure_prob(hazard, mix.duration_median_secs, mix.duration_sigma, mult)
    };

    // 1. q_max from the full-scale anchor.
    let base_full = f_of(lam * n);
    if base_full >= anchors.full {
        return Err(format!(
            "class {}: node hazard alone gives {base_full:.4} at full scale, above the {:.3} anchor — lower the node-crash prior",
            mix.node_type, anchors.full
        ));
    }
    if f_of(lam * n + rate) < anchors.full {
        return Err(format!(
            "class {}: even q_max = 1 cannot reach the full-scale anchor {:.3} — raise the wide-event rate",
            mix.node_type, anchors.full
        ));
    }
    let b = bisect(0.0, rate, |b| f_of(lam * n + b) - anchors.full);
    let q_max = b / rate;

    // 2. γ from the mid-scale anchor. p(mid) decreases as γ grows.
    let (frac, p_mid) = anchors.mid;
    let w_mid = frac * n;
    let base_mid = f_of(lam * w_mid);
    if base_mid >= p_mid {
        return Err(format!(
            "class {}: node hazard alone gives {base_mid:.4} at the mid anchor, above the {p_mid:.3} target — lower the node-crash prior",
            mix.node_type
        ));
    }
    let p_at = |gamma: f64| f_of(lam * w_mid + b * frac.powf(gamma));
    let gamma = if p_at(0.05) < p_mid {
        0.05 // even a nearly flat law undershoots; take the flattest allowed
    } else if p_at(16.0) > p_mid {
        16.0 // cap: steeper makes no practical difference
    } else {
        bisect(0.05, 16.0, |g| p_mid - p_at(g))
    };
    Ok(WideKillModel { q_max, gamma })
}

/// Solves the launch-failure probability from the 1.53 % blend, given the
/// (already solved) wide-kill laws: samples the full width mixture and
/// computes the count-weighted mean executing-failure probability.
pub fn solve_launch_prob(workload: &WorkloadConfig, faults: &FaultConfig) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xCA11_B7A7);
    let (total_compute, n_xk) = class_sizes(workload);
    let mut weight_sum = 0.0;
    let mut p_sum = 0.0;
    for mix in &workload.classes {
        // Class weight: share of application runs.
        let weight = mix.jobs_per_hour * mix.apps_per_job_mean;
        const SAMPLES: usize = 20_000;
        let mut acc = 0.0;
        for _ in 0..SAMPLES {
            let w = sample_width_for_mix(mix, &mut rng);
            acc += exec_failure_prob_sized(faults, mix, w, total_compute, n_xk);
        }
        p_sum += weight * acc / SAMPLES as f64;
        weight_sum += weight;
    }
    let p_exec = p_sum / weight_sum.max(1e-12);
    ((BLEND_TARGET - p_exec) / (1.0 - p_exec)).clamp(0.0005, 0.2)
}

/// Full calibration: solve both classes' wide-kill laws and the launch
/// probability; returns the updated fault configuration.
///
/// # Errors
///
/// Propagates per-class infeasibility messages from [`solve_class`].
pub fn calibrate(workload: &WorkloadConfig, faults: &FaultConfig) -> Result<FaultConfig, String> {
    let mut solved = faults.clone();
    let (total_compute, n_xk) = class_sizes(workload);
    for mix in &workload.classes {
        let law = solve_class(faults, mix, total_compute, n_xk)?;
        match mix.node_type {
            NodeType::Xk => solved.wide_kill_xk = law,
            _ => solved.wide_kill_xe = law,
        }
    }
    solved.launch_failure_prob = solve_launch_prob(workload, &solved);
    solved.validate()?;
    Ok(solved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_config_is_feasible() {
        let solved =
            calibrate(&WorkloadConfig::blue_waters(), &FaultConfig::blue_waters()).unwrap();
        assert!(solved.wide_kill_xe.q_max > 0.0 && solved.wide_kill_xe.q_max <= 1.0);
        assert!(solved.wide_kill_xk.q_max > 0.0 && solved.wide_kill_xk.q_max <= 1.0);
        assert!(
            solved.wide_kill_xe.gamma > 1.0,
            "XE law must be super-linear"
        );
        assert!(solved.launch_failure_prob > 0.001 && solved.launch_failure_prob < 0.03);
    }

    #[test]
    fn solved_model_hits_the_anchors() {
        let workload = WorkloadConfig::blue_waters();
        let solved = calibrate(&workload, &FaultConfig::blue_waters()).unwrap();
        for mix in &workload.classes {
            let anchors = paper_anchors(mix.node_type);
            let p_full = exec_failure_prob_for(&workload, &solved, mix, mix.max_nodes);
            assert!(
                (p_full - anchors.full).abs() / anchors.full < 0.02,
                "{}: full-scale {p_full} vs {}",
                mix.node_type,
                anchors.full
            );
            let w_mid = (anchors.mid.0 * mix.max_nodes as f64) as u32;
            let p_mid = exec_failure_prob_for(&workload, &solved, mix, w_mid);
            assert!(
                (p_mid - anchors.mid.1).abs() / anchors.mid.1 < 0.10,
                "{}: mid-scale {p_mid} vs {}",
                mix.node_type,
                anchors.mid.1
            );
        }
    }

    #[test]
    fn blend_matches_after_solve() {
        let workload = WorkloadConfig::blue_waters();
        let solved = calibrate(&workload, &FaultConfig::blue_waters()).unwrap();
        // Re-derive the blended probability including the launch term.
        let p_exec_part = {
            let c = solved.launch_failure_prob;
            let without = solve_launch_prob(&workload, &solved);
            // solve_launch_prob returns c such that blend ≈ target; applying
            // it twice must be a fixed point.
            assert!((without - c).abs() < 1e-9);
            c
        };
        assert!(p_exec_part > 0.005, "launch share should carry the blend");
    }

    #[test]
    fn failure_prob_is_monotone_in_width() {
        let workload = WorkloadConfig::blue_waters();
        let solved = calibrate(&workload, &FaultConfig::blue_waters()).unwrap();
        let mix = workload.class(NodeType::Xe).unwrap();
        let widths = [1u32, 100, 1_000, 10_000, 16_000, 22_640];
        let ps: Vec<f64> = widths
            .iter()
            .map(|&w| exec_failure_prob_for(&workload, &solved, mix, w))
            .collect();
        for w in ps.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "not monotone: {ps:?}");
        }
        // The famous 20× jump from 10k to full scale.
        let p10k = exec_failure_prob_for(&workload, &solved, mix, 10_000);
        let pfull = exec_failure_prob_for(&workload, &solved, mix, 22_640);
        assert!(pfull / p10k > 10.0, "jump only {}×", pfull / p10k);
    }

    #[test]
    fn infeasible_priors_are_reported() {
        let workload = WorkloadConfig::blue_waters();
        let mut faults = FaultConfig::blue_waters();
        faults.xe_node_crash_per_node_hour = 5.0e-5; // absurd: nodes die constantly
        let err = calibrate(&workload, &faults).unwrap_err();
        assert!(err.contains("node hazard"), "{err}");
    }

    #[test]
    fn expected_failure_prob_basics() {
        assert_eq!(expected_failure_prob(0.0, 900.0, 1.5, 1.0), 0.0);
        let small = expected_failure_prob(0.001, 900.0, 1.5, 1.0);
        let big = expected_failure_prob(1.0, 900.0, 1.5, 1.0);
        assert!(small < big && big < 1.0);
        // Longer runs fail more under the same hazard.
        let long = expected_failure_prob(0.1, 900.0, 1.5, 3.0);
        let short = expected_failure_prob(0.1, 900.0, 1.5, 1.0);
        assert!(long > short);
    }
}
