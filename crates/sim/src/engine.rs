//! The discrete-event engine.
//!
//! One ordered loop over three event sources — the workload generator's
//! arrivals, the fault injector's strikes, and an internal heap (application
//! ends, walltime kills, node repairs, noise ticks) — maintaining the
//! machine, the scheduler and the set of running jobs, and emitting raw log
//! lines plus ground truth through a [`SimOutput`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use bw_faults::{FaultEvent, FaultInjector, FaultKind};
use bw_topology::{Location, Machine};
use std::collections::VecDeque;

use bw_workload::job::IntrinsicOutcome;
use bw_workload::scheduler::StartedJob;
use bw_workload::{JobSpec, Scheduler, SchedulerStats, WorkloadGenerator};
use logdiver_types::{
    AppId, ExitStatus, FailureCause, NodeId, NodeSet, NodeType, SimDuration, Timestamp,
    UserFailureKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::emit;
use crate::output::SimOutput;
use crate::truth::{AppTruth, TrueOutcome};

/// Aggregate counters from one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimReport {
    /// Jobs submitted to the scheduler.
    pub jobs_submitted: u64,
    /// Jobs that ran to an end record.
    pub jobs_completed: u64,
    /// Application runs recorded (every PLACED or LAUNCHERR).
    pub apps_completed: u64,
    /// Node-hours actually consumed by application runs.
    pub node_hours: f64,
    /// Fault events injected (all kinds).
    pub faults_injected: u64,
    /// Lethal fault events.
    pub lethal_faults: u64,
    /// Machine-wide events.
    pub wide_events: u64,
    /// Applications killed by system problems (ground truth).
    pub system_kills: u64,
    /// Scheduler statistics at the end of the run.
    pub scheduler: SchedulerStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    AppEnd { job: u64, apid: u64 },
    WalltimeKill { job: u64 },
    NodeRepair { nid: u32 },
    NoiseTick,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: Timestamp,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Where the simulation's jobs come from.
#[derive(Debug)]
enum JobSource {
    /// The stochastic generator (the default).
    Generator(WorkloadGenerator),
    /// An explicit arrival-ordered trace (e.g. replayed from SWF).
    Replay(VecDeque<JobSpec>),
}

impl JobSource {
    fn peek_arrival(&self) -> Option<Timestamp> {
        match self {
            JobSource::Generator(g) => Some(g.peek_arrival()),
            JobSource::Replay(q) => q.front().map(|j| j.arrival),
        }
    }

    fn next_job(&mut self, rng: &mut StdRng) -> Option<JobSpec> {
        match self {
            JobSource::Generator(g) => Some(g.next_job(rng)),
            JobSource::Replay(q) => q.pop_front(),
        }
    }
}

#[derive(Debug)]
struct RunningJob {
    spec: JobSpec,
    nodes: NodeSet,
    app_index: usize,
    app_start: Timestamp,
    current_apid: Option<AppId>,
    current_nodes: NodeSet,
    started: Timestamp,
}

/// A configured simulation, ready to run.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    machine: Machine,
    rng: StdRng,
    source: JobSource,
    injector: FaultInjector,
    scheduler: Scheduler,
    running: BTreeMap<u64, RunningJob>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    end: Timestamp,
    arrivals_done: bool,
    report: SimReport,
}

impl Simulation {
    /// Builds a simulation from a configuration, running the calibration
    /// solve first when `config.calibrate` is set.
    ///
    /// # Errors
    ///
    /// Returns the validation/calibration message on inconsistent input.
    pub fn new(mut config: SimConfig) -> Result<Self, String> {
        config.validate()?;
        if config.calibrate {
            let solved = crate::calibration::calibrate(&config.workload, &config.faults)?;
            config.faults = solved;
        }
        let machine = config.machine();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let source =
            JobSource::Generator(WorkloadGenerator::new(config.workload.clone(), &mut rng)?);
        let injector = FaultInjector::new(
            &machine,
            config.faults.clone(),
            config.detection,
            Timestamp::PRODUCTION_EPOCH,
            &mut rng,
        )?;
        let scheduler = Scheduler::with_policy(&machine, config.placement);
        let end = Timestamp::PRODUCTION_EPOCH + config.horizon();
        Ok(Simulation {
            config,
            machine,
            rng,
            source,
            injector,
            scheduler,
            running: BTreeMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            end,
            arrivals_done: false,
            report: SimReport::default(),
        })
    }

    /// The (possibly calibrated) configuration in effect.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The machine being simulated.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Replaces the stochastic workload with an explicit, arrival-ordered
    /// job trace (builder-style) — e.g. a replayed SWF archive trace. Fault
    /// injection, detection and log emission are unchanged, so any trace
    /// can be run through the same fault world.
    ///
    /// # Panics
    ///
    /// Panics when the trace is not sorted by arrival or a job fails
    /// [`JobSpec::validate`].
    pub fn with_job_trace(mut self, jobs: Vec<JobSpec>) -> Self {
        assert!(
            jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival),
            "job trace must be arrival-ordered"
        );
        for job in &jobs {
            if let Err(e) = job.validate() {
                panic!("invalid job in trace: {e}");
            }
        }
        self.source = JobSource::Replay(jobs.into());
        self
    }

    /// Runs the simulation to the horizon, writing everything to `out`.
    pub fn run(mut self, out: &mut dyn SimOutput) -> SimReport {
        self.schedule(Timestamp::PRODUCTION_EPOCH, EventKind::NoiseTick);
        loop {
            let heap_t = self.heap.peek().map(|Reverse(e)| e.time);
            let arrival_t = if self.arrivals_done {
                None
            } else {
                self.source.peek_arrival()
            };
            let fault_t = Some(self.injector.peek_time());

            // Pick the earliest source; heap wins ties so repairs/ends apply
            // before new work lands at the same instant.
            let next = [heap_t, arrival_t, fault_t].into_iter().flatten().min();
            let Some(t) = next else { break };
            if t >= self.end {
                break;
            }

            if heap_t == Some(t) {
                let Reverse(event) = self.heap.pop().expect("peeked");
                self.handle_event(event, out);
            } else if arrival_t == Some(t) {
                match self.source.next_job(&mut self.rng) {
                    Some(job) => {
                        self.report.jobs_submitted += 1;
                        let started = self.scheduler.submit(job, t);
                        self.handle_started(started, out);
                    }
                    None => self.arrivals_done = true,
                }
            } else {
                let fault = self.injector.next_fault(&mut self.rng);
                self.handle_fault(fault, out);
            }
        }
        self.finalize(out);
        self.report.scheduler = self.scheduler.stats();
        self.report
    }

    fn schedule(&mut self, time: Timestamp, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            seq: self.seq,
            kind,
        }));
    }

    // ----- job/application lifecycle -------------------------------------

    fn handle_started(&mut self, started: Vec<StartedJob>, out: &mut dyn SimOutput) {
        for sj in started {
            let t = sj.start;
            emit::job_start(
                out,
                t,
                sj.spec.job,
                sj.spec.user,
                &sj.spec.queue,
                sj.spec.nodes,
                sj.spec.walltime,
            );
            let job_key = sj.spec.job.value();
            let deadline = t + sj.spec.walltime;
            self.schedule(deadline, EventKind::WalltimeKill { job: job_key });
            self.running.insert(
                job_key,
                RunningJob {
                    spec: sj.spec,
                    nodes: sj.nodes,
                    app_index: 0,
                    app_start: t,
                    current_apid: None,
                    current_nodes: NodeSet::new(),
                    started: t,
                },
            );
            self.start_next_app(job_key, t, out);
        }
    }

    fn start_next_app(&mut self, job_key: u64, mut t: Timestamp, out: &mut dyn SimOutput) {
        loop {
            let Some(rj) = self.running.get_mut(&job_key) else {
                return;
            };
            if rj.app_index >= rj.spec.apps.len() {
                self.end_job(job_key, t, 0, out);
                return;
            }
            let app = rj.spec.apps[rj.app_index].clone();
            // The app occupies the first `width` nodes of the allocation.
            let app_nodes: NodeSet = rj.nodes.iter().take(app.nodes as usize).collect();
            if self.rng.random::<f64>() < self.config.faults.launch_failure_prob {
                // ALPS fails the launch: the run exists (it has an apid and a
                // placement attempt) but never executes.
                emit::app_placed(
                    out,
                    t,
                    app.apid,
                    rj.spec.job,
                    rj.spec.user,
                    &app.command,
                    app.node_type,
                    &app_nodes,
                );
                emit::launch_error(
                    out,
                    t + SimDuration::from_secs(3),
                    app.apid,
                    "placement failed: node unavailable",
                );
                let truth = AppTruth {
                    apid: app.apid,
                    job: rj.spec.job,
                    user: rj.spec.user,
                    node_type: app.node_type,
                    width: app.nodes,
                    start: t,
                    end: t + SimDuration::from_secs(3),
                    outcome: TrueOutcome::SystemFailure {
                        cause: FailureCause::Launcher,
                        detected: true,
                    },
                };
                rj.app_index += 1;
                self.report.system_kills += 1;
                self.record_truth(truth, out);
                t += SimDuration::from_secs(10);
                continue;
            }
            emit::app_placed(
                out,
                t,
                app.apid,
                rj.spec.job,
                rj.spec.user,
                &app.command,
                app.node_type,
                &app_nodes,
            );
            rj.app_start = t;
            rj.current_apid = Some(app.apid);
            rj.current_nodes = app_nodes;
            let natural_end = t + app.duration;
            self.schedule(
                natural_end,
                EventKind::AppEnd {
                    job: job_key,
                    apid: app.apid.value(),
                },
            );
            return;
        }
    }

    fn handle_event(&mut self, event: Event, out: &mut dyn SimOutput) {
        match event.kind {
            EventKind::AppEnd { job, apid } => self.handle_app_end(job, apid, event.time, out),
            EventKind::WalltimeKill { job } => self.handle_walltime_kill(job, event.time, out),
            EventKind::NodeRepair { nid } => {
                let started = self.scheduler.node_up(NodeId::new(nid), event.time);
                self.handle_started(started, out);
            }
            EventKind::NoiseTick => {
                self.handle_noise_tick(event.time, out);
            }
        }
    }

    fn handle_app_end(&mut self, job_key: u64, apid: u64, t: Timestamp, out: &mut dyn SimOutput) {
        let Some(rj) = self.running.get_mut(&job_key) else {
            return;
        };
        if rj.current_apid != Some(AppId::new(apid)) {
            return; // stale event: the app was killed earlier
        }
        let app = rj.spec.apps[rj.app_index].clone();
        let runtime = t - rj.app_start;
        let (exit, outcome) = match app.intrinsic {
            // An intrinsic overrun that still fit the walltime simply ran long.
            IntrinsicOutcome::Success | IntrinsicOutcome::WalltimeExceeded => {
                (ExitStatus::SUCCESS, TrueOutcome::Success)
            }
            IntrinsicOutcome::Segfault => (
                ExitStatus::with_signal(11),
                TrueOutcome::UserFailure(UserFailureKind::Segfault),
            ),
            IntrinsicOutcome::Abort => (
                ExitStatus::with_signal(6),
                TrueOutcome::UserFailure(UserFailureKind::Abort),
            ),
            IntrinsicOutcome::OutOfMemory => (
                ExitStatus::with_signal(9),
                TrueOutcome::UserFailure(UserFailureKind::OutOfMemory),
            ),
            IntrinsicOutcome::NonzeroExit => (
                ExitStatus::with_code(1 + (apid % 125) as i32),
                TrueOutcome::UserFailure(UserFailureKind::NonzeroExit),
            ),
        };
        emit::app_exit(out, t, app.apid, exit, runtime);
        let truth = AppTruth {
            apid: app.apid,
            job: rj.spec.job,
            user: rj.spec.user,
            node_type: app.node_type,
            width: app.nodes,
            start: rj.app_start,
            end: t,
            outcome,
        };
        rj.current_apid = None;
        rj.app_index += 1;
        self.record_truth(truth, out);
        self.start_next_app(job_key, t + SimDuration::from_secs(2), out);
    }

    fn handle_walltime_kill(&mut self, job_key: u64, t: Timestamp, out: &mut dyn SimOutput) {
        let Some(rj) = self.running.get_mut(&job_key) else {
            return;
        };
        if t < rj.started + rj.spec.walltime {
            return; // stale (job restarted? cannot happen, but be safe)
        }
        if let Some(apid) = rj.current_apid {
            let app = rj.spec.apps[rj.app_index].clone();
            let runtime = t - rj.app_start;
            emit::app_exit(out, t, apid, ExitStatus::with_signal(15), runtime);
            let truth = AppTruth {
                apid,
                job: rj.spec.job,
                user: rj.spec.user,
                node_type: app.node_type,
                width: app.nodes,
                start: rj.app_start,
                end: t,
                outcome: TrueOutcome::WalltimeExceeded,
            };
            self.record_truth(truth, out);
            if let Some(rj) = self.running.get_mut(&job_key) {
                rj.current_apid = None;
            }
        }
        self.end_job(job_key, t, 271, out); // PBS walltime-exceeded status
    }

    fn end_job(&mut self, job_key: u64, t: Timestamp, exit_status: i32, out: &mut dyn SimOutput) {
        let Some(rj) = self.running.remove(&job_key) else {
            return;
        };
        emit::job_end(
            out,
            t,
            rj.spec.job,
            rj.spec.user,
            &rj.spec.queue,
            rj.spec.nodes,
            rj.spec.walltime,
            rj.started,
            exit_status,
        );
        self.report.jobs_completed += 1;
        let started = self.scheduler.job_finished(rj.spec.job, &rj.nodes, t);
        self.handle_started(started, out);
    }

    // ----- faults ---------------------------------------------------------

    fn handle_fault(&mut self, fault: FaultEvent, out: &mut dyn SimOutput) {
        self.report.faults_injected += 1;
        let t = fault.time;
        let variant = self.rng.random::<u32>();
        if !fault.kind.is_lethal() {
            // Warnings always leave log evidence.
            emit::fault_evidence(out, &self.machine, &fault, variant);
            return;
        }
        self.report.lethal_faults += 1;
        if fault.detected {
            emit::fault_evidence(out, &self.machine, &fault, variant);
        }
        if fault.kind.is_wide() {
            self.report.wide_events += 1;
            self.handle_wide_kill(&fault, t, out);
            return;
        }
        // Node-scoped: which nodes died?
        let affected: Vec<NodeId> = match fault.kind {
            FaultKind::NodeCrash { nid, .. } | FaultKind::GpuFault { nid, .. } => vec![nid],
            FaultKind::BladeFailure { blade } => Location::of_nid(NodeId::new(blade * 4))
                .blade_nids()
                .into_iter()
                .filter(|n| self.machine.node_type(*n).is_some())
                .collect(),
            _ => unreachable!("wide and warning kinds handled above"),
        };
        for &nid in &affected {
            self.scheduler.node_down(nid);
            if fault.repair > SimDuration::ZERO {
                self.schedule(t + fault.repair, EventKind::NodeRepair { nid: nid.value() });
            }
        }
        // Kill every running job whose allocation lost a node.
        let victims: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, rj)| affected.iter().any(|n| rj.nodes.contains(*n)))
            .map(|(k, _)| *k)
            .collect();
        let cause = FailureCause::from(fault.kind.category().subsystem());
        for job_key in victims {
            self.kill_job_by_system(job_key, t, cause, fault.detected, true, out);
        }
    }

    fn handle_wide_kill(&mut self, fault: &FaultEvent, t: Timestamp, out: &mut dyn SimOutput) {
        let cause = FailureCause::from(fault.kind.category().subsystem());
        // Decide victims first (borrow), then kill (mutate).
        let mut victims: Vec<u64> = Vec::new();
        let class_sizes = (
            self.machine.count_of(NodeType::Xe),
            self.machine.count_of(NodeType::Xk),
        );
        let mut draws: Vec<(u64, f64)> = Vec::new();
        for (k, rj) in &self.running {
            let Some(_) = rj.current_apid else { continue };
            let width = rj.spec.apps[rj.app_index].nodes;
            let class_size = match rj.spec.node_type {
                NodeType::Xk => class_sizes.1,
                _ => class_sizes.0,
            };
            let q = self
                .config
                .faults
                .wide_kill(rj.spec.node_type)
                .kill_probability(width, class_size);
            if q > 0.0 {
                draws.push((*k, q));
            }
        }
        for (k, q) in draws {
            if self.rng.random::<f64>() < q {
                victims.push(k);
            }
        }
        for job_key in victims {
            // Wide kills do not take nodes down; the launcher sees the app
            // die without a node failure.
            self.kill_job_by_system(job_key, t, cause, fault.detected, false, out);
        }
    }

    /// Kills a running job's current application with a system cause and
    /// terminates the job.
    fn kill_job_by_system(
        &mut self,
        job_key: u64,
        t: Timestamp,
        cause: FailureCause,
        detected: bool,
        node_lost: bool,
        out: &mut dyn SimOutput,
    ) {
        let Some(rj) = self.running.get_mut(&job_key) else {
            return;
        };
        if let Some(apid) = rj.current_apid {
            let app = rj.spec.apps[rj.app_index].clone();
            let runtime = (t - rj.app_start).clamp(SimDuration::ZERO, SimDuration::from_days(30));
            // How the launcher records the death depends on detection: an
            // undetected node loss is *sometimes* still flagged by the health
            // sweep; otherwise the run looks like a plain crash.
            let exit = if node_lost {
                if detected || self.rng.random::<f64>() < self.config.detection.undetected_node_flag
                {
                    ExitStatus::with_signal(9).and_node_failed()
                } else {
                    ExitStatus::with_signal(11)
                }
            } else {
                // Killed by a machine-wide event: I/O errors / aborted
                // collectives, no node death from ALPS's point of view.
                ExitStatus::with_signal(9)
            };
            emit::app_exit(out, t, apid, exit, runtime);
            let truth = AppTruth {
                apid,
                job: rj.spec.job,
                user: rj.spec.user,
                node_type: app.node_type,
                width: app.nodes,
                start: rj.app_start,
                end: t,
                outcome: TrueOutcome::SystemFailure { cause, detected },
            };
            self.report.system_kills += 1;
            if let Some(rj) = self.running.get_mut(&job_key) {
                rj.current_apid = None;
            }
            self.record_truth(truth, out);
        }
        self.end_job(job_key, t, 265, out); // 256 + SIGKILL
    }

    // ----- noise and wrap-up ----------------------------------------------

    fn handle_noise_tick(&mut self, t: Timestamp, out: &mut dyn SimOutput) {
        const TICK: i64 = 600; // 10 minutes
        let expected = self.config.noise_lines_per_hour * (TICK as f64 / 3_600.0);
        // Poisson via thinning of a small fixed budget (expected is small).
        let n = sample_poisson(expected, &mut self.rng);
        for _ in 0..n {
            let offset = SimDuration::from_secs(self.rng.random_range(0..TICK));
            let variant = self.rng.random::<u32>();
            emit::noise(out, &self.machine, t + offset, variant);
        }
        let next = t + SimDuration::from_secs(TICK);
        if next < self.end {
            self.schedule(next, EventKind::NoiseTick);
        }
    }

    fn record_truth(&mut self, truth: AppTruth, out: &mut dyn SimOutput) {
        self.report.apps_completed += 1;
        self.report.node_hours += truth.node_hours();
        out.app_truth(truth);
    }

    /// Censors everything still running at the horizon: the measurement
    /// window closed on them (they get a clean exit at the boundary, as the
    /// paper's accounting window would).
    fn finalize(&mut self, out: &mut dyn SimOutput) {
        let keys: Vec<u64> = self.running.keys().copied().collect();
        for job_key in keys {
            let Some(rj) = self.running.get_mut(&job_key) else {
                continue;
            };
            if let Some(apid) = rj.current_apid {
                let app = rj.spec.apps[rj.app_index].clone();
                let runtime = self.end - rj.app_start;
                emit::app_exit(out, self.end, apid, ExitStatus::SUCCESS, runtime);
                let truth = AppTruth {
                    apid,
                    job: rj.spec.job,
                    user: rj.spec.user,
                    node_type: app.node_type,
                    width: app.nodes,
                    start: rj.app_start,
                    end: self.end,
                    outcome: TrueOutcome::Success,
                };
                if let Some(rj) = self.running.get_mut(&job_key) {
                    rj.current_apid = None;
                }
                self.record_truth(truth, out);
            }
            if let Some(rj) = self.running.remove(&job_key) {
                emit::job_end(
                    out,
                    self.end,
                    rj.spec.job,
                    rj.spec.user,
                    &rj.spec.queue,
                    rj.spec.nodes,
                    rj.spec.walltime,
                    rj.started,
                    0,
                );
                self.report.jobs_completed += 1;
            }
        }
    }
}

/// Knuth's Poisson sampler (fine for small means; noise ticks use ≤ ~40).
fn sample_poisson<R: Rng>(mean: f64, rng: &mut R) -> u32 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= l || k > 10_000 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::MemoryOutput;
    use craylog::alps::AlpsRecord;
    use std::collections::HashMap;

    fn run_small(seed: u64, days: u32) -> (MemoryOutput, SimReport) {
        let config = SimConfig::scaled(64, days)
            .with_seed(seed)
            .without_calibration();
        let mut out = MemoryOutput::new();
        let report = Simulation::new(config).unwrap().run(&mut out);
        (out, report)
    }

    #[test]
    fn produces_work_and_logs() {
        let (out, report) = run_small(1, 2);
        assert!(report.jobs_submitted > 50, "{report:?}");
        assert!(report.apps_completed > 50);
        assert!(report.node_hours > 0.0);
        assert!(!out.alps.is_empty());
        assert!(!out.torque.is_empty());
        assert!(!out.syslog.is_empty());
        assert_eq!(out.truths.len() as u64, report.apps_completed);
    }

    #[test]
    fn every_placed_app_has_exactly_one_termination() {
        let (out, _) = run_small(2, 3);
        let mut placed: HashMap<u64, u32> = HashMap::new();
        let mut ended: HashMap<u64, u32> = HashMap::new();
        for line in &out.alps {
            match AlpsRecord::parse(line).unwrap() {
                AlpsRecord::Placed(r) => *placed.entry(r.apid.value()).or_default() += 1,
                AlpsRecord::Exit(r) => *ended.entry(r.apid.value()).or_default() += 1,
                AlpsRecord::LaunchErr(r) => *ended.entry(r.apid.value()).or_default() += 1,
            }
        }
        for (apid, n) in &placed {
            assert_eq!(*n, 1, "apid {apid} placed {n} times");
            assert_eq!(
                ended.get(apid),
                Some(&1),
                "apid {apid} has no unique termination"
            );
        }
        assert_eq!(placed.len(), ended.len());
    }

    #[test]
    fn truths_match_alps_exits() {
        let (out, _) = run_small(3, 2);
        let truth_by_apid: HashMap<u64, &AppTruth> =
            out.truths.iter().map(|t| (t.apid.value(), t)).collect();
        let mut checked = 0;
        for line in &out.alps {
            if let AlpsRecord::Exit(r) = AlpsRecord::parse(line).unwrap() {
                let truth = truth_by_apid[&r.apid.value()];
                match truth.outcome {
                    TrueOutcome::Success => assert!(r.exit.is_clean(), "apid {}", r.apid),
                    TrueOutcome::UserFailure(_) => {
                        assert!(!r.exit.is_clean() && !r.exit.node_failed)
                    }
                    TrueOutcome::WalltimeExceeded => assert_eq!(r.exit.signal, Some(15)),
                    TrueOutcome::SystemFailure { .. } => assert!(!r.exit.is_clean()),
                }
                checked += 1;
            }
        }
        assert!(checked > 50);
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, ra) = run_small(42, 2);
        let (b, rb) = run_small(42, 2);
        assert_eq!(ra, rb);
        assert_eq!(a.alps, b.alps);
        assert_eq!(a.syslog, b.syslog);
        assert_eq!(a.truths, b.truths);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = run_small(1, 2);
        let (b, _) = run_small(2, 2);
        assert_ne!(a.alps, b.alps);
    }

    #[test]
    fn system_kills_happen_over_a_long_window() {
        // At /64 scale wide events still fire; run long enough to see
        // launch failures at minimum.
        let (out, report) = run_small(4, 10);
        assert!(
            report.system_kills > 0,
            "no system kills in 10 days: {report:?}"
        );
        let sys = out.truths.iter().filter(|t| t.outcome.is_system()).count() as u64;
        assert_eq!(sys, report.system_kills);
    }

    #[test]
    fn walltime_kills_emit_signal_15() {
        let (out, _) = run_small(5, 5);
        let wt: Vec<&AppTruth> = out
            .truths
            .iter()
            .filter(|t| t.outcome == TrueOutcome::WalltimeExceeded)
            .collect();
        assert!(!wt.is_empty(), "no walltime kills in 5 days");
    }

    #[test]
    fn node_hours_are_plausible() {
        let (out, report) = run_small(6, 3);
        let machine = Machine::blue_waters_scaled(64);
        let capacity = machine.compute_nodes() as f64 * 72.0;
        assert!(report.node_hours > 0.02 * capacity, "{}", report.node_hours);
        assert!(report.node_hours < 1.01 * capacity, "{}", report.node_hours);
        let sum: f64 = out.truths.iter().map(|t| t.node_hours()).sum();
        assert!((sum - report.node_hours).abs() < 1e-6);
    }

    #[test]
    fn replayed_trace_runs_through_the_fault_world() {
        use bw_workload::generator::WorkloadGenerator as Gen;
        use bw_workload::WorkloadConfig;
        use rand::SeedableRng as _;

        // Generate a small trace, then replay it: the replayed run must see
        // exactly that many jobs and the same apids.
        let mut rng = StdRng::seed_from_u64(5);
        let mut generator = Gen::new(WorkloadConfig::scaled(64), &mut rng).unwrap();
        let jobs = generator.generate(SimDuration::from_days(1), &mut rng);
        assert!(jobs.len() > 20);
        let expected_apids: std::collections::BTreeSet<u64> = jobs
            .iter()
            .flat_map(|j| &j.apps)
            .map(|a| a.apid.value())
            .collect();

        let config = SimConfig::scaled(64, 2).with_seed(6).without_calibration();
        let mut out = MemoryOutput::new();
        let report = Simulation::new(config)
            .unwrap()
            .with_job_trace(jobs.clone())
            .run(&mut out);
        assert_eq!(report.jobs_submitted as usize, jobs.len());
        let seen: std::collections::BTreeSet<u64> =
            out.truths.iter().map(|t| t.apid.value()).collect();
        // Every app either ran or was cut by a system kill of its job —
        // all ground-truth apids must come from the trace.
        assert!(seen.is_subset(&expected_apids));
        assert!(seen.len() as f64 > 0.8 * expected_apids.len() as f64);
    }

    #[test]
    #[should_panic(expected = "arrival-ordered")]
    fn unsorted_trace_is_rejected() {
        use bw_workload::generator::WorkloadGenerator as Gen;
        use bw_workload::WorkloadConfig;
        use rand::SeedableRng as _;
        let mut rng = StdRng::seed_from_u64(5);
        let mut generator = Gen::new(WorkloadConfig::scaled(64), &mut rng).unwrap();
        let mut jobs = generator.generate(SimDuration::from_days(1), &mut rng);
        jobs.reverse();
        let config = SimConfig::scaled(64, 2).with_seed(6).without_calibration();
        let _ = Simulation::new(config).unwrap().with_job_trace(jobs);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: u32 = (0..n).map(|_| sample_poisson(3.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "{mean}");
        assert_eq!(sample_poisson(0.0, &mut rng), 0);
    }
}
