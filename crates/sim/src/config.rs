//! Simulation configuration.

use bw_faults::{DetectionModel, FaultConfig};
use bw_topology::{Machine, PlacementPolicy};
use bw_workload::WorkloadConfig;
use logdiver_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Everything a simulation run needs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Geometry divisor: 1 = full Blue Waters, larger = scaled machine.
    pub machine_divisor: u32,
    /// Length of the simulated production period in days.
    pub days: u32,
    /// RNG seed — same seed, same machine ⇒ identical logs and truth.
    pub seed: u64,
    /// Workload model.
    pub workload: WorkloadConfig,
    /// Fault processes.
    pub faults: FaultConfig,
    /// Detection coverage.
    pub detection: DetectionModel,
    /// Benign syslog chatter rate (lines per hour, machine-wide).
    pub noise_lines_per_hour: f64,
    /// How the scheduler lays allocations onto the machine.
    pub placement: PlacementPolicy,
    /// When true, the wide-kill laws and launch-failure probability are
    /// re-solved against the paper anchors at simulation start
    /// (see [`crate::calibration`]).
    pub calibrate: bool,
}

impl SimConfig {
    /// Full-scale Blue Waters for the given number of days (the paper's
    /// period is 518).
    pub fn blue_waters(days: u32) -> Self {
        SimConfig {
            machine_divisor: 1,
            days,
            seed: 1,
            workload: WorkloadConfig::blue_waters(),
            faults: FaultConfig::blue_waters(),
            detection: DetectionModel::blue_waters(),
            noise_lines_per_hour: 240.0,
            placement: PlacementPolicy::Packed,
            calibrate: true,
        }
    }

    /// A machine scaled down by `divisor`, for tests and examples.
    pub fn scaled(divisor: u32, days: u32) -> Self {
        SimConfig {
            machine_divisor: divisor,
            days,
            seed: 1,
            workload: WorkloadConfig::scaled(divisor),
            faults: FaultConfig::scaled(divisor),
            detection: DetectionModel::blue_waters(),
            noise_lines_per_hour: (240.0 / divisor.max(1) as f64).max(5.0),
            placement: PlacementPolicy::Packed,
            calibrate: true,
        }
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the calibration solve, keeping the configured fault model
    /// as-is (builder-style).
    pub fn without_calibration(mut self) -> Self {
        self.calibrate = false;
        self
    }

    /// Builds the machine for this configuration.
    pub fn machine(&self) -> Machine {
        Machine::blue_waters_scaled(self.machine_divisor)
    }

    /// The simulated period.
    pub fn horizon(&self) -> SimDuration {
        SimDuration::from_days(self.days as i64)
    }

    /// Validation of the composite configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("simulation must cover at least one day".into());
        }
        if !(self.noise_lines_per_hour.is_finite() && self.noise_lines_per_hour >= 0.0) {
            return Err(format!("bad noise rate {}", self.noise_lines_per_hour));
        }
        self.workload.validate()?;
        self.faults.validate()?;
        self.detection.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        SimConfig::blue_waters(518).validate().unwrap();
        SimConfig::scaled(16, 7).validate().unwrap();
        SimConfig::scaled(64, 1).validate().unwrap();
    }

    #[test]
    fn builder_methods() {
        let c = SimConfig::scaled(8, 3).with_seed(99).without_calibration();
        assert_eq!(c.seed, 99);
        assert!(!c.calibrate);
        assert_eq!(c.horizon(), SimDuration::from_days(3));
    }

    #[test]
    fn machine_matches_divisor() {
        let c = SimConfig::scaled(16, 1);
        let m = c.machine();
        assert_eq!(
            m.count_of(logdiver_types::NodeType::Xe),
            c.workload
                .class(logdiver_types::NodeType::Xe)
                .unwrap()
                .max_nodes
        );
    }

    #[test]
    fn zero_days_rejected() {
        assert!(SimConfig::scaled(16, 0).validate().is_err());
    }
}
