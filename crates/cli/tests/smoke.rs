//! Smoke tests driving the installed binary end-to-end.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_logdiver")
}

#[test]
fn help_prints_usage() {
    let out = Command::new(bin()).arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("simulate"));
    assert!(text.contains("reproduce"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_args_fail_cleanly() {
    let out = Command::new(bin()).arg("analyze").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--logs"));
    let out = Command::new(bin()).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn simulate_validate_analyze_round_trip() {
    let dir = std::env::temp_dir().join(format!("logdiver-cli-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let out = Command::new(bin())
        .args(["simulate", "--out"])
        .arg(&dir)
        .args(["--divisor", "64", "--days", "2", "--seed", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "messages.log",
        "hwerr.log",
        "apsys.log",
        "torque.log",
        "netwatch.log",
        "ground_truth.jsonl",
    ] {
        assert!(dir.join(f).exists(), "missing {f}");
    }

    let out = Command::new(bin())
        .args(["analyze", "--logs"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("T2 — Application outcomes"));
    assert!(text.contains("F1 — XE failure probability"));
    assert!(text.contains("T5 — Pipeline effectiveness"));

    let out = Command::new(bin())
        .args(["validate", "--logs"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("precision"));
    assert!(text.contains("recall"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn analyze_missing_dir_fails() {
    let out = Command::new(bin())
        .args(["analyze", "--logs", "/nonexistent/definitely-not-here"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn swf_export_produces_parseable_trace() {
    let path = std::env::temp_dir().join(format!("logdiver-swf-{}.swf", std::process::id()));
    let out = Command::new(bin())
        .args(["swf", "--out"])
        .arg(&path)
        .args(["--divisor", "64", "--days", "1", "--seed", "9"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let jobs = bw_workload::swf::parse_trace(&text).unwrap();
    assert!(jobs.len() > 10, "only {} jobs", jobs.len());
    std::fs::remove_file(&path).unwrap();
}
