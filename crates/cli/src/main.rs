//! `logdiver` — command-line driver for the field-study toolkit.
//!
//! ```text
//! logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]
//! logdiver analyze   --logs DIR [--csv DIR]
//! logdiver validate  --logs DIR
//! logdiver stream    --logs DIR [--chunk N] [--follow] [--shards N] [--lateness SECS]
//! logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]
//! logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]
//! ```
//!
//! `simulate` writes the five raw log files plus `ground_truth.jsonl`;
//! `analyze` runs LogDiver over a log directory and prints the full report;
//! `validate` additionally scores the verdicts against the ground truth;
//! `stream` feeds the same files through the online engine
//! (`logdiver-stream`), printing live progress, and `--follow` keeps
//! tailing them; `reproduce` does simulate+analyze in memory and prints
//! every table and figure (the benches call the same path per experiment).

use std::collections::HashMap;
use std::process::ExitCode;

use bw_sim::{AppTruth, FileOutput, MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};
use rand::SeedableRng;

fn usage() -> &'static str {
    "usage:\n  logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]\n  logdiver analyze   --logs DIR [--csv DIR]\n  logdiver validate  --logs DIR\n  logdiver stream    --logs DIR [--chunk N] [--follow] [--shards N] [--lateness SECS]\n  logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]\n  logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]\n\noptions:\n  --divisor N   machine scale divisor (1 = full Blue Waters; default 16)\n  --days N      production days to simulate (default 30; the paper is 518)\n  --seed N      RNG seed (default 1)\n  --out DIR     output directory for raw logs\n  --logs DIR    directory holding messages.log / hwerr.log / apsys.log /\n                torque.log / netwatch.log\n  --csv DIR     also write scale-curve CSVs there\n  --chunk N     lines pushed per source per round when streaming (default 1024)\n  --follow      keep tailing the log files for appended lines (SIGINT stops)\n  --shards N    parallel syslog parse workers (default 2)\n  --lateness SECS  allowed out-of-order lateness within a source (default 60)\n  --boost-capability  multiply capability-job frequency ×8 (dense sampling\n                of the full-scale buckets on small machines)"
}

/// What one subcommand accepts: value-taking options and bare switches.
/// Anything else is a usage error.
struct CommandSpec {
    name: &'static str,
    flags: &'static [&'static str],
    switches: &'static [&'static str],
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "simulate",
        flags: &["out", "divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
    CommandSpec {
        name: "analyze",
        flags: &["logs", "csv"],
        switches: &[],
    },
    CommandSpec {
        name: "validate",
        flags: &["logs"],
        switches: &[],
    },
    CommandSpec {
        name: "stream",
        flags: &["logs", "chunk", "shards", "lateness"],
        switches: &["follow"],
    },
    CommandSpec {
        name: "reproduce",
        flags: &["divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
    CommandSpec {
        name: "swf",
        flags: &["out", "divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
];

#[derive(Debug, Default)]
struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args(spec: &CommandSpec, argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let Some(raw) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Accept both `--name value` and `--name=value`.
        let (name, inline) = match raw.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (raw, None),
        };
        if spec.flags.contains(&name) {
            let value = match inline {
                Some(v) => v,
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("option --{name} requires a value"))?,
            };
            if args.flags.insert(name.to_string(), value).is_some() {
                return Err(format!("option --{name} given more than once"));
            }
        } else if spec.switches.contains(&name) {
            if let Some(v) = inline {
                return Err(format!("switch --{name} does not take a value (got {v:?})"));
            }
            if !args.switches.iter().any(|s| s == name) {
                args.switches.push(name.to_string());
            }
        } else {
            return Err(format!("unknown option --{name} for {:?}", spec.name));
        }
    }
    Ok(args)
}

fn get_u64(args: &Args, name: &str, default: u64) -> Result<u64, String> {
    match args.flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn build_config(args: &Args) -> Result<SimConfig, String> {
    let divisor = get_u64(args, "divisor", 16)? as u32;
    let days = get_u64(args, "days", 30)? as u32;
    let seed = get_u64(args, "seed", 1)?;
    let mut config = if divisor <= 1 {
        SimConfig::blue_waters(days)
    } else {
        SimConfig::scaled(divisor, days)
    }
    .with_seed(seed);
    if args.switches.iter().any(|s| s == "boost-capability") {
        for class in &mut config.workload.classes {
            class.capability_fraction *= 8.0;
        }
    }
    Ok(config)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let out_dir = args.flags.get("out").ok_or("simulate needs --out DIR")?;
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut out =
        FileOutput::create(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let report = sim.run(&mut out);
    out.flush().map_err(|e| format!("flush failed: {e}"))?;
    eprintln!(
        "wrote {} log lines to {out_dir}: {} jobs, {} apps, {:.0} node-hours, {} faults",
        out.total_lines(),
        report.jobs_submitted,
        report.apps_completed,
        report.node_hours,
        report.faults_injected
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("analyze needs --logs DIR")?;
    // Streaming parse: the raw text never lives in memory.
    let analysis = LogDiver::new()
        .analyze_dir(dir)
        .map_err(|e| e.to_string())?;
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    if let Some(csv_dir) = args.flags.get("csv") {
        std::fs::create_dir_all(csv_dir).map_err(|e| format!("cannot create {csv_dir}: {e}"))?;
        for curve in &analysis.metrics.scale_curves {
            let name = format!("scale_{}.csv", curve.node_type.label().to_lowercase());
            let path = std::path::Path::new(csv_dir).join(name);
            std::fs::write(&path, report::scale_curve_csv(curve))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!("scale-curve CSVs written to {csv_dir}");
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("validate needs --logs DIR")?;
    let truth_path = std::path::Path::new(dir).join("ground_truth.jsonl");
    let truth_text = std::fs::read_to_string(&truth_path)
        .map_err(|e| format!("cannot read {}: {e}", truth_path.display()))?;
    let mut truths: HashMap<u64, AppTruth> = HashMap::new();
    for line in truth_text.lines() {
        let t: AppTruth =
            serde_json::from_str(line).map_err(|e| format!("bad ground-truth line: {e}"))?;
        truths.insert(t.apid.value(), t);
    }
    let analysis = LogDiver::new()
        .analyze_dir(dir)
        .map_err(|e| e.to_string())?;
    let (mut tp, mut fp, mut fnc, mut tn, mut unmatched) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for run in &analysis.runs {
        let Some(truth) = truths.get(&run.run.apid.value()) else {
            unmatched += 1;
            continue;
        };
        match (truth.outcome.is_system(), run.class.is_system_failure()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fnc += 1,
            (false, false) => tn += 1,
        }
    }
    println!("V1 — attribution validation against ground truth");
    println!("  runs matched      : {}", tp + fp + fnc + tn);
    println!("  true positives    : {tp}");
    println!("  false positives   : {fp}");
    println!("  false negatives   : {fnc}");
    println!("  true negatives    : {tn}");
    if unmatched > 0 {
        println!("  runs without truth: {unmatched}");
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnc).max(1) as f64;
    println!("  precision         : {precision:.3}");
    println!("  recall            : {recall:.3}");
    Ok(())
}

fn cmd_reproduce(args: &Args) -> Result<(), String> {
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut raw = MemoryOutput::new();
    let sim_report = sim.run(&mut raw);
    eprintln!(
        "simulated {} jobs / {} apps / {:.0} node-hours; analyzing…",
        sim_report.jobs_submitted, sim_report.apps_completed, sim_report.node_hours
    );
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    Ok(())
}

/// Reads whole lines appended to `path` since `offset`. A trailing partial
/// line (no newline yet) is left for the next poll.
fn read_new_lines(path: &std::path::Path, offset: u64) -> std::io::Result<(Vec<String>, u64)> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    if len <= offset {
        return Ok((Vec::new(), offset.min(len)));
    }
    file.seek(SeekFrom::Start(offset))?;
    let mut text = String::new();
    file.take(len - offset).read_to_string(&mut text)?;
    let Some(last_newline) = text.rfind('\n') else {
        return Ok((Vec::new(), offset));
    };
    let consumed = offset + last_newline as u64 + 1;
    let lines = text[..=last_newline].lines().map(str::to_string).collect();
    Ok((lines, consumed))
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    use logdiver_stream::{Source, StreamConfig, StreamEngine};
    use std::collections::VecDeque;

    let dir = args.flags.get("logs").ok_or("stream needs --logs DIR")?;
    let chunk = get_u64(args, "chunk", 1024)?.max(1) as usize;
    let shards = get_u64(args, "shards", 2)?.max(1) as usize;
    let lateness = get_u64(args, "lateness", 60)?;
    let follow = args.switches.iter().any(|s| s == "follow");

    let config = StreamConfig::default()
        .with_lateness(logdiver_types::SimDuration::from_secs(lateness as i64))
        .with_syslog_shards(shards);
    let mut engine = StreamEngine::new(config);

    // One tail per source file present in the directory; absent sources are
    // closed up front so they do not hold the watermark down.
    let mut tails: Vec<(Source, std::path::PathBuf, u64)> = Vec::new();
    for source in Source::ALL {
        let path = std::path::Path::new(dir).join(source.file_name());
        if path.is_file() {
            tails.push((source, path, 0));
        } else {
            eprintln!("[stream] {} absent, source closed", source.file_name());
            engine.close(source);
        }
    }
    if tails.is_empty() {
        return Err(format!("no log files found in {dir}"));
    }

    let mut pending: Vec<VecDeque<String>> = tails.iter().map(|_| VecDeque::new()).collect();
    let mut exhausted = false;
    let mut rounds = 0u64;
    while !exhausted {
        exhausted = true;
        for (i, (source, path, offset)) in tails.iter_mut().enumerate() {
            if pending[i].is_empty() {
                let (lines, consumed) = read_new_lines(path, *offset)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                *offset = consumed;
                pending[i].extend(lines);
            }
            let take = chunk.min(pending[i].len());
            if take > 0 {
                engine
                    .push_batch(*source, pending[i].drain(..take))
                    .map_err(|e| e.to_string())?;
                exhausted = false;
            }
        }
        rounds += 1;
        if rounds.is_multiple_of(64) {
            print_progress(&engine);
        }
        if exhausted && follow {
            print_progress(&engine);
            std::thread::sleep(std::time::Duration::from_millis(500));
            exhausted = false;
        }
    }

    print_progress(&engine);
    let analysis = engine.drain();
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    Ok(())
}

fn print_progress(engine: &logdiver_stream::StreamEngine) {
    let snap = engine.snapshot();
    let bad: u64 = snap.parse.iter().map(|c| c.bad).sum();
    let total: u64 = snap.parse.iter().map(|c| c.total).sum();
    let watermark = match snap.watermark {
        Some(w) => w.to_string(),
        None => "blocked".to_string(),
    };
    eprintln!(
        "[stream] lines={total} bad={bad} watermark={watermark} runs={}/{} open \
         events={}/{} open buffered={} late_dropped={}",
        snap.classified_runs,
        snap.open_runs,
        snap.closed_events,
        snap.open_events,
        snap.buffered_entries,
        snap.late_dropped
    );
}

fn cmd_swf(args: &Args) -> Result<(), String> {
    let out_path = args.flags.get("out").ok_or("swf needs --out FILE")?;
    let config = build_config(args)?;
    let machine = config.machine();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut generator = bw_workload::WorkloadGenerator::new(config.workload.clone(), &mut rng)?;
    let jobs = generator.generate(config.horizon(), &mut rng);
    let text = bw_workload::swf::export_trace(machine.name(), machine.compute_nodes(), &jobs);
    std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} SWF jobs to {out_path}", jobs.len());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == cmd.as_str()) else {
        eprintln!("error: unknown command {cmd:?}\n\n{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(spec, rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match spec.name {
        "simulate" => cmd_simulate(&args),
        "analyze" => cmd_analyze(&args),
        "validate" => cmd_validate(&args),
        "stream" => cmd_stream(&args),
        "reproduce" => cmd_reproduce(&args),
        "swf" => cmd_swf(&args),
        _ => unreachable!("dispatch covers every CommandSpec"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> &'static CommandSpec {
        COMMANDS.iter().find(|s| s.name == name).unwrap()
    }

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn known_flags_and_switches_parse() {
        let args = parse_args(
            spec("simulate"),
            &argv(&["--out", "d", "--seed=7", "--boost-capability"]),
        )
        .unwrap();
        assert_eq!(args.flags.get("out").unwrap(), "d");
        assert_eq!(args.flags.get("seed").unwrap(), "7");
        assert_eq!(args.switches, vec!["boost-capability".to_string()]);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs", "d", "--typo", "x"])).unwrap_err();
        assert!(err.contains("unknown option --typo"), "{err}");
    }

    #[test]
    fn unknown_switch_is_rejected() {
        let err = parse_args(spec("stream"), &argv(&["--logs", "d", "--folow"])).unwrap_err();
        assert!(err.contains("unknown option --folow"), "{err}");
    }

    #[test]
    fn flag_without_value_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn switch_with_value_is_rejected() {
        let err = parse_args(spec("stream"), &argv(&["--follow=yes"])).unwrap_err();
        assert!(err.contains("does not take a value"), "{err}");
    }

    #[test]
    fn duplicate_flag_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs", "a", "--logs", "b"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = parse_args(spec("validate"), &argv(&["d"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn every_command_rejects_another_commands_flags() {
        // --csv belongs to analyze only; validate must refuse it.
        let err = parse_args(spec("validate"), &argv(&["--csv", "d"])).unwrap_err();
        assert!(err.contains("unknown option --csv"), "{err}");
    }
}
