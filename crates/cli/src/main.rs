//! `logdiver` — command-line driver for the field-study toolkit.
//!
//! ```text
//! logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]
//! logdiver analyze   --logs DIR [--csv DIR] [--threads N] [--timings]
//!                    [--quarantine-out FILE]
//! logdiver validate  --logs DIR [--json] [--min-precision X] [--min-recall X]
//! logdiver campaign  --out DIR [--divisor N] [--days N] [--seed N]
//!                    [--seeds N] [--severities LIST] [--gate-f1 X]
//! logdiver stream    --logs DIR [--chunk N] [--follow] [--shards N]
//!                    [--lateness SECS] [--checkpoint FILE] [--resume FILE]
//!                    [--checkpoint-every N] [--checkpoint-secs N]
//!                    [--quarantine-out FILE] [--quarantine-keep N]
//! logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]
//! logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]
//! logdiver lint      [--json] [--deny warnings] [--root DIR] [--rules]
//! logdiver serve     [--listen ADDR] [--tenants-dir DIR]...
//!                    [--checkpoint-every N] [--mem-budget BYTES] [--shards N]
//! ```
//!
//! `simulate` writes the five raw log files plus `ground_truth.jsonl`;
//! `analyze` runs LogDiver over a log directory and prints the full report;
//! `validate` additionally scores the verdicts against the ground truth
//! (`--json` for machine-readable output; `--min-precision`/`--min-recall`
//! exit nonzero when attribution quality falls below the floor);
//! `campaign` sweeps a severity grid of adversarial log perturbations ×
//! seeds and writes precision/recall/F1 degradation curves
//! (see [`campaign`]);
//! `stream` feeds the same files through the online engine
//! (`logdiver-stream`), printing live progress, and `--follow` keeps
//! tailing them — surviving file rotation, circuit-breaking sources that
//! turn to garbage, writing crash-safe checkpoints (`--checkpoint`) that a
//! later `--resume` picks up exactly, and exiting cleanly on Ctrl-C;
//! `reproduce` does simulate+analyze in memory and prints every table and
//! figure (the benches call the same path per experiment);
//! `lint` statically verifies the classification rule set and the
//! workspace's invariants (`logdiver-lint`) — CI runs it with
//! `--deny warnings`;
//! `serve` runs the multi-tenant streaming ingestion daemon
//! (`logdiver-serve`): fleets of clusters push their raw logs over a TCP
//! line protocol, each tenant gets its own engine and checkpoints, and a
//! killed daemon resumes every tenant (see DESIGN.md §15).

mod campaign;

use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

use bw_sim::{FileOutput, MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};
use rand::SeedableRng;

fn usage() -> &'static str {
    "usage:\n  logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]\n  logdiver analyze   --logs DIR [--csv DIR] [--threads N] [--timings]\n                     [--quarantine-out FILE]\n  logdiver validate  --logs DIR [--json] [--min-precision X] [--min-recall X]\n  logdiver campaign  --out DIR [--divisor N] [--days N] [--seed N] [--seeds N]\n                     [--severities LIST] [--gate-f1 X]\n  logdiver stream    --logs DIR [--chunk N] [--follow] [--shards N]\n                     [--lateness SECS] [--checkpoint FILE] [--resume FILE]\n                     [--checkpoint-every N] [--checkpoint-secs N]\n                     [--quarantine-out FILE] [--quarantine-keep N]\n  logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]\n  logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]\n  logdiver lint      [--json] [--deny warnings] [--root DIR] [--rules]\n  logdiver serve     [--listen ADDR] [--tenants-dir DIR]... [--checkpoint-every N]\n                     [--evict-after N] [--mem-budget BYTES] [--shards N]\n                     [--tenant-config FILE] [--max-line BYTES] [--deadline-ms N]\n                     [--io-timeout-ms N] [--line-deadline-ms N]\n\noptions:\n  --divisor N   machine scale divisor (1 = full Blue Waters; default 16)\n  --days N      production days to simulate (default 30; the paper is 518)\n  --seed N      RNG seed (default 1)\n  --out DIR     output directory for raw logs\n  --logs DIR    directory holding messages.log / hwerr.log / apsys.log /\n                torque.log / netwatch.log\n  --csv DIR     also write scale-curve CSVs there\n  --threads N   worker threads for the parallel analyze stages (default: all\n                cores; output is identical for every N)\n  --timings     print a per-stage wall-clock breakdown to stderr\n  --json        print validation results as JSON instead of text\n  --min-precision X  exit nonzero when attribution precision < X\n  --min-recall X     exit nonzero when attribution recall < X\n  --seeds N     campaign: number of consecutive seeds to sweep (default 2)\n  --severities LIST  campaign: comma-separated severity grid in [0,1]\n                (default 0,0.25,0.5,0.75,1)\n  --gate-f1 X   campaign: exit nonzero when the clean point's F1 < X\n  --chunk N     lines pushed per source per round when streaming (default 1024)\n  --follow      keep tailing the log files for appended lines; SIGINT writes\n                a final checkpoint and report, then exits cleanly\n  --shards N    parallel syslog parse workers (default 2)\n  --lateness SECS  allowed out-of-order lateness within a source (default 60)\n  --checkpoint FILE     write crash-safe checkpoints to FILE (atomic\n                temp+rename); resume later with --resume FILE\n  --resume FILE         restore engine state and file offsets from a\n                checkpoint; also the checkpoint target unless --checkpoint\n                says otherwise\n  --checkpoint-every N  checkpoint after N accepted lines (default 50000)\n  --checkpoint-secs N   also checkpoint every N seconds while lines flow\n                (default 5)\n  --quarantine-out FILE stream: append every quarantined (corrupt) raw line\n                to FILE; analyze: write `file@offset (reason): line`\n                provenance for every rejected line\n  --quarantine-keep N   recent corrupt lines kept in memory per source\n                (default 16)\n  --boost-capability  multiply capability-job frequency ×8 (dense sampling\n                of the full-scale buckets on small machines)\n  --deny warnings  lint: fail on warnings too, not just errors (CI mode)\n  --root DIR    lint: workspace root (default: walk up from the cwd)\n  --rules       lint: print the rule catalog and exit\n                lint exits 0 clean, 1 findings, 2 usage error, 3 when an\n                analyzer could not run (unreadable workspace, internal panic)\n  --listen ADDR serve: bind address (default 127.0.0.1:7044; port 0 picks an\n                ephemeral port, printed on startup)\n  --tenants-dir DIR     serve: checkpoint directory, one <tenant>.ckpt per\n                tenant (default ./tenants); repeat the flag to replicate\n                every checkpoint across several directories, and a restarted\n                daemon resumes each tenant from the newest valid replica\n  --evict-after N       serve: checkpoint and evict a tenant idle for N pump\n                sweeps; it is resurrected transparently on its next PUSH\n                (default 0 = never evict)\n  --tenant-config FILE  serve: per-tenant StreamConfig overrides, one\n                `<tenant> key=value ...` per line (keys: lateness,\n                quarantine-keep)\n  --mem-budget BYTES    serve: global open-state budget; per-tenant quota is\n                an eighth of it (default 268435456)\n  --max-line BYTES      serve: longest accepted protocol line; longer lines\n                answer ERR code=line-too-long (default 65536)\n  --deadline-ms N       serve: shed pushes with ERR code=overload when a pump\n                sweep exceeds N ms; 0 disables shedding (default 1000)\n  --io-timeout-ms N     serve: per-connection socket read/write timeout;\n                0 disables (default 5000)\n  --line-deadline-ms N  serve: evict a client whose partial line is older\n                than N ms (slowloris defense); 0 disables (default 10000)\n\nserve reuses --checkpoint-every (auto-checkpoint every N applied records,\ndefault 10000) and --shards (pump worker threads, default: CPU count)."
}

/// What one subcommand accepts: value-taking options and bare switches.
/// Anything else is a usage error.
struct CommandSpec {
    name: &'static str,
    flags: &'static [&'static str],
    switches: &'static [&'static str],
}

const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "simulate",
        flags: &["out", "divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
    CommandSpec {
        name: "analyze",
        flags: &["logs", "csv", "threads", "quarantine-out"],
        switches: &["timings"],
    },
    CommandSpec {
        name: "validate",
        flags: &["logs", "min-precision", "min-recall"],
        switches: &["json"],
    },
    CommandSpec {
        name: "campaign",
        flags: &[
            "out",
            "divisor",
            "days",
            "seed",
            "seeds",
            "severities",
            "gate-f1",
        ],
        switches: &[],
    },
    CommandSpec {
        name: "stream",
        flags: &[
            "logs",
            "chunk",
            "shards",
            "lateness",
            "checkpoint",
            "checkpoint-every",
            "checkpoint-secs",
            "resume",
            "quarantine-out",
            "quarantine-keep",
        ],
        switches: &["follow"],
    },
    CommandSpec {
        name: "reproduce",
        flags: &["divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
    CommandSpec {
        name: "swf",
        flags: &["out", "divisor", "days", "seed"],
        switches: &["boost-capability"],
    },
    CommandSpec {
        name: "lint",
        flags: &["deny", "root"],
        switches: &["json", "rules"],
    },
    CommandSpec {
        name: "serve",
        flags: &[
            "listen",
            "tenants-dir",
            "checkpoint-every",
            "evict-after",
            "mem-budget",
            "shards",
            "tenant-config",
            "max-line",
            "deadline-ms",
            "io-timeout-ms",
            "line-deadline-ms",
        ],
        switches: &[],
    },
];

/// Flags that may be given more than once; every occurrence is kept, in
/// order, in `Args::multi`. `serve --tenants-dir A --tenants-dir B` is
/// how checkpoint replicas are declared.
const REPEATABLE: &[&str] = &["tenants-dir"];

#[derive(Debug, Default)]
struct Args {
    flags: HashMap<String, String>,
    /// Values of `REPEATABLE` flags, in command-line order.
    multi: HashMap<String, Vec<String>>,
    switches: Vec<String>,
}

fn parse_args(spec: &CommandSpec, argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let Some(raw) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        // Accept both `--name value` and `--name=value`.
        let (name, inline) = match raw.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (raw, None),
        };
        if spec.flags.contains(&name) {
            let value = match inline {
                Some(v) => v,
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("option --{name} requires a value"))?,
            };
            if REPEATABLE.contains(&name) {
                args.multi.entry(name.to_string()).or_default().push(value);
            } else if args.flags.insert(name.to_string(), value).is_some() {
                return Err(format!("option --{name} given more than once"));
            }
        } else if spec.switches.contains(&name) {
            if let Some(v) = inline {
                return Err(format!("switch --{name} does not take a value (got {v:?})"));
            }
            if !args.switches.iter().any(|s| s == name) {
                args.switches.push(name.to_string());
            }
        } else {
            return Err(format!("unknown option --{name} for {:?}", spec.name));
        }
    }
    Ok(args)
}

fn get_u64(args: &Args, name: &str, default: u64) -> Result<u64, String> {
    match args.flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn build_config(args: &Args) -> Result<SimConfig, String> {
    let divisor = get_u64(args, "divisor", 16)? as u32;
    let days = get_u64(args, "days", 30)? as u32;
    let seed = get_u64(args, "seed", 1)?;
    let mut config = if divisor <= 1 {
        SimConfig::blue_waters(days)
    } else {
        SimConfig::scaled(divisor, days)
    }
    .with_seed(seed);
    if args.switches.iter().any(|s| s == "boost-capability") {
        for class in &mut config.workload.classes {
            class.capability_fraction *= 8.0;
        }
    }
    Ok(config)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let out_dir = args.flags.get("out").ok_or("simulate needs --out DIR")?;
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut out =
        FileOutput::create(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let report = sim.run(&mut out);
    out.flush().map_err(|e| format!("flush failed: {e}"))?;
    eprintln!(
        "wrote {} log lines to {out_dir}: {} jobs, {} apps, {:.0} node-hours, {} faults",
        out.total_lines(),
        report.jobs_submitted,
        report.apps_completed,
        report.node_hours,
        report.faults_injected
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("analyze needs --logs DIR")?;
    let threads = match args.flags.get("threads") {
        Some(_) => get_u64(args, "threads", 1)?.max(1) as usize,
        None => logdiver::exec::default_threads(),
    };
    // One arena block per source file: parse and filter borrow from it,
    // and rejected lines are recovered by byte offset only if
    // --quarantine-out asks for them.
    let arena = logdiver::input::LogArena::from_dir(dir).map_err(|e| e.to_string())?;
    let (analysis, timings, quarantine) = LogDiver::new()
        .with_threads(threads)
        .analyze_arena_timed(&arena);
    if let Some(path) = args.flags.get("quarantine-out") {
        write_quarantine_offsets(path, &arena, &quarantine)?;
        eprintln!("{} quarantined line(s) written to {path}", quarantine.len());
    }
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    if args.switches.iter().any(|s| s == "timings") {
        let lines_total: u64 = analysis.stats.parse.iter().map(|c| c.total).sum();
        eprintln!("stage timings ({threads} thread(s), {lines_total} lines):");
        eprintln!("  parse        {:>9.3}s", timings.parse_secs);
        eprintln!("  filter       {:>9.3}s", timings.filter_secs);
        eprintln!("  coverage     {:>9.3}s", timings.coverage_secs);
        eprintln!("  coalesce     {:>9.3}s", timings.coalesce_secs);
        eprintln!("  reconstruct  {:>9.3}s", timings.reconstruct_secs);
        eprintln!("  classify     {:>9.3}s", timings.classify_secs);
        eprintln!("  metrics      {:>9.3}s", timings.metrics_secs);
        eprintln!("  total        {:>9.3}s", timings.total_secs);
        if timings.total_secs > 0.0 {
            eprintln!(
                "  throughput   {:>9.0} lines/s",
                lines_total as f64 / timings.total_secs
            );
        }
    }
    if let Some(csv_dir) = args.flags.get("csv") {
        std::fs::create_dir_all(csv_dir).map_err(|e| format!("cannot create {csv_dir}: {e}"))?;
        for curve in &analysis.metrics.scale_curves {
            let name = format!("scale_{}.csv", curve.node_type.label().to_lowercase());
            let path = std::path::Path::new(csv_dir).join(name);
            std::fs::write(&path, report::scale_curve_csv(curve))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!("scale-curve CSVs written to {csv_dir}");
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("validate needs --logs DIR")?;
    let truths = campaign::load_truths(dir)?;
    let analysis = LogDiver::new()
        .analyze_dir(dir)
        .map_err(|e| e.to_string())?;
    let score = campaign::score_runs(&analysis.runs, &truths, &HashSet::new());
    let degraded = analysis
        .runs
        .iter()
        .filter(|r| r.confidence.is_degraded())
        .count() as u64;
    let report = campaign::ValidationReport::new(score, degraded, analysis.coverage.len() as u64);
    if args.switches.iter().any(|s| s == "json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report)
                .map_err(|e| format!("cannot serialize report: {e}"))?
        );
    } else {
        println!("V1 — attribution validation against ground truth");
        println!(
            "  runs matched      : {}",
            score.true_positives
                + score.false_positives
                + score.false_negatives
                + score.true_negatives
        );
        println!("  true positives    : {}", score.true_positives);
        println!("  false positives   : {}", score.false_positives);
        println!("  false negatives   : {}", score.false_negatives);
        println!("  true negatives    : {}", score.true_negatives);
        if score.unmatched > 0 {
            println!("  runs without truth: {}", score.unmatched);
        }
        println!("  precision         : {:.3}", report.precision);
        println!("  recall            : {:.3}", report.recall);
        println!("  f1                : {:.3}", report.f1);
        println!("  degraded verdicts : {degraded}");
        println!("  coverage gaps     : {}", analysis.coverage.len());
    }
    let mut breaches = Vec::new();
    if let Some(floor) = campaign::threshold(args, "min-precision")? {
        if report.precision < floor {
            breaches.push(format!(
                "precision {:.3} is below --min-precision {floor}",
                report.precision
            ));
        }
    }
    if let Some(floor) = campaign::threshold(args, "min-recall")? {
        if report.recall < floor {
            breaches.push(format!(
                "recall {:.3} is below --min-recall {floor}",
                report.recall
            ));
        }
    }
    if breaches.is_empty() {
        Ok(())
    } else {
        Err(breaches.join("; "))
    }
}

fn cmd_reproduce(args: &Args) -> Result<(), String> {
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut raw = MemoryOutput::new();
    let sim_report = sim.run(&mut raw);
    eprintln!(
        "simulated {} jobs / {} apps / {:.0} node-hours; analyzing…",
        sim_report.jobs_submitted, sim_report.apps_completed, sim_report.node_hours
    );
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    Ok(())
}

/// Graceful Ctrl-C for `stream --follow`: the handler only flips a flag;
/// the feeder loop notices it between rounds and runs the normal shutdown
/// path (final checkpoint, spill drain, drain, report).
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static STOP: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        STOP.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    pub fn pending() -> bool {
        STOP.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

/// One tailed source file: the tailer, lines read but not yet accepted by
/// the engine, and the byte offset checkpoints may safely record.
struct TailState {
    source: logdiver_stream::Source,
    tail: logdiver_stream::tail::Tailer<logdiver_stream::tail::FsLogFile>,
    /// Each pending line carries the offset that becomes durable once the
    /// engine accepts it — so a checkpoint taken mid-chunk never claims
    /// bytes the engine has not seen.
    pending: std::collections::VecDeque<(String, u64)>,
    /// Offset of the last line the engine accepted; what checkpoints record.
    ckpt_offset: u64,
    last_len: u64,
    last_growth: std::time::Instant,
    stalled: bool,
    /// While the source's circuit breaker is open: when to half-open it.
    probe_at: Option<std::time::Instant>,
    closed: bool,
}

fn cmd_stream(args: &Args) -> Result<(), String> {
    use logdiver_stream::tail::{FsLogFile, Tailer};
    use logdiver_stream::{Source, StreamCheckpoint, StreamConfig, StreamEngine, StreamError};
    use std::io::Write as _;
    use std::time::{Duration, Instant};

    /// A file that stops growing for this long, while another source keeps
    /// growing, is reported to the engine as stalled (degrading it so it
    /// cannot hold the watermark forever).
    const STALL_AFTER: Duration = Duration::from_secs(30);

    let dir = args.flags.get("logs").ok_or("stream needs --logs DIR")?;
    let chunk = get_u64(args, "chunk", 1024)?.max(1) as usize;
    let shards = get_u64(args, "shards", 2)?.max(1) as usize;
    let lateness = get_u64(args, "lateness", 60)?;
    let follow = args.switches.iter().any(|s| s == "follow");
    let ckpt_every = get_u64(args, "checkpoint-every", 50_000)?.max(1);
    let ckpt_interval = Duration::from_secs(get_u64(args, "checkpoint-secs", 5)?.max(1));
    let quarantine_keep = get_u64(args, "quarantine-keep", 16)? as usize;
    let resume_from = args.flags.get("resume").map(std::path::PathBuf::from);
    let ckpt_path = args
        .flags
        .get("checkpoint")
        .map(std::path::PathBuf::from)
        .or_else(|| resume_from.clone());

    let mut config = StreamConfig::default()
        .with_lateness(logdiver_types::SimDuration::from_secs(lateness as i64))
        .with_syslog_shards(shards)
        .with_quarantine_keep(quarantine_keep);
    let mut quarantine_out = match args.flags.get("quarantine-out") {
        Some(path) => {
            config = config.with_quarantine_spill();
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("cannot open {path}: {e}"))?;
            Some(std::io::BufWriter::new(file))
        }
        None => None,
    };

    let (mut engine, start_offsets) = match &resume_from {
        Some(path) => {
            let ckpt = StreamCheckpoint::read(path)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
            let mut offsets = [0u64; 5];
            for source in Source::ALL {
                offsets[source.index()] = ckpt.offset(source);
            }
            let engine = StreamEngine::resume(config, &ckpt)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
            eprintln!(
                "[stream] resumed from {}: {} lines already applied",
                path.display(),
                ckpt.records_applied()
            );
            (engine, offsets)
        }
        None => (StreamEngine::new(config), [0u64; 5]),
    };

    // One tail per source file present in the directory; absent sources are
    // closed up front so they do not hold the watermark down.
    let start = Instant::now();
    let mut tails: Vec<TailState> = Vec::new();
    for source in Source::ALL {
        let path = std::path::Path::new(dir).join(source.file_name());
        if path.is_file() {
            let offset = start_offsets[source.index()];
            tails.push(TailState {
                source,
                tail: Tailer::resume_at(FsLogFile::new(path), offset),
                pending: std::collections::VecDeque::new(),
                ckpt_offset: offset,
                last_len: offset,
                last_growth: start,
                stalled: false,
                probe_at: None,
                closed: false,
            });
        } else {
            eprintln!("[stream] {} absent, source closed", source.file_name());
            engine.close(source);
        }
    }
    if tails.is_empty() {
        return Err(format!("no log files found in {dir}"));
    }

    sigint::install();
    let mut rounds = 0u64;
    let mut pushed_since_ckpt = 0u64;
    let mut last_ckpt = Instant::now();
    let mut interrupted = false;

    loop {
        let mut idle = true;
        for t in tails.iter_mut() {
            if t.closed {
                continue;
            }
            // Open circuit: wait out the breaker's backoff, then half-open
            // it with a probe; the retried pending lines are the probe.
            if let Some(at) = t.probe_at {
                if Instant::now() < at {
                    continue;
                }
                engine.probe(t.source);
                t.probe_at = None;
            }
            if t.pending.is_empty() {
                let poll = t
                    .tail
                    .poll()
                    .map_err(|e| format!("cannot read {}: {e}", t.source.file_name()))?;
                if poll.rotated {
                    eprintln!(
                        "[stream] {} rotated or truncated; re-reading from the start",
                        t.source.file_name()
                    );
                    t.ckpt_offset = 0;
                }
                if poll.len != t.last_len || !poll.lines.is_empty() {
                    t.last_len = poll.len;
                    t.last_growth = Instant::now();
                    if t.stalled {
                        t.stalled = false;
                        engine.mark_recovered(t.source);
                        eprintln!("[stream] {} is growing again", t.source.file_name());
                    }
                }
                t.pending.extend(poll.lines.into_iter().zip(poll.ends));
            }
            let mut taken = 0;
            while taken < chunk {
                let Some((line, _)) = t.pending.front() else {
                    break;
                };
                match engine.push(t.source, line.clone()) {
                    Ok(()) => {
                        let (_, end) = t.pending.pop_front().expect("front checked above");
                        t.ckpt_offset = end;
                        pushed_since_ckpt += 1;
                        taken += 1;
                        idle = false;
                    }
                    Err(StreamError::CircuitOpen(source)) => {
                        let backoff = engine.health(source).backoff_ms.max(1);
                        eprintln!(
                            "[stream] {}: circuit open, probing again in {backoff}ms",
                            source.file_name()
                        );
                        t.probe_at = Some(Instant::now() + Duration::from_millis(backoff));
                        break;
                    }
                    Err(StreamError::SourceClosed(source)) => {
                        // Only possible when a checkpoint recorded the
                        // source as closed; honor that and stop feeding it.
                        eprintln!(
                            "[stream] {}: closed at checkpoint time, ignoring its file",
                            source.file_name()
                        );
                        t.closed = true;
                        t.pending.clear();
                        break;
                    }
                }
            }
        }

        // A source whose file froze while others keep growing would pin the
        // watermark forever; report the stall so the engine degrades it.
        if follow {
            let now = Instant::now();
            let any_growing = tails
                .iter()
                .any(|t| !t.closed && now.duration_since(t.last_growth) < STALL_AFTER);
            if any_growing {
                for t in tails.iter_mut() {
                    if !t.closed && !t.stalled && now.duration_since(t.last_growth) >= STALL_AFTER {
                        t.stalled = true;
                        engine.mark_stalled(t.source);
                        eprintln!(
                            "[stream] {} has not grown for {}s while others have; degrading",
                            t.source.file_name(),
                            STALL_AFTER.as_secs()
                        );
                    }
                }
            }
        }

        if let Some(out) = quarantine_out.as_mut() {
            write_spill(&mut engine, out)?;
        }
        if let Some(path) = &ckpt_path {
            let due = pushed_since_ckpt >= ckpt_every
                || (pushed_since_ckpt > 0 && last_ckpt.elapsed() >= ckpt_interval);
            if due {
                write_checkpoint(&engine, &tails, path)?;
                pushed_since_ckpt = 0;
                last_ckpt = Instant::now();
            }
        }

        rounds += 1;
        if rounds.is_multiple_of(64) {
            print_progress(&engine);
        }
        if sigint::pending() {
            interrupted = true;
            break;
        }
        if idle {
            let waiting_on_probe = tails.iter().any(|t| !t.closed && t.probe_at.is_some());
            if follow {
                print_progress(&engine);
                std::thread::sleep(Duration::from_millis(500));
            } else if waiting_on_probe {
                std::thread::sleep(Duration::from_millis(50));
            } else {
                break;
            }
        }
    }

    // One-shot reads will never see a torn final line completed: consume
    // it now (it parses or it quarantines — either is accounted for).
    if !follow && !interrupted {
        for t in tails.iter_mut() {
            if t.closed {
                continue;
            }
            if let Ok(Some(partial)) = t.tail.finish() {
                if engine.push(t.source, partial).is_ok() {
                    t.ckpt_offset = t.tail.offset();
                }
            }
        }
    }

    // Quiesce once so the final spill drain and checkpoint both see every
    // pushed line applied.
    let final_ckpt = (ckpt_path.is_some() || quarantine_out.is_some()).then(|| {
        let mut offsets = [0u64; 5];
        for t in &tails {
            offsets[t.source.index()] = t.ckpt_offset;
        }
        engine.checkpoint(offsets)
    });
    if let Some(out) = quarantine_out.as_mut() {
        write_spill(&mut engine, out)?;
        out.flush()
            .map_err(|e| format!("cannot flush quarantine spill: {e}"))?;
    }
    if let (Some(path), Some(ckpt)) = (&ckpt_path, &final_ckpt) {
        ckpt.write_atomic(path)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
        eprintln!("[stream] final checkpoint written to {}", path.display());
    }
    print_progress(&engine);
    if interrupted {
        eprintln!("[stream] interrupted; draining what was ingested");
    }
    let analysis = engine.drain();
    println!(
        "{}",
        report::full_report(&analysis.metrics, &analysis.stats)
    );
    Ok(())
}

/// Takes a quiescent checkpoint with the feeder's durable offsets and
/// writes it atomically.
fn write_checkpoint(
    engine: &logdiver_stream::StreamEngine,
    tails: &[TailState],
    path: &std::path::Path,
) -> Result<(), String> {
    let mut offsets = [0u64; 5];
    for t in tails {
        offsets[t.source.index()] = t.ckpt_offset;
    }
    engine
        .checkpoint(offsets)
        .write_atomic(path)
        .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))
}

/// Writes batch-mode quarantine provenance to the `--quarantine-out`
/// file: one `file@offset (reason): line` record per rejected line, the
/// bytes sliced straight out of the arena (lossily re-encoded only if a
/// rejected line was not valid UTF-8).
fn write_quarantine_offsets(
    path: &str,
    arena: &logdiver::input::LogArena,
    quarantine: &[logdiver::parse::QuarantinedLine],
) -> Result<(), String> {
    use std::io::Write as _;
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let mut out = std::io::BufWriter::new(file);
    for q in quarantine {
        let i = q.source as usize;
        let start = q.offset as usize;
        let bytes = &arena.block(i)[start..start + q.len as usize];
        writeln!(
            out,
            "{}@{} ({}): {}",
            logdiver::input::SOURCE_FILES[i],
            q.offset,
            q.reason,
            String::from_utf8_lossy(bytes)
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    out.flush().map_err(|e| format!("cannot flush {path}: {e}"))
}

/// Drains spilled quarantine lines to the `--quarantine-out` file, one
/// `source\tline` record per line.
fn write_spill(
    engine: &mut logdiver_stream::StreamEngine,
    out: &mut std::io::BufWriter<std::fs::File>,
) -> Result<(), String> {
    use std::io::Write as _;
    for (source, line) in engine.take_spilled() {
        writeln!(out, "{}\t{}", source.name(), line)
            .map_err(|e| format!("cannot write quarantine spill: {e}"))?;
    }
    Ok(())
}

fn print_progress(engine: &logdiver_stream::StreamEngine) {
    let snap = engine.snapshot();
    let bad: u64 = snap.parse.iter().map(|c| c.bad).sum();
    let total: u64 = snap.parse.iter().map(|c| c.total).sum();
    let watermark = match snap.watermark {
        Some(w) => w.to_string(),
        None => "blocked".to_string(),
    };
    let health: Vec<&str> = snap.health.iter().map(|h| h.state.label()).collect();
    let spill = if snap.spill_dropped > 0 {
        format!(" spill_dropped={}", snap.spill_dropped)
    } else {
        String::new()
    };
    eprintln!(
        "[stream] lines={total} bad={bad} watermark={watermark} runs={}/{} open \
         events={}/{} open buffered={} late_dropped={} health={}{spill}",
        snap.classified_runs,
        snap.open_runs,
        snap.closed_events,
        snap.open_events,
        snap.buffered_entries,
        snap.late_dropped,
        health.join(",")
    );
}

fn cmd_swf(args: &Args) -> Result<(), String> {
    let out_path = args.flags.get("out").ok_or("swf needs --out FILE")?;
    let config = build_config(args)?;
    let machine = config.machine();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut generator = bw_workload::WorkloadGenerator::new(config.workload.clone(), &mut rng)?;
    let jobs = generator.generate(config.horizon(), &mut rng);
    let text = bw_workload::swf::export_trace(machine.name(), machine.compute_nodes(), &jobs);
    std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} SWF jobs to {out_path}", jobs.len());
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use logdiver_serve::daemon;
    let mut config = daemon::DaemonConfig::default();
    if let Some(listen) = args.flags.get("listen") {
        config.listen = listen.clone();
    }
    if let Some(dirs) = args.multi.get("tenants-dir") {
        config.tenants_dirs = dirs.iter().map(std::path::PathBuf::from).collect();
    }
    if let Some(path) = args.flags.get("tenant-config") {
        config.tenant_config = Some(std::path::PathBuf::from(path));
    }
    config.checkpoint_every = get_u64(args, "checkpoint-every", config.checkpoint_every)?;
    config.evict_after = get_u64(args, "evict-after", config.evict_after)?;
    config.mem_budget = get_u64(args, "mem-budget", config.mem_budget as u64)? as usize;
    let shards = get_u64(args, "shards", config.shards as u64)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    config.shards = shards as usize;
    let max_line = get_u64(args, "max-line", config.max_line as u64)?;
    if max_line == 0 {
        return Err("--max-line must be at least 1".to_string());
    }
    config.max_line = max_line as usize;
    config.deadline_ms = get_u64(args, "deadline-ms", config.deadline_ms)?;
    config.io_timeout_ms = get_u64(args, "io-timeout-ms", config.io_timeout_ms)?;
    config.line_deadline_ms = get_u64(args, "line-deadline-ms", config.line_deadline_ms)?;
    daemon::run(config).map_err(|e| format!("serve: {e}"))
}

/// Why `lint` failed — findings exit 1 like every other command failure,
/// while an analyzer that could not run at all exits 3 so CI can tell
/// "the tree is dirty" from "the verdict is meaningless".
enum LintFailure {
    Findings(String),
    Internal(String),
}

fn cmd_lint(args: &Args) -> Result<(), LintFailure> {
    use logdiver_lint::{driver, report as lint_report};
    if args.switches.iter().any(|s| s == "rules") {
        print!("{}", driver::rule_catalog());
        return Ok(());
    }
    let deny_warnings = match args.flags.get("deny").map(String::as_str) {
        None => false,
        Some("warnings") => true,
        Some(other) => {
            return Err(LintFailure::Internal(format!(
                "--deny takes `warnings`, got {other:?}"
            )))
        }
    };
    let root = args.flags.get("root").map(std::path::PathBuf::from);
    let report = driver::run_analyzers(root).map_err(LintFailure::Internal)?;
    if args.switches.iter().any(|s| s == "json") {
        println!("{}", lint_report::render_json(&report));
    } else {
        print!("{}", lint_report::render_text(&report));
    }
    if report.failed(deny_warnings) {
        return Err(LintFailure::Findings(format!(
            "lint failed: {} error(s), {} warning(s){}",
            report.errors(),
            report.warnings(),
            if deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        )));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if matches!(cmd.as_str(), "help" | "--help" | "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    let Some(spec) = COMMANDS.iter().find(|s| s.name == cmd.as_str()) else {
        eprintln!("error: unknown command {cmd:?}\n\n{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(spec, rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match spec.name {
        "simulate" => cmd_simulate(&args),
        "analyze" => cmd_analyze(&args),
        "validate" => cmd_validate(&args),
        "campaign" => campaign::cmd_campaign(&args),
        "stream" => cmd_stream(&args),
        "reproduce" => cmd_reproduce(&args),
        "swf" => cmd_swf(&args),
        "lint" => {
            return match cmd_lint(&args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(LintFailure::Findings(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
                Err(LintFailure::Internal(e)) => {
                    eprintln!("error: {e}");
                    ExitCode::from(3)
                }
            }
        }
        "serve" => cmd_serve(&args),
        _ => unreachable!("dispatch covers every CommandSpec"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> &'static CommandSpec {
        COMMANDS.iter().find(|s| s.name == name).unwrap()
    }

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn known_flags_and_switches_parse() {
        let args = parse_args(
            spec("simulate"),
            &argv(&["--out", "d", "--seed=7", "--boost-capability"]),
        )
        .unwrap();
        assert_eq!(args.flags.get("out").unwrap(), "d");
        assert_eq!(args.flags.get("seed").unwrap(), "7");
        assert_eq!(args.switches, vec!["boost-capability".to_string()]);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs", "d", "--typo", "x"])).unwrap_err();
        assert!(err.contains("unknown option --typo"), "{err}");
    }

    #[test]
    fn unknown_switch_is_rejected() {
        let err = parse_args(spec("stream"), &argv(&["--logs", "d", "--folow"])).unwrap_err();
        assert!(err.contains("unknown option --folow"), "{err}");
    }

    #[test]
    fn flag_without_value_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn switch_with_value_is_rejected() {
        let err = parse_args(spec("stream"), &argv(&["--follow=yes"])).unwrap_err();
        assert!(err.contains("does not take a value"), "{err}");
    }

    #[test]
    fn duplicate_flag_is_rejected() {
        let err = parse_args(spec("analyze"), &argv(&["--logs", "a", "--logs", "b"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn positional_arguments_are_rejected() {
        let err = parse_args(spec("validate"), &argv(&["d"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn stream_checkpoint_flags_parse() {
        let args = parse_args(
            spec("stream"),
            &argv(&[
                "--logs",
                "d",
                "--resume",
                "state.ckpt",
                "--checkpoint-every=1000",
                "--checkpoint-secs",
                "2",
                "--quarantine-out",
                "bad.tsv",
                "--quarantine-keep=64",
            ]),
        )
        .unwrap();
        assert_eq!(args.flags.get("resume").unwrap(), "state.ckpt");
        assert_eq!(args.flags.get("checkpoint-every").unwrap(), "1000");
        assert_eq!(args.flags.get("quarantine-out").unwrap(), "bad.tsv");
        assert_eq!(get_u64(&args, "quarantine-keep", 16).unwrap(), 64);
    }

    #[test]
    fn analyze_threads_and_timings_parse() {
        let args = parse_args(
            spec("analyze"),
            &argv(&["--logs", "d", "--threads=4", "--timings"]),
        )
        .unwrap();
        assert_eq!(get_u64(&args, "threads", 1).unwrap(), 4);
        assert_eq!(args.switches, vec!["timings".to_string()]);
        // --timings is a switch, not a flag.
        let err = parse_args(spec("analyze"), &argv(&["--timings=on"])).unwrap_err();
        assert!(err.contains("does not take a value"), "{err}");
        // --threads belongs to analyze only.
        let err =
            parse_args(spec("stream"), &argv(&["--logs", "d", "--threads", "4"])).unwrap_err();
        assert!(err.contains("unknown option --threads"), "{err}");
    }

    #[test]
    fn every_command_rejects_another_commands_flags() {
        // --csv belongs to analyze only; validate must refuse it.
        let err = parse_args(spec("validate"), &argv(&["--csv", "d"])).unwrap_err();
        assert!(err.contains("unknown option --csv"), "{err}");
    }

    #[test]
    fn serve_flags_parse() {
        let args = parse_args(
            spec("serve"),
            &argv(&[
                "--listen",
                "127.0.0.1:0",
                "--tenants-dir=/tmp/tenants",
                "--tenants-dir",
                "/mnt/replica",
                "--checkpoint-every",
                "500",
                "--evict-after=32",
                "--mem-budget=1048576",
                "--shards",
                "4",
                "--tenant-config",
                "/tmp/overrides.conf",
                "--max-line=4096",
                "--deadline-ms=250",
                "--io-timeout-ms=900",
                "--line-deadline-ms=3000",
            ]),
        )
        .unwrap();
        assert_eq!(args.flags.get("listen").unwrap(), "127.0.0.1:0");
        // --tenants-dir is repeatable: both replicas survive, in order.
        assert_eq!(
            args.multi.get("tenants-dir").unwrap(),
            &["/tmp/tenants".to_string(), "/mnt/replica".to_string()]
        );
        assert_eq!(get_u64(&args, "checkpoint-every", 0).unwrap(), 500);
        assert_eq!(get_u64(&args, "evict-after", 0).unwrap(), 32);
        assert_eq!(get_u64(&args, "mem-budget", 0).unwrap(), 1 << 20);
        assert_eq!(get_u64(&args, "shards", 0).unwrap(), 4);
        assert_eq!(
            args.flags.get("tenant-config").unwrap(),
            "/tmp/overrides.conf"
        );
        assert_eq!(get_u64(&args, "max-line", 0).unwrap(), 4096);
        assert_eq!(get_u64(&args, "deadline-ms", 0).unwrap(), 250);
        assert_eq!(get_u64(&args, "io-timeout-ms", 0).unwrap(), 900);
        assert_eq!(get_u64(&args, "line-deadline-ms", 0).unwrap(), 3000);
    }

    #[test]
    fn serve_zero_max_line_is_rejected_at_dispatch() {
        let args = parse_args(spec("serve"), &argv(&["--max-line", "0"])).unwrap();
        let err = cmd_serve(&args).unwrap_err();
        assert!(err.contains("--max-line"), "{err}");
    }

    #[test]
    fn serve_rejects_unknown_and_foreign_flags() {
        let err = parse_args(spec("serve"), &argv(&["--port", "7044"])).unwrap_err();
        assert!(err.contains("unknown option --port"), "{err}");
        // --logs belongs to analyze/stream; serve must refuse it.
        let err = parse_args(spec("serve"), &argv(&["--logs", "d"])).unwrap_err();
        assert!(err.contains("unknown option --logs"), "{err}");
        let err = parse_args(spec("serve"), &argv(&["--listen"])).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
        let err =
            parse_args(spec("serve"), &argv(&["--shards", "2", "--shards", "4"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn serve_zero_shards_is_rejected_at_dispatch() {
        let args = parse_args(spec("serve"), &argv(&["--shards", "0"])).unwrap();
        let err = cmd_serve(&args).unwrap_err();
        assert!(err.contains("--shards must be at least 1"), "{err}");
    }
}
