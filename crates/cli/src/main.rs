//! `logdiver` — command-line driver for the field-study toolkit.
//!
//! ```text
//! logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]
//! logdiver analyze   --logs DIR [--csv DIR]
//! logdiver validate  --logs DIR
//! logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]
//! logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]
//! ```
//!
//! `simulate` writes the five raw log files plus `ground_truth.jsonl`;
//! `analyze` runs LogDiver over a log directory and prints the full report;
//! `validate` additionally scores the verdicts against the ground truth;
//! `reproduce` does simulate+analyze in memory and prints every table and
//! figure (the benches call the same path per experiment).

use std::collections::HashMap;
use std::process::ExitCode;

use bw_sim::{AppTruth, FileOutput, MemoryOutput, SimConfig, Simulation};
use rand::SeedableRng;
use logdiver::{report, LogCollection, LogDiver};

fn usage() -> &'static str {
    "usage:\n  logdiver simulate  --out DIR [--divisor N] [--days N] [--seed N]\n  logdiver analyze   --logs DIR [--csv DIR]\n  logdiver validate  --logs DIR\n  logdiver reproduce [--divisor N] [--days N] [--seed N] [--boost-capability]\n  logdiver swf       --out FILE [--divisor N] [--days N] [--seed N]\n\noptions:\n  --divisor N   machine scale divisor (1 = full Blue Waters; default 16)\n  --days N      production days to simulate (default 30; the paper is 518)\n  --seed N      RNG seed (default 1)\n  --out DIR     output directory for raw logs\n  --logs DIR    directory holding messages.log / hwerr.log / apsys.log /\n                torque.log / netwatch.log\n  --csv DIR     also write scale-curve CSVs there\n  --boost-capability  multiply capability-job frequency ×8 (dense sampling\n                of the full-scale buckets on small machines)"
}

#[derive(Debug, Default)]
struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    args.flags.insert(name.to_string(), it.next().expect("peeked").clone());
                }
                _ => args.switches.push(name.to_string()),
            }
        } else {
            return Err(format!("unexpected argument {a:?}"));
        }
    }
    Ok(args)
}

fn get_u64(args: &Args, name: &str, default: u64) -> Result<u64, String> {
    match args.flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

fn build_config(args: &Args) -> Result<SimConfig, String> {
    let divisor = get_u64(args, "divisor", 16)? as u32;
    let days = get_u64(args, "days", 30)? as u32;
    let seed = get_u64(args, "seed", 1)?;
    let mut config = if divisor <= 1 {
        SimConfig::blue_waters(days)
    } else {
        SimConfig::scaled(divisor, days)
    }
    .with_seed(seed);
    if args.switches.iter().any(|s| s == "boost-capability") {
        for class in &mut config.workload.classes {
            class.capability_fraction *= 8.0;
        }
    }
    Ok(config)
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let out_dir = args.flags.get("out").ok_or("simulate needs --out DIR")?;
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut out = FileOutput::create(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let report = sim.run(&mut out);
    out.flush().map_err(|e| format!("flush failed: {e}"))?;
    eprintln!(
        "wrote {} log lines to {out_dir}: {} jobs, {} apps, {:.0} node-hours, {} faults",
        out.total_lines(),
        report.jobs_submitted,
        report.apps_completed,
        report.node_hours,
        report.faults_injected
    );
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("analyze needs --logs DIR")?;
    // Streaming parse: the raw text never lives in memory.
    let analysis = LogDiver::new().analyze_dir(dir).map_err(|e| e.to_string())?;
    println!("{}", report::full_report(&analysis.metrics, &analysis.stats));
    if let Some(csv_dir) = args.flags.get("csv") {
        std::fs::create_dir_all(csv_dir).map_err(|e| format!("cannot create {csv_dir}: {e}"))?;
        for curve in &analysis.metrics.scale_curves {
            let name = format!("scale_{}.csv", curve.node_type.label().to_lowercase());
            let path = std::path::Path::new(csv_dir).join(name);
            std::fs::write(&path, report::scale_curve_csv(curve))
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        eprintln!("scale-curve CSVs written to {csv_dir}");
    }
    Ok(())
}

fn cmd_validate(args: &Args) -> Result<(), String> {
    let dir = args.flags.get("logs").ok_or("validate needs --logs DIR")?;
    let truth_path = std::path::Path::new(dir).join("ground_truth.jsonl");
    let truth_text = std::fs::read_to_string(&truth_path)
        .map_err(|e| format!("cannot read {}: {e}", truth_path.display()))?;
    let mut truths: HashMap<u64, AppTruth> = HashMap::new();
    for line in truth_text.lines() {
        let t: AppTruth =
            serde_json::from_str(line).map_err(|e| format!("bad ground-truth line: {e}"))?;
        truths.insert(t.apid.value(), t);
    }
    let analysis = LogDiver::new().analyze_dir(dir).map_err(|e| e.to_string())?;
    let (mut tp, mut fp, mut fnc, mut tn, mut unmatched) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for run in &analysis.runs {
        let Some(truth) = truths.get(&run.run.apid.value()) else {
            unmatched += 1;
            continue;
        };
        match (truth.outcome.is_system(), run.class.is_system_failure()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fnc += 1,
            (false, false) => tn += 1,
        }
    }
    println!("V1 — attribution validation against ground truth");
    println!("  runs matched      : {}", tp + fp + fnc + tn);
    println!("  true positives    : {tp}");
    println!("  false positives   : {fp}");
    println!("  false negatives   : {fnc}");
    println!("  true negatives    : {tn}");
    if unmatched > 0 {
        println!("  runs without truth: {unmatched}");
    }
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnc).max(1) as f64;
    println!("  precision         : {precision:.3}");
    println!("  recall            : {recall:.3}");
    Ok(())
}

fn cmd_reproduce(args: &Args) -> Result<(), String> {
    let config = build_config(args)?;
    let sim = Simulation::new(config)?;
    eprintln!(
        "simulating {} for {} days (seed {})…",
        sim.machine().name(),
        sim.config().days,
        sim.config().seed
    );
    let mut raw = MemoryOutput::new();
    let sim_report = sim.run(&mut raw);
    eprintln!(
        "simulated {} jobs / {} apps / {:.0} node-hours; analyzing…",
        sim_report.jobs_submitted, sim_report.apps_completed, sim_report.node_hours
    );
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    println!("{}", report::full_report(&analysis.metrics, &analysis.stats));
    Ok(())
}

fn cmd_swf(args: &Args) -> Result<(), String> {
    let out_path = args.flags.get("out").ok_or("swf needs --out FILE")?;
    let config = build_config(args)?;
    let machine = config.machine();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut generator =
        bw_workload::WorkloadGenerator::new(config.workload.clone(), &mut rng)?;
    let jobs = generator.generate(config.horizon(), &mut rng);
    let text = bw_workload::swf::export_trace(machine.name(), machine.compute_nodes(), &jobs);
    std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote {} SWF jobs to {out_path}", jobs.len());
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let args = match parse_args(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&args),
        "analyze" => cmd_analyze(&args),
        "validate" => cmd_validate(&args),
        "reproduce" => cmd_reproduce(&args),
        "swf" => cmd_swf(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
