//! `logdiver campaign` — adversarial-robustness sweeps, plus the
//! attribution scorer shared with `logdiver validate`.
//!
//! A campaign simulates a machine once per seed, then replays LogDiver
//! over progressively nastier copies of the same logs: a severity grid
//! scales clock skew, record loss, duplicate replay, corruption, a silent
//! hwerr outage, and apid recycling (via
//! [`bw_faults::perturb::PerturbationPipeline`]). Each point is scored
//! against the simulator's ground truth, giving degradation curves —
//! precision / recall / F1 versus severity — that locate the cliff where
//! skew pushes evidence outside the attribution window. Results land in
//! `campaign.csv` (one row per seed × severity) and `BENCH_campaign.json`
//! (mean curves plus the predicted and observed cliff).

use std::collections::{HashMap, HashSet};

use bw_faults::perturb::{PerturbSource, Perturbation, PerturbationPipeline, RawLogs};
use bw_sim::{AppTruth, MemoryOutput, SimConfig, Simulation};
use logdiver::{ClassifiedRun, LogCollection, LogDiver, LogDiverConfig};
use logdiver_types::{SimDuration, Timestamp};
use serde::Serialize;

use super::{get_u64, Args};

/// Full-severity syslog clock skew. The attribution window is ±120 s, so
/// the cliff is predicted where `severity × 400 s` crosses it — severity
/// ≈ 0.3 — well inside the default grid. (Machine-scope causality uses an
/// even tighter ±45 s slack, so those verdicts flip first.)
const SKEW_FULL_SECS: i64 = 400;

/// Confusion matrix of verdicts against ground truth.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Score {
    /// System failures called system failures.
    pub true_positives: u64,
    /// Healthy/user runs called system failures.
    pub false_positives: u64,
    /// System failures missed.
    pub false_negatives: u64,
    /// Healthy/user runs correctly cleared.
    pub true_negatives: u64,
    /// Reconstructed runs with no ground-truth record.
    pub unmatched: u64,
    /// Runs excluded as identity-ambiguous (recycled apids).
    pub excluded: u64,
}

impl Score {
    /// Fraction of system-failure verdicts that were right.
    pub fn precision(&self) -> f64 {
        self.true_positives as f64 / (self.true_positives + self.false_positives).max(1) as f64
    }

    /// Fraction of true system failures that were caught.
    pub fn recall(&self) -> f64 {
        self.true_positives as f64 / (self.true_positives + self.false_negatives).max(1) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Loads `ground_truth.jsonl` from a log directory, keyed by apid.
pub fn load_truths(dir: &str) -> Result<HashMap<u64, AppTruth>, String> {
    let path = std::path::Path::new(dir).join("ground_truth.jsonl");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut truths = HashMap::new();
    for line in text.lines() {
        let t: AppTruth =
            serde_json::from_str(line).map_err(|e| format!("bad ground-truth line: {e}"))?;
        truths.insert(t.apid.value(), t);
    }
    Ok(truths)
}

/// Scores classified runs against ground truth, skipping apids made
/// identity-ambiguous by recycling.
pub fn score_runs(
    runs: &[ClassifiedRun],
    truths: &HashMap<u64, AppTruth>,
    exclude: &HashSet<u64>,
) -> Score {
    let mut score = Score::default();
    for run in runs {
        let apid = run.run.apid.value();
        if exclude.contains(&apid) {
            score.excluded += 1;
            continue;
        }
        let Some(truth) = truths.get(&apid) else {
            score.unmatched += 1;
            continue;
        };
        match (truth.outcome.is_system(), run.class.is_system_failure()) {
            (true, true) => score.true_positives += 1,
            (false, true) => score.false_positives += 1,
            (true, false) => score.false_negatives += 1,
            (false, false) => score.true_negatives += 1,
        }
    }
    score
}

/// The severity-scaled adversary: every knob grows linearly with
/// `severity ∈ [0, 1]`; severity 0 is the identity pipeline.
fn severity_pipeline(
    seed: u64,
    severity: f64,
    extent: Option<(Timestamp, Timestamp)>,
) -> PerturbationPipeline {
    let mut p = PerturbationPipeline::new(seed);
    if severity <= 0.0 {
        return p;
    }
    p = p
        .with(Perturbation::ClockSkew {
            source: PerturbSource::Syslog,
            offset: SimDuration::from_secs((severity * SKEW_FULL_SECS as f64) as i64),
        })
        .with(Perturbation::RecordDrop {
            source: PerturbSource::Alps,
            prob: 0.35 * severity,
        })
        .with(Perturbation::RecordDrop {
            source: PerturbSource::Syslog,
            prob: 0.3 * severity,
        })
        .with(Perturbation::DuplicateReplay {
            source: PerturbSource::Syslog,
            prob: 0.3 * severity,
        })
        .with(Perturbation::Corrupt {
            source: PerturbSource::Netwatch,
            prob: 0.05 * severity,
        });
    if let Some((lo, hi)) = extent {
        let span = (hi - lo).as_secs();
        let outage = (span as f64 * 0.15 * severity) as i64;
        if outage > 0 {
            p = p.with(Perturbation::SourceOutage {
                source: PerturbSource::Syslog,
                start: lo + SimDuration::from_secs(span / 4),
                duration: SimDuration::from_secs(outage),
            });
        }
    }
    let recycle = (severity * 6.0).round() as usize;
    if recycle > 0 {
        p = p.with(Perturbation::ApidRecycle { count: recycle });
    }
    p
}

/// One scored grid point (a single seed at a single severity).
#[derive(Debug, Clone, Serialize)]
struct GridPoint {
    seed: u64,
    severity: f64,
    score: Score,
    precision: f64,
    recall: f64,
    f1: f64,
    degraded_runs: u64,
    coverage_gaps: u64,
    duplicates: u64,
    skew_secs: i64,
}

/// Mean curve point across seeds, as published in `BENCH_campaign.json`.
#[derive(Debug, Clone, Serialize)]
struct CurvePoint {
    severity: f64,
    skew_secs: i64,
    precision: f64,
    recall: f64,
    f1: f64,
    degraded_runs: f64,
    coverage_gaps: f64,
    duplicates: f64,
}

/// The whole campaign summary, serialized to `BENCH_campaign.json`.
#[derive(Debug, Serialize)]
struct CampaignBench {
    divisor: u64,
    days: u64,
    seeds: Vec<u64>,
    severities: Vec<f64>,
    skew_full_secs: i64,
    attribution_window_secs: i64,
    predicted_cliff_severity: f64,
    curve: Vec<CurvePoint>,
    monotone_f1: bool,
    observed_cliff_severity: Option<f64>,
}

fn parse_severities(args: &Args) -> Result<Vec<f64>, String> {
    let text = args
        .flags
        .get("severities")
        .map(String::as_str)
        .unwrap_or("0,0.25,0.5,0.75,1");
    let mut out = Vec::new();
    for part in text.split(',') {
        let s: f64 = part
            .trim()
            .parse()
            .map_err(|_| format!("--severities expects numbers in [0,1], got {part:?}"))?;
        if !(0.0..=1.0).contains(&s) {
            return Err(format!("severity {s} is outside [0, 1]"));
        }
        out.push(s);
    }
    if out.is_empty() {
        return Err("--severities needs at least one point".to_string());
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("severities are finite"));
    out.dedup();
    Ok(out)
}

/// Parses an optional numeric threshold flag (`--min-precision`,
/// `--min-recall`, `--gate-f1`).
pub fn threshold(args: &Args, name: &str) -> Result<Option<f64>, String> {
    match args.flags.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
    }
}

/// Machine-readable shape of `logdiver validate --json`.
#[derive(Debug, Serialize)]
pub struct ValidationReport {
    /// Confusion matrix against ground truth.
    pub score: Score,
    /// Derived precision.
    pub precision: f64,
    /// Derived recall.
    pub recall: f64,
    /// Derived F1.
    pub f1: f64,
    /// Verdicts qualified as degraded by the coverage tracker.
    pub degraded_runs: u64,
    /// Silent per-source coverage gaps detected.
    pub coverage_gaps: u64,
}

impl ValidationReport {
    /// Builds the report from a scored confusion matrix.
    pub fn new(score: Score, degraded_runs: u64, coverage_gaps: u64) -> Self {
        ValidationReport {
            score,
            precision: score.precision(),
            recall: score.recall(),
            f1: score.f1(),
            degraded_runs,
            coverage_gaps,
        }
    }
}

/// Runs the sweep: simulate per seed, perturb per severity, score, write
/// `campaign.csv` + `BENCH_campaign.json`, and gate on `--gate-f1`.
pub fn cmd_campaign(args: &Args) -> Result<(), String> {
    let out_dir = args.flags.get("out").ok_or("campaign needs --out DIR")?;
    let divisor = get_u64(args, "divisor", 64)?.max(1);
    let days = get_u64(args, "days", 2)?.max(1);
    let seed0 = get_u64(args, "seed", 1)?;
    let n_seeds = get_u64(args, "seeds", 2)?.max(1);
    let severities = parse_severities(args)?;
    let gate_f1 = threshold(args, "gate-f1")?;
    let seeds: Vec<u64> = (0..n_seeds).map(|k| seed0 + k).collect();

    let mut grid: Vec<GridPoint> = Vec::new();
    for &seed in &seeds {
        let config = SimConfig::scaled(divisor as u32, days as u32).with_seed(seed);
        let sim = Simulation::new(config)?;
        let mut raw = MemoryOutput::new();
        let sim_report = sim.run(&mut raw);
        eprintln!(
            "[campaign] seed {seed}: {} apps over {days} day(s) at divisor {divisor}",
            sim_report.apps_completed
        );
        let mut truths: HashMap<u64, AppTruth> = HashMap::new();
        for t in &raw.truths {
            truths.insert(t.apid.value(), *t);
        }
        let mut base = RawLogs::new();
        *base.lines_mut(PerturbSource::Syslog) = raw.syslog.clone();
        *base.lines_mut(PerturbSource::HwErr) = raw.hwerr.clone();
        *base.lines_mut(PerturbSource::Alps) = raw.alps.clone();
        *base.lines_mut(PerturbSource::Torque) = raw.torque.clone();
        *base.lines_mut(PerturbSource::Netwatch) = raw.netwatch.clone();
        let extent = base.extent();

        for &severity in &severities {
            let mut logs = base.clone();
            let pipeline = severity_pipeline(seed, severity, extent);
            let truth = pipeline.apply(&mut logs);
            let exclude: HashSet<u64> = truth.recycled_apids().into_iter().collect();

            let mut collection = LogCollection::new();
            collection.syslog = logs.lines(PerturbSource::Syslog).to_vec();
            collection.hwerr = logs.lines(PerturbSource::HwErr).to_vec();
            collection.alps = logs.lines(PerturbSource::Alps).to_vec();
            collection.torque = logs.lines(PerturbSource::Torque).to_vec();
            collection.netwatch = logs.lines(PerturbSource::Netwatch).to_vec();
            let analysis = LogDiver::new().analyze(&collection);
            let score = score_runs(&analysis.runs, &truths, &exclude);
            let degraded = analysis
                .runs
                .iter()
                .filter(|r| r.confidence.is_degraded())
                .count() as u64;
            eprintln!(
                "[campaign] seed {seed} severity {severity:.2}: P={:.3} R={:.3} F1={:.3} \
                 degraded={degraded} gaps={} dups={}",
                score.precision(),
                score.recall(),
                score.f1(),
                analysis.coverage.len(),
                analysis.stats.duplicates
            );
            grid.push(GridPoint {
                seed,
                severity,
                score,
                precision: score.precision(),
                recall: score.recall(),
                f1: score.f1(),
                degraded_runs: degraded,
                coverage_gaps: analysis.coverage.len() as u64,
                duplicates: analysis.stats.duplicates,
                skew_secs: truth.max_displacement_secs(),
            });
        }
    }

    // Mean curve across seeds, per severity.
    let mut curve: Vec<CurvePoint> = Vec::new();
    for &severity in &severities {
        let pts: Vec<&GridPoint> = grid.iter().filter(|g| g.severity == severity).collect();
        let n = pts.len() as f64;
        let mean = |f: &dyn Fn(&GridPoint) -> f64| pts.iter().map(|g| f(g)).sum::<f64>() / n;
        curve.push(CurvePoint {
            severity,
            skew_secs: pts.iter().map(|g| g.skew_secs).max().unwrap_or(0),
            precision: mean(&|g| g.precision),
            recall: mean(&|g| g.recall),
            f1: mean(&|g| g.f1),
            degraded_runs: mean(&|g| g.degraded_runs as f64),
            coverage_gaps: mean(&|g| g.coverage_gaps as f64),
            duplicates: mean(&|g| g.duplicates as f64),
        });
    }

    // The cliff: the severity step with the largest mean-F1 drop (if any
    // step loses more than 0.05), and whether the curve only degrades.
    let monotone_f1 = curve.windows(2).all(|w| w[1].f1 <= w[0].f1 + 0.02);
    let observed_cliff_severity = curve
        .windows(2)
        .map(|w| (w[1].severity, w[0].f1 - w[1].f1))
        .filter(|&(_, drop)| drop > 0.05)
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("drops are finite"))
        .map(|(s, _)| s);
    let window = LogDiverConfig::default().attribution_lag.as_secs();
    let bench = CampaignBench {
        divisor,
        days,
        seeds: seeds.clone(),
        severities: severities.clone(),
        skew_full_secs: SKEW_FULL_SECS,
        attribution_window_secs: window,
        predicted_cliff_severity: window as f64 / SKEW_FULL_SECS as f64,
        curve,
        monotone_f1,
        observed_cliff_severity,
    };

    std::fs::create_dir_all(out_dir).map_err(|e| format!("cannot create {out_dir}: {e}"))?;
    let csv_path = std::path::Path::new(out_dir).join("campaign.csv");
    let mut csv = String::from(
        "seed,severity,precision,recall,f1,tp,fp,fn,tn,excluded,degraded_runs,coverage_gaps,duplicates,skew_secs\n",
    );
    for g in &grid {
        csv.push_str(&format!(
            "{},{},{:.4},{:.4},{:.4},{},{},{},{},{},{},{},{},{}\n",
            g.seed,
            g.severity,
            g.precision,
            g.recall,
            g.f1,
            g.score.true_positives,
            g.score.false_positives,
            g.score.false_negatives,
            g.score.true_negatives,
            g.score.excluded,
            g.degraded_runs,
            g.coverage_gaps,
            g.duplicates,
            g.skew_secs
        ));
    }
    std::fs::write(&csv_path, csv)
        .map_err(|e| format!("cannot write {}: {e}", csv_path.display()))?;
    let json_path = std::path::Path::new(out_dir).join("BENCH_campaign.json");
    let json =
        serde_json::to_string_pretty(&bench).map_err(|e| format!("cannot serialize bench: {e}"))?;
    std::fs::write(&json_path, format!("{json}\n"))
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;
    eprintln!(
        "[campaign] wrote {} and {}",
        csv_path.display(),
        json_path.display()
    );
    println!("severity  precision  recall  f1      degraded  gaps  dups");
    for c in &bench.curve {
        println!(
            "{:>8.2}  {:>9.3}  {:>6.3}  {:>6.3}  {:>8.1}  {:>4.1}  {:>4.0}",
            c.severity, c.precision, c.recall, c.f1, c.degraded_runs, c.coverage_gaps, c.duplicates
        );
    }

    if let Some(floor) = gate_f1 {
        let clean = bench.curve.first().expect("severities is non-empty");
        if clean.f1 < floor {
            return Err(format!(
                "F1 gate breached: clean-point (severity {}) F1 {:.3} is below --gate-f1 {floor}",
                clean.severity, clean.f1
            ));
        }
        eprintln!(
            "[campaign] F1 gate passed: {:.3} >= {floor} at severity {}",
            clean.f1, clean.severity
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_is_harmonic_and_safe_on_zero() {
        let zero = Score::default();
        assert_eq!(zero.f1(), 0.0);
        let s = Score {
            true_positives: 8,
            false_positives: 2,
            false_negatives: 2,
            ..Score::default()
        };
        assert!((s.precision() - 0.8).abs() < 1e-12);
        assert!((s.recall() - 0.8).abs() < 1e-12);
        assert!((s.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn severity_zero_is_the_identity_pipeline() {
        let p = severity_pipeline(1, 0.0, None);
        assert!(p.steps().is_empty());
        let full = severity_pipeline(1, 1.0, None);
        assert!(full.steps().len() >= 4);
    }

    #[test]
    fn severity_grid_parses_sorts_and_dedups() {
        let mut args = Args::default();
        args.flags
            .insert("severities".to_string(), "1, 0.5,0,0.5".to_string());
        assert_eq!(parse_severities(&args).unwrap(), vec![0.0, 0.5, 1.0]);
        args.flags.insert("severities".to_string(), "2".to_string());
        assert!(parse_severities(&args).unwrap_err().contains("outside"));
    }
}
