//! Adversarial-input property tests: the streaming engine must agree with
//! the batch pipeline verdict-for-verdict on *perturbed* logs, not just
//! clean ones.
//!
//! A seeded [`PerturbationPipeline`] mangles a simulated corpus — skewed
//! clocks, duplicate replay, record loss, out-of-window reordering, silent
//! outages, corruption — and the invariants are:
//!
//! 1. **stream == batch** on the same perturbed lines (given a lateness
//!    window wide enough for the injected disorder), including the
//!    coverage gaps each side detects;
//! 2. duplicate replay changes *nothing* but the duplicate counter
//!    (coalescer idempotence, end to end);
//! 3. the quarantine ledger lines up with the [`PerturbationTruth`]: every
//!    corrupted line, and only those, is counted bad.

use std::sync::OnceLock;

use bw_faults::perturb::{
    PerturbSource, Perturbation, PerturbationPipeline, PerturbationTruth, RawLogs,
};
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{Analysis, LogCollection, LogDiver};
use logdiver_stream::{Source, StreamConfig, StreamEngine};
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;

/// One simulated corpus, shared across cases. Seeded apart from the other
/// suites so failures here shrink independently.
fn corpus() -> &'static RawLogs {
    static CORPUS: OnceLock<RawLogs> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let sim = Simulation::new(SimConfig::scaled(64, 2).with_seed(4242)).unwrap();
        let mut raw = MemoryOutput::new();
        sim.run(&mut raw);
        let mut logs = RawLogs::new();
        *logs.lines_mut(PerturbSource::Syslog) = raw.syslog;
        *logs.lines_mut(PerturbSource::HwErr) = raw.hwerr;
        *logs.lines_mut(PerturbSource::Alps) = raw.alps;
        *logs.lines_mut(PerturbSource::Torque) = raw.torque;
        *logs.lines_mut(PerturbSource::Netwatch) = raw.netwatch;
        logs
    })
}

fn to_collection(logs: &RawLogs) -> LogCollection {
    let mut c = LogCollection::new();
    c.syslog = logs.lines(PerturbSource::Syslog).to_vec();
    c.hwerr = logs.lines(PerturbSource::HwErr).to_vec();
    c.alps = logs.lines(PerturbSource::Alps).to_vec();
    c.torque = logs.lines(PerturbSource::Torque).to_vec();
    c.netwatch = logs.lines(PerturbSource::Netwatch).to_vec();
    c
}

fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// The smallest allowed lateness under which no line is dropped as late:
/// the largest backward timestamp jump within any source, plus slack.
fn needed_lateness(logs: &LogCollection) -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for lines in [
        &logs.syslog,
        &logs.hwerr,
        &logs.alps,
        &logs.torque,
        &logs.netwatch,
    ] {
        let mut high: Option<Timestamp> = None;
        for line in lines {
            let Some(ts) = line_timestamp(line) else {
                continue;
            };
            if let Some(h) = high {
                worst = worst.max(h - ts);
            }
            high = Some(high.map_or(ts, |h| h.max(ts)));
        }
    }
    worst + SimDuration::from_secs(1)
}

/// Pushes the five logs as interleaved chunks of `chunk` lines per source
/// per round, then drains.
fn stream_in_chunks(logs: &LogCollection, chunk: usize, lateness: SimDuration) -> Analysis {
    let mut engine = StreamEngine::new(StreamConfig::default().with_lateness(lateness));
    let sources = [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ];
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            let lo = offsets[i];
            let hi = (lo + chunk).min(lines.len());
            if lo < hi {
                engine
                    .push_batch(*source, lines[lo..hi].iter().cloned())
                    .unwrap();
                offsets[i] = hi;
                moved = true;
            } else if lo == lines.len() {
                engine.close(*source);
            }
        }
        if !moved {
            break;
        }
    }
    engine.drain()
}

fn assert_analyses_equal(streamed: &Analysis, batch: &Analysis) {
    assert_eq!(streamed.runs.len(), batch.runs.len(), "run count");
    for (s, b) in streamed.runs.iter().zip(&batch.runs) {
        assert_eq!(s, b, "run {:?} classified differently", b.run.apid);
    }
    assert_eq!(streamed.events, batch.events, "closed events");
    assert_eq!(streamed.coverage, batch.coverage, "coverage gaps");
    assert_eq!(streamed.metrics, batch.metrics, "metric set");
    assert_eq!(streamed.stats, batch.stats, "pipeline stats");
}

/// Outage window placed mid-corpus, sized as a fraction of the extent.
fn mid_outage(logs: &RawLogs, source: PerturbSource, fraction: f64) -> Perturbation {
    let (lo, hi) = corpus_extent(logs);
    let span = (hi - lo).as_secs();
    Perturbation::SourceOutage {
        source,
        start: lo + SimDuration::from_secs(span / 3),
        duration: SimDuration::from_secs((span as f64 * fraction) as i64),
    }
}

fn corpus_extent(logs: &RawLogs) -> (Timestamp, Timestamp) {
    logs.extent().expect("corpus is non-empty")
}

/// One pipeline per perturbation kind, plus an everything-at-once blend.
fn pipeline_for(kind: usize, seed: u64, logs: &RawLogs) -> PerturbationPipeline {
    let p = PerturbationPipeline::new(seed);
    match kind {
        0 => p.with(Perturbation::ClockSkew {
            source: PerturbSource::HwErr,
            offset: SimDuration::from_secs(if seed.is_multiple_of(2) { 450 } else { -450 }),
        }),
        1 => p.with(Perturbation::DuplicateReplay {
            source: PerturbSource::Syslog,
            prob: 0.4,
        }),
        2 => p
            .with(Perturbation::RecordDrop {
                source: PerturbSource::Syslog,
                prob: 0.3,
            })
            .with(Perturbation::RecordDrop {
                source: PerturbSource::Alps,
                prob: 0.2,
            }),
        3 => p.with(Perturbation::Reorder {
            source: PerturbSource::Syslog,
            prob: 0.3,
            delay: SimDuration::from_mins(10),
        }),
        4 => p
            .with(mid_outage(logs, PerturbSource::Syslog, 0.2))
            .with(Perturbation::Corrupt {
                source: PerturbSource::Netwatch,
                prob: 0.2,
            }),
        _ => p
            .with(Perturbation::ClockSkew {
                source: PerturbSource::HwErr,
                offset: SimDuration::from_secs(300),
            })
            .with(Perturbation::ClockDrift {
                source: PerturbSource::Netwatch,
                drift_per_hour: SimDuration::from_secs(30),
            })
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::Syslog,
                prob: 0.25,
            })
            .with(Perturbation::RecordDrop {
                source: PerturbSource::Syslog,
                prob: 0.2,
            })
            .with(Perturbation::Reorder {
                source: PerturbSource::HwErr,
                prob: 0.3,
                delay: SimDuration::from_mins(5),
            })
            .with(mid_outage(logs, PerturbSource::Syslog, 0.15))
            .with(Perturbation::Corrupt {
                source: PerturbSource::Torque,
                prob: 0.1,
            }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every perturbation kind, any chunking: drain == analyze on the same
    /// perturbed lines, coverage gaps included.
    #[test]
    fn perturbed_stream_equals_batch(
        kind in 0usize..6,
        chunk in 1usize..48,
        seed in 0u64..500,
    ) {
        let mut logs = corpus().clone();
        let pipeline = pipeline_for(kind, seed, &logs);
        pipeline.apply(&mut logs);
        let perturbed = to_collection(&logs);
        let batch = LogDiver::new().analyze(&perturbed);
        let streamed = stream_in_chunks(&perturbed, chunk, needed_lateness(&perturbed));
        prop_assert_eq!(&streamed.runs, &batch.runs);
        prop_assert_eq!(&streamed.events, &batch.events);
        prop_assert_eq!(&streamed.coverage, &batch.coverage);
        prop_assert_eq!(&streamed.metrics, &batch.metrics);
        prop_assert_eq!(&streamed.stats, &batch.stats);
    }

    /// Duplicate replay is invisible: verdicts, events, metrics, and
    /// coverage all equal the clean run; only the duplicate counter moves.
    #[test]
    fn duplicate_replay_changes_nothing_but_the_counter(
        seed in 0u64..500,
        prob in 0.1f64..0.9,
    ) {
        let clean = LogDiver::new().analyze(&to_collection(corpus()));
        let mut logs = corpus().clone();
        let truth = PerturbationPipeline::new(seed)
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::Syslog,
                prob,
            })
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::HwErr,
                prob,
            })
            .apply(&mut logs);
        let doubled = LogDiver::new().analyze(&to_collection(&logs));
        prop_assert_eq!(&doubled.runs, &clean.runs);
        prop_assert_eq!(&doubled.events, &clean.events);
        prop_assert_eq!(&doubled.coverage, &clean.coverage);
        prop_assert_eq!(&doubled.metrics, &clean.metrics);
        // Raw replays inflate the parse totals exactly; the ones that
        // survive filtering are exactly what the coalescer collapsed.
        let replayed = truth.duplicated(PerturbSource::Syslog)
            + truth.duplicated(PerturbSource::HwErr);
        let parsed = |a: &Analysis| a.stats.parse.iter().map(|c| c.total).sum::<u64>();
        prop_assert_eq!(parsed(&doubled), parsed(&clean) + replayed);
        prop_assert_eq!(
            doubled.stats.duplicates,
            doubled.stats.entries - clean.stats.entries
        );
        prop_assert_eq!(clean.stats.duplicates, 0);
    }
}

/// The quarantine ledger equals the corruption truth: the clean corpus has
/// zero bad lines, so after perturbation every bad line is an injected one
/// — in both engines.
#[test]
fn quarantines_line_up_with_perturbation_truth() {
    let clean = LogDiver::new().analyze(&to_collection(corpus()));
    assert_eq!(
        clean.stats.parse.iter().map(|c| c.bad).sum::<u64>(),
        0,
        "clean corpus must parse fully for this test to mean anything"
    );
    let mut logs = corpus().clone();
    let truth: PerturbationTruth = PerturbationPipeline::new(77)
        .with(Perturbation::Corrupt {
            source: PerturbSource::Syslog,
            prob: 0.03,
        })
        .with(Perturbation::Corrupt {
            source: PerturbSource::Netwatch,
            prob: 0.5,
        })
        .apply(&mut logs);
    let perturbed = to_collection(&logs);
    let batch = LogDiver::new().analyze(&perturbed);
    let streamed = stream_in_chunks(&perturbed, 7, needed_lateness(&perturbed));
    for (i, source) in [PerturbSource::Syslog, PerturbSource::Netwatch]
        .into_iter()
        .zip([0usize, 4])
        .map(|(s, i)| (i, s))
    {
        let injected = truth.corrupted(source);
        assert!(injected > 0, "pipeline must have corrupted {source:?}");
        assert_eq!(batch.stats.parse[i].bad, injected, "batch bad[{i}]");
        assert_eq!(streamed.stats.parse[i].bad, injected, "stream bad[{i}]");
    }
}

/// A silent mid-corpus syslog outage is reported identically by both
/// engines, and some absence-of-evidence verdict in the window is
/// downgraded rather than silently trusted.
#[test]
fn outage_coverage_gap_is_identical_in_both_modes() {
    let mut logs = corpus().clone();
    PerturbationPipeline::new(5)
        .with(mid_outage(&logs, PerturbSource::Syslog, 0.25))
        .apply(&mut logs);
    let perturbed = to_collection(&logs);
    let batch = LogDiver::new().analyze(&perturbed);
    let streamed = stream_in_chunks(&perturbed, 13, needed_lateness(&perturbed));
    assert!(
        !batch.coverage.is_empty(),
        "a quarter-corpus outage must be detected"
    );
    assert_analyses_equal(&streamed, &batch);
}
