//! Chaos harness for the ingestion path: evolve five log files under a
//! deterministic fault injector (torn writes, truncation, rotation,
//! duplicate replay), tail them with the production [`Tailer`], kill the
//! engine at an arbitrary record, resume from the last checkpoint — and
//! require the final analysis to equal the batch pipeline run over exactly
//! the lines the tailer consumed.
//!
//! The consumed record is the ground truth: faults may corrupt, duplicate,
//! or destroy lines, but whatever the tailer yielded must flow through the
//! streaming pipeline with the same verdicts the batch pipeline reaches on
//! the same lines. Crash-plus-resume must be invisible in the output.
//!
//! Seeds are deterministic; CI sweeps `CHAOS_SEED` to widen coverage
//! without lengthening any single run.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use bw_faults::io::{ChaosWriter, SimulatedLog};
use logdiver::{LogCollection, LogDiver};
use logdiver_stream::tail::{LogFile, Tailer};
use logdiver_stream::{
    HealthPolicy, Source, SourceHealth, StreamCheckpoint, StreamConfig, StreamEngine, StreamError,
};
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Adapter: the stream crate's tailer over this harness's in-memory
/// fault-injected log.
#[derive(Debug)]
struct Chaotic(Rc<RefCell<SimulatedLog>>);

impl LogFile for Chaotic {
    fn len(&mut self) -> io::Result<u64> {
        Ok(self.0.borrow().len())
    }
    fn read_at(&mut self, offset: u64, max: usize) -> io::Result<Vec<u8>> {
        Ok(self.0.borrow().read_at(offset, max))
    }
}

/// One synthetic 3-minute cycle across all five sources (the
/// `stream_memory` generator, plus a multi-byte UTF-8 line so torn writes
/// and truncation can produce invalid-UTF-8 fragments).
fn cycle_lines(i: u64) -> [(Source, Vec<String>); 5] {
    let t = Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(i as i64 * 180);
    let t1 = t + SimDuration::from_secs(1);
    let nid = 2 + (i % 48);
    let slot = i % 4;
    let blade = (i / 4) % 8;
    let mut alps = vec![format!(
        "{t} apsys PLACED apid={i} batch={i}.bw user=u0001 cmd=a.out type=XE width=1 nodelist=nid[{n}]",
        n = 1000 + nid
    )];
    if i > 0 {
        alps.push(format!(
            "{t1} apsys EXIT apid={p} code=0 signal=none node_failed=no runtime=180",
            p = i - 1
        ));
    }
    [
        (
            Source::Torque,
            vec![format!(
                "{t};S;{i}.bw;user=u0001 queue=normal nodes=1 walltime=86400"
            )],
        ),
        (Source::Alps, alps),
        (
            Source::Syslog,
            vec![
                format!("{t} nid{nid:05} kernel: Machine Check Exception: bank 4 status 0xb200"),
                format!("{t1} nid00900 sshd: Accepted publickey for user Çelik·α port 2222"),
            ],
        ),
        (
            Source::HwErr,
            vec![format!("{t}|c0-0c0s{blade}n{slot}|MCE|CRIT|bank=4")],
        ),
        (
            Source::Netwatch,
            vec![format!("{t} netwatch LINK_FAILED coord=(0,0,0) dim=X")],
        ),
    ]
}

/// CI sweeps seeds via `CHAOS_SEED`; locally it defaults to 0.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

struct Harness {
    logs: [Rc<RefCell<SimulatedLog>>; 5],
    tails: [Tailer<Chaotic>; 5],
    writer: ChaosWriter,
    rng: StdRng,
    /// Every line the tailers have yielded (and the engine consumed).
    consumed: [Vec<String>; 5],
}

impl Harness {
    fn new(seed: u64, writer: ChaosWriter) -> Self {
        let logs: [Rc<RefCell<SimulatedLog>>; 5] =
            std::array::from_fn(|_| Rc::new(RefCell::new(SimulatedLog::new())));
        let tails = std::array::from_fn(|i| Tailer::new(Chaotic(Rc::clone(&logs[i]))));
        Harness {
            logs,
            tails,
            writer,
            rng: StdRng::seed_from_u64(seed),
            consumed: Default::default(),
        }
    }

    /// Writes one cycle of activity through the fault injector.
    fn write_cycle(&mut self, i: u64) {
        for (source, lines) in cycle_lines(i) {
            let log = &self.logs[source.index()];
            for line in lines {
                self.writer
                    .append_line(&mut log.borrow_mut(), &line, &mut self.rng);
            }
        }
    }

    /// Polls every tailer and pushes whatever appeared into the engine.
    fn pump(&mut self, engine: &mut StreamEngine) {
        for source in Source::ALL {
            let i = source.index();
            let poll = self.tails[i].poll().expect("in-memory tail cannot fail");
            for line in poll.lines {
                match engine.push(source, line.clone()) {
                    Ok(()) => self.consumed[i].push(line),
                    Err(e) => panic!("push rejected under default policy: {e}"),
                }
            }
        }
    }

    fn offsets(&self) -> [u64; 5] {
        std::array::from_fn(|i| self.tails[i].offset())
    }

    /// Simulates the process dying and coming back: tailers are rebuilt
    /// from the checkpoint's byte offsets, the consumed record rolls back
    /// to what the checkpoint covers.
    fn crash_and_reseat(&mut self, ckpt: Option<&StreamCheckpoint>, ckpt_lines: &[usize; 5]) {
        for source in Source::ALL {
            let i = source.index();
            let offset = ckpt.map_or(0, |c| c.offset(source));
            self.tails[i] = Tailer::resume_at(Chaotic(Rc::clone(&self.logs[i])), offset);
            self.consumed[i].truncate(if ckpt.is_some() { ckpt_lines[i] } else { 0 });
        }
    }

    fn into_collection(self) -> LogCollection {
        let mut logs = LogCollection::new();
        let [syslog, hwerr, alps, torque, netwatch] = self.consumed;
        logs.syslog = syslog;
        logs.hwerr = hwerr;
        logs.alps = alps;
        logs.torque = torque;
        logs.netwatch = netwatch;
        logs
    }
}

/// The property: chaos faults + kill −9 + resume ≡ batch over the consumed
/// record.
fn run_chaos_case(seed: u64, cycles: u64, kill_at: u64, ckpt_every: u64) {
    let config = StreamConfig::default().with_lateness(SimDuration::from_secs(60));
    let mut harness = Harness::new(seed, ChaosWriter::default());
    let mut engine = StreamEngine::new(config.clone());
    let mut checkpoint: Option<StreamCheckpoint> = None;
    let mut ckpt_lines = [0usize; 5];
    let mut crashed = false;

    for i in 0..cycles {
        harness.write_cycle(i);
        harness.pump(&mut engine);

        if i % ckpt_every == ckpt_every - 1 {
            let ckpt = engine.checkpoint(harness.offsets());
            // Exercise the wire format, not just the in-memory struct.
            let json = ckpt.to_json();
            let ckpt = StreamCheckpoint::from_json(&json).expect("round trip");
            ckpt_lines = std::array::from_fn(|s| harness.consumed[s].len());
            checkpoint = Some(ckpt);
        }

        if !crashed && i == kill_at {
            crashed = true;
            drop(engine); // kill -9: in-flight lines past the checkpoint die
            harness.crash_and_reseat(checkpoint.as_ref(), &ckpt_lines);
            engine = match &checkpoint {
                Some(c) => StreamEngine::resume(config.clone(), c).expect("resume"),
                None => StreamEngine::new(config.clone()),
            };
            // Re-consume everything between the checkpoint and the crash.
            harness.pump(&mut engine);
        }
    }

    let streamed = engine.drain();
    let batch = LogDiver::new().analyze(&harness.into_collection());
    assert_eq!(streamed.runs, batch.runs, "verdicts diverged (seed {seed})");
    assert_eq!(
        streamed.events, batch.events,
        "events diverged (seed {seed})"
    );
    assert_eq!(
        streamed.metrics, batch.metrics,
        "metrics diverged (seed {seed})"
    );
    assert_eq!(streamed.stats, batch.stats, "stats diverged (seed {seed})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seed, any kill point, any checkpoint cadence: the crash must be
    /// invisible in the final analysis.
    #[test]
    fn crash_resume_equals_batch(
        case_seed in 0u64..500,
        cycles in 12u64..40,
        kill_frac in 0u64..100,
        ckpt_every in 3u64..9,
    ) {
        let kill_at = kill_frac * cycles / 100;
        run_chaos_case(seed_base().wrapping_add(case_seed), cycles, kill_at, ckpt_every);
    }
}

/// Kill before the first checkpoint exists: resume degenerates to a fresh
/// start and must still match batch over the (restarted) consumed record.
#[test]
fn crash_before_first_checkpoint_restarts_cleanly() {
    run_chaos_case(seed_base().wrapping_add(7_001), 20, 1, 50);
}

/// A clean writer (no faults) with checkpoint/resume — isolates the
/// checkpoint logic from fault noise.
#[test]
fn resume_without_faults_is_lossless() {
    let config = StreamConfig::default().with_lateness(SimDuration::from_secs(60));
    let mut harness = Harness::new(11, ChaosWriter::clean());
    let mut engine = StreamEngine::new(config.clone());
    for i in 0..10 {
        harness.write_cycle(i);
        harness.pump(&mut engine);
    }
    let ckpt = engine.checkpoint(harness.offsets());
    let lines: [usize; 5] = std::array::from_fn(|s| harness.consumed[s].len());
    drop(engine);
    harness.crash_and_reseat(Some(&ckpt), &lines);
    let mut engine = StreamEngine::resume(config, &ckpt).expect("resume");
    for i in 10..20 {
        harness.write_cycle(i);
        harness.pump(&mut engine);
    }
    let streamed = engine.drain();
    let batch = LogDiver::new().analyze(&harness.into_collection());
    assert_eq!(streamed.runs, batch.runs);
    assert_eq!(streamed.events, batch.events);
    assert_eq!(streamed.stats, batch.stats);
    assert_eq!(streamed.runs.len(), 20);
}

/// The circuit breaker: a flooding-garbage source must trip Open, stop
/// blocking the other sources' watermark, and recover through a backoff
/// probe.
#[test]
fn circuit_breaker_isolates_and_recovers() {
    let policy = HealthPolicy {
        degrade_after: 2,
        break_after: 4,
        recover_after: 2,
        probe_lines: 2,
        sample_keep: 1,
        ..HealthPolicy::default()
    };
    let config = StreamConfig::default()
        .with_lateness(SimDuration::from_secs(60))
        .with_health(policy.clone());
    let mut engine = StreamEngine::new(config);

    // Flood ALPS with garbage until the breaker opens and pushes bounce.
    let mut bounced = false;
    for n in 0..10_000 {
        match engine.push(Source::Alps, format!("garbage {n}")) {
            Ok(()) => std::thread::yield_now(),
            Err(StreamError::CircuitOpen(Source::Alps)) => {
                bounced = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(bounced, "circuit never opened under a garbage flood");
    let report = engine.health(Source::Alps);
    assert_eq!(report.state, SourceHealth::Open);
    assert!(report.open_attempts >= 1);
    assert!(report.backoff_ms > 0, "Open state must advertise a backoff");
    assert!(report.rejected_while_open >= 1);

    // The broken source must not block everyone else: feed the other four
    // and require the run watermark to appear.
    for i in 0..5u64 {
        for (source, lines) in cycle_lines(i) {
            if source == Source::Alps {
                continue;
            }
            engine.push_batch(source, lines).unwrap();
        }
    }
    // Wait for a watermark *past the epoch*: the first Some(w) can still
    // sit at the epoch while a starved worker is mid-way through the
    // healthy sources' batches.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let snap = engine.snapshot();
        if snap
            .watermark
            .is_some_and(|w| w > Timestamp::PRODUCTION_EPOCH)
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "watermark still blocked by the circuit-open source"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // Backoff, then probe: half-open admits lines again, and enough good
    // ones close the circuit.
    assert!(engine.probe(Source::Alps));
    assert_eq!(engine.health(Source::Alps).state, SourceHealth::HalfOpen);
    let t = Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(10 * 180);
    engine
        .push(
            Source::Alps,
            format!("{t} apsys PLACED apid=900 batch=900.bw user=u0001 cmd=a.out type=XE width=1 nodelist=nid[1000]"),
        )
        .unwrap();
    engine
        .push(
            Source::Alps,
            format!(
                "{} apsys EXIT apid=900 code=0 signal=none node_failed=no runtime=60",
                t + SimDuration::from_secs(60)
            ),
        )
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        if engine.health(Source::Alps).state == SourceHealth::Healthy {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "probe never closed the circuit: {:?}",
            engine.health(Source::Alps)
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let analysis = engine.drain();
    assert!(analysis.runs.iter().any(|r| r.run.apid == 900.into()));
}

/// A probe that meets more garbage re-opens the circuit with a wider
/// backoff.
#[test]
fn failed_probe_reopens_with_wider_backoff() {
    let policy = HealthPolicy {
        degrade_after: 1,
        break_after: 2,
        recover_after: 2,
        probe_lines: 2,
        sample_keep: 1,
        ..HealthPolicy::default()
    };
    let config = StreamConfig::default().with_health(policy);
    let mut engine = StreamEngine::new(config);
    for n in 0..10_000 {
        match engine.push(Source::Netwatch, format!("junk {n}")) {
            Ok(()) => std::thread::yield_now(),
            Err(StreamError::CircuitOpen(_)) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let first = engine.health(Source::Netwatch);
    assert_eq!(first.state, SourceHealth::Open);

    assert!(engine.probe(Source::Netwatch));
    engine.push(Source::Netwatch, "still junk").unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let second = loop {
        let r = engine.health(Source::Netwatch);
        if r.state == SourceHealth::Open && r.open_attempts > first.open_attempts {
            break r;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "probe failure did not re-open: {r:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    assert!(
        second.backoff_ms > first.backoff_ms,
        "backoff must widen: {} then {}",
        first.backoff_ms,
        second.backoff_ms
    );
    engine.drain();
}

/// Checkpoints carry health state: a source that was Open stays Open
/// across resume, and its rejected counter keeps counting.
#[test]
fn health_survives_checkpoint_resume() {
    let policy = HealthPolicy {
        degrade_after: 1,
        break_after: 2,
        sample_keep: 1,
        ..HealthPolicy::default()
    };
    let config = StreamConfig::default().with_health(policy);
    let mut engine = StreamEngine::new(config.clone());
    for n in 0..10_000 {
        match engine.push(Source::Torque, format!("bad record {n}")) {
            Ok(()) => std::thread::yield_now(),
            Err(StreamError::CircuitOpen(_)) => break,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(engine.health(Source::Torque).state, SourceHealth::Open);
    let ckpt = engine.checkpoint([0; 5]);
    drop(engine);

    let mut engine = StreamEngine::resume(config, &ckpt).expect("resume");
    assert_eq!(engine.health(Source::Torque).state, SourceHealth::Open);
    assert_eq!(
        engine.push(Source::Torque, "more"),
        Err(StreamError::CircuitOpen(Source::Torque))
    );
    assert!(engine.probe(Source::Torque));
    engine.drain();
}
