//! The coordinator state machine: sequencing, watermarks, and the
//! incremental pipeline.
//!
//! Everything here is single-threaded and deterministic. The engine's
//! worker threads only parse; every state transition funnels through
//! [`StreamCore::accept`] (per-source sequence order) and
//! [`StreamCore::advance`] (watermark progress), so the final analysis is
//! independent of thread scheduling.
//!
//! ## Watermarks
//!
//! Each source tracks the newest timestamp it has produced. Under the
//! engine's lateness contract (a record may arrive at most
//! [`crate::StreamConfig::lateness`] earlier than its source's newest
//! timestamp), `progress − lateness` is a low watermark: no future record
//! from that source can carry an earlier timestamp. Two aggregate marks
//! drive the pipeline:
//!
//! - the **entry watermark** (minimum over the open *entry* sources)
//!   releases the reorder buffer into the coalescer and closes events;
//! - the **run watermark** (minimum over *all* open sources) finalizes
//!   runs: a terminated run is classified once `end + lag + MAX_EVENT_SPAN`
//!   is below it, because by then every event that could overlap its
//!   attribution window has closed.
//!
//! A source that has produced nothing holds its mark down (nothing
//! finalizes) until it produces or is closed.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use craylog::alps::AlpsRecord;
use craylog::torque::TorqueRecord;
use logdiver::classify::{classify_one, ClassifiedRun};
use logdiver::coalesce::{Coalescer, ErrorEvent, MAX_EVENT_SPAN};
use logdiver::coverage::{qualify_runs, CoverageConfig, CoverageMap};
use logdiver::filter::{entry_sort_key, EntrySource, FilterStats, FilteredEntry};
use logdiver::parse::ParseCounts;
use logdiver::pipeline::{Analysis, PipelineStats};
use logdiver::workload::RunReconstructor;
use logdiver_types::{SimDuration, Timestamp};

use crate::checkpoint::CoreState;
use crate::config::{Source, StreamConfig};
use crate::health::{HealthReport, HealthState, SourceHealth};
use crate::index::StreamIndex;

/// Lock-free mirror of the per-source health states, shared with the
/// engine so [`crate::StreamEngine::push`] can reject circuit-open pushes
/// without taking the core lock.
pub(crate) type HealthCells = Arc<[AtomicU8; 5]>;

pub(crate) fn new_health_cells() -> HealthCells {
    Arc::new([const { AtomicU8::new(0) }; 5])
}

pub(crate) fn cell_encode(state: SourceHealth) -> u8 {
    match state {
        SourceHealth::Healthy => 0,
        SourceHealth::Degraded => 1,
        SourceHealth::Open => 2,
        SourceHealth::HalfOpen => 3,
    }
}

pub(crate) fn cell_is_open(cells: &HealthCells, i: usize) -> bool {
    cells[i].load(Ordering::Relaxed) == 2
}

/// One record as parsed (and, for entry sources, filtered) by a worker.
#[derive(Debug)]
pub(crate) enum Parsed {
    /// A syslog line: its timestamp, plus the filtered entry when the
    /// pattern table kept it (`None` = operational chatter).
    Syslog {
        /// The record's timestamp (tracked even for discarded lines, so
        /// chatter still advances the watermark).
        timestamp: Timestamp,
        /// The kept entry, if any.
        entry: Option<FilteredEntry>,
    },
    /// A hardware-error record (always kept).
    HwErr(FilteredEntry),
    /// A netwatch record (always kept).
    Netwatch(FilteredEntry),
    /// An ALPS record.
    Alps(AlpsRecord),
    /// A Torque record.
    Torque(TorqueRecord),
}

/// Worker verdict on one raw line.
#[derive(Debug)]
pub(crate) enum Body {
    /// Parsed (and filtered) successfully.
    Ok(Parsed),
    /// Blank or unparseable; the raw line goes to quarantine.
    Bad(String),
}

/// Aggregate watermark over a set of sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mark {
    /// Some open source has produced nothing yet: cannot advance.
    Blocked,
    /// Low watermark over the open sources.
    At(Timestamp),
    /// Every source in the set is closed: no more input can come.
    Done,
}

/// A timestamp beyond any log data, used to flush once sources close.
fn far_future() -> Timestamp {
    Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(i64::MAX / 4)
}

/// Live counters for [`crate::StreamSnapshot`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Counters {
    pub parse: [ParseCounts; 5],
    pub filter: FilterStats,
    pub late_dropped: u64,
    pub buffered_entries: usize,
    pub open_events: usize,
    pub closed_events: usize,
    pub open_runs: usize,
    pub classified_runs: usize,
    pub lethal_events: u64,
    pub watermark: Option<Timestamp>,
    pub health: [HealthReport; 5],
    pub spill_dropped: u64,
}

/// The deterministic heart of the engine.
#[derive(Debug)]
pub(crate) struct StreamCore {
    config: StreamConfig,
    // Per-source sequencing and progress (canonical source order).
    next_seq: [u64; 5],
    pending: [BTreeMap<u64, Body>; 5],
    progress: [Option<Timestamp>; 5],
    open: [bool; 5],
    shards: [usize; 5],
    done_shards: [usize; 5],
    counts: [ParseCounts; 5],
    quarantine: [VecDeque<String>; 5],
    filter_stats: FilterStats,
    // Reorder buffer, keyed by the batch sort key plus source rank and a
    // per-arrival tiebreaker that preserves per-source order.
    buffer: BTreeMap<(Timestamp, u32, u8, u64), FilteredEntry>,
    entry_seq: u64,
    late_dropped: u64,
    released: Option<Timestamp>,
    // Incremental pipeline stages (shared with the batch path).
    coalescer: Coalescer,
    index: StreamIndex,
    reconstructor: RunReconstructor,
    done: BTreeMap<usize, ClassifiedRun>,
    // Source-coverage tracker (order-insensitive by construction, so it
    // matches the batch path no matter how records interleaved).
    coverage: CoverageMap,
    // Per-source health machines, mirrored into the lock-free cells the
    // engine's push path reads.
    health: [HealthState; 5],
    cells: HealthCells,
    // Quarantined raw lines queued for the driver to spill to disk.
    spill: VecDeque<(Source, String)>,
    spill_dropped: u64,
}

impl StreamCore {
    pub(crate) fn new(config: StreamConfig, cells: HealthCells) -> Self {
        let gap = config.logdiver.coalesce_gap;
        let mut shards = [1usize; 5];
        shards[Source::Syslog.index()] = config.syslog_shards.max(1);
        StreamCore {
            config,
            next_seq: [0; 5],
            pending: Default::default(),
            progress: [None; 5],
            open: [true; 5],
            shards,
            done_shards: [0; 5],
            counts: [ParseCounts::default(); 5],
            quarantine: Default::default(),
            filter_stats: FilterStats::default(),
            buffer: BTreeMap::new(),
            entry_seq: 0,
            late_dropped: 0,
            released: None,
            coalescer: Coalescer::new(gap),
            index: StreamIndex::new(),
            reconstructor: RunReconstructor::new(),
            done: BTreeMap::new(),
            coverage: CoverageMap::new(CoverageConfig::default()),
            health: Default::default(),
            cells,
            spill: VecDeque::new(),
            spill_dropped: 0,
        }
    }

    /// Accepts one worker result, applying it (and any held-back
    /// successors) in per-source sequence order.
    pub(crate) fn accept(&mut self, source: Source, seq: u64, body: Body) {
        let i = source.index();
        if seq != self.next_seq[i] {
            self.pending[i].insert(seq, body);
            return;
        }
        self.apply(source, body);
        self.next_seq[i] += 1;
        while let Some(held) = self.pending[i].remove(&self.next_seq[i]) {
            self.apply(source, held);
            self.next_seq[i] += 1;
        }
    }

    /// Records that one parse shard of `source` has exhausted its input.
    /// When the last shard finishes, the source stops gating watermarks.
    pub(crate) fn shard_done(&mut self, source: Source) {
        let i = source.index();
        self.done_shards[i] += 1;
        if self.done_shards[i] >= self.shards[i] {
            self.open[i] = false;
        }
    }

    fn apply(&mut self, source: Source, body: Body) {
        let i = source.index();
        self.counts[i].total += 1;
        match body {
            Body::Bad(line) => {
                let ordinal = self.counts[i].bad;
                self.counts[i].bad += 1;
                let keep = self.health[i].record_bad(&self.config.health, ordinal);
                self.sync_cell(i);
                if !keep {
                    return;
                }
                if self.config.spill_quarantined {
                    if self.spill.len() < self.config.spill_capacity {
                        self.spill.push_back((source, line.clone()));
                    } else {
                        self.spill_dropped += 1;
                    }
                }
                if self.config.quarantine_keep > 0 {
                    let q = &mut self.quarantine[i];
                    if q.len() == self.config.quarantine_keep {
                        q.pop_front();
                    }
                    q.push_back(line);
                }
            }
            Body::Ok(parsed) => {
                self.health[i].record_good(&self.config.health);
                self.sync_cell(i);
                self.apply_parsed(i, parsed);
            }
        }
    }

    fn apply_parsed(&mut self, i: usize, parsed: Parsed) {
        match parsed {
            Parsed::Syslog { timestamp, entry } => {
                self.filter_stats.syslog_examined += 1;
                self.bump(i, timestamp);
                // Coverage sees every parsed record, chatter included —
                // exactly what the batch path observes.
                self.coverage.observe(EntrySource::Syslog, timestamp);
                if let Some(e) = entry {
                    self.filter_stats.syslog_kept += 1;
                    self.buffer_entry(e);
                }
            }
            Parsed::HwErr(e) | Parsed::Netwatch(e) => {
                self.filter_stats.structured_kept += 1;
                self.bump(i, e.timestamp);
                self.coverage.observe(e.source, e.timestamp);
                self.buffer_entry(e);
            }
            Parsed::Alps(rec) => {
                self.bump(i, alps_timestamp(&rec));
                self.reconstructor.push_alps(&rec);
            }
            Parsed::Torque(rec) => {
                self.bump(i, rec.timestamp);
                self.reconstructor.push_torque(&rec);
            }
        }
    }

    fn sync_cell(&self, i: usize) {
        self.cells[i].store(cell_encode(self.health[i].state), Ordering::Relaxed);
    }

    fn bump(&mut self, i: usize, ts: Timestamp) {
        self.progress[i] = Some(self.progress[i].map_or(ts, |p| p.max(ts)));
    }

    fn buffer_entry(&mut self, entry: FilteredEntry) {
        if self.released.is_some_and(|w| entry.timestamp < w) {
            // Later than the allowance: its window may already be closed.
            self.late_dropped += 1;
            return;
        }
        let (ts, node) = entry_sort_key(&entry);
        let rank = match entry.source {
            EntrySource::Syslog => 0u8,
            EntrySource::HwErr => 1,
            EntrySource::Netwatch => 2,
        };
        self.buffer.insert((ts, node, rank, self.entry_seq), entry);
        self.entry_seq += 1;
    }

    fn mark(&self, entry_only: bool) -> Mark {
        // The most advanced open source (any health) anchors the clamp on
        // Degraded stragglers.
        let mut leader: Option<Timestamp> = None;
        for s in Source::ALL {
            let i = s.index();
            if self.open[i] {
                if let Some(p) = self.progress[i] {
                    leader = Some(leader.map_or(p, |l| l.max(p)));
                }
            }
        }
        let mut low: Option<Timestamp> = None;
        let mut any_open = false;
        let mut any_gating = false;
        for s in Source::ALL {
            if entry_only && !s.is_entry() {
                continue;
            }
            let i = s.index();
            if !self.open[i] {
                continue;
            }
            any_open = true;
            let health = self.health[i].state;
            if matches!(health, SourceHealth::Open | SourceHealth::HalfOpen) {
                // Circuit broken: the source must not block the others.
                continue;
            }
            any_gating = true;
            let clamp = match (health, leader) {
                (SourceHealth::Degraded, Some(l)) => Some(l - self.config.health.degraded_hold),
                _ => None,
            };
            let gate = match (self.progress[i], clamp) {
                (None, None) => return Mark::Blocked,
                // Degraded before producing anything: ride the clamp alone.
                (None, Some(c)) => c,
                (Some(p), None) => p - self.config.lateness,
                // Degraded straggler: may lag the leader by at most
                // `degraded_hold` (late records become `late_dropped`).
                (Some(p), Some(c)) => (p - self.config.lateness).max(c),
            };
            low = Some(low.map_or(gate, |c| c.min(gate)));
        }
        if !any_open {
            return Mark::Done;
        }
        if !any_gating {
            // Every still-open source is circuit-broken: hold position
            // rather than flushing — a probe may bring one back.
            return Mark::Blocked;
        }
        match low {
            Some(w) => Mark::At(w),
            None => Mark::Blocked,
        }
    }

    /// Advances both watermarks: releases ripe entries into the coalescer,
    /// harvests closed events into the live index, and classifies every
    /// newly finalizable run.
    pub(crate) fn advance(&mut self) {
        match self.mark(true) {
            Mark::Blocked => {}
            Mark::At(w) => self.release_until(w),
            Mark::Done => self.release_until(far_future()),
        }
        match self.mark(false) {
            Mark::Blocked => {}
            Mark::At(w) => self.finalize_runs(w),
            Mark::Done => self.finalize_runs(far_future()),
        }
    }

    fn release_until(&mut self, watermark: Timestamp) {
        if self.released.is_some_and(|r| watermark <= r) {
            return;
        }
        self.released = Some(watermark);
        // Keys strictly below (watermark, 0, 0, 0) have timestamp <
        // watermark; everything at or after the watermark stays buffered
        // because an in-flight record could still sort before it.
        let rest = self.buffer.split_off(&(watermark, 0, 0, 0));
        let ripe = std::mem::replace(&mut self.buffer, rest);
        for entry in ripe.values() {
            self.coalescer.push(entry);
        }
        for event in self.coalescer.take_closed(watermark) {
            self.index.insert(event);
        }
    }

    fn finalize_runs(&mut self, watermark: Timestamp) {
        // Safe once no event overlapping [end − lead, end + lag] can still
        // be open: open events start within MAX_EVENT_SPAN of the entry
        // watermark, which the run watermark never exceeds.
        let cutoff = watermark - MAX_EVENT_SPAN - self.config.logdiver.attribution_lag;
        for (seq, run) in self.reconstructor.take_finalizable(cutoff) {
            let verdict = classify_one(
                run,
                self.reconstructor.jobs(),
                &self.index,
                &self.config.logdiver,
            );
            self.done.insert(seq, verdict);
        }
    }

    pub(crate) fn counters(&self) -> Counters {
        Counters {
            parse: self.counts,
            filter: self.filter_stats,
            late_dropped: self.late_dropped,
            buffered_entries: self.buffer.len(),
            open_events: self.coalescer.open_len(),
            closed_events: self.index.len(),
            open_runs: self.reconstructor.open_len(),
            classified_runs: self.done.len(),
            lethal_events: self.index.lethal_count(),
            watermark: match self.mark(false) {
                Mark::At(w) => Some(w),
                _ => None,
            },
            health: self.health_reports(),
            spill_dropped: self.spill_dropped,
        }
    }

    pub(crate) fn health_reports(&self) -> [HealthReport; 5] {
        std::array::from_fn(|i| self.health[i].report(&self.config.health, i))
    }

    pub(crate) fn health_report(&self, source: Source) -> HealthReport {
        let i = source.index();
        self.health[i].report(&self.config.health, i)
    }

    pub(crate) fn note_rejected(&mut self, source: Source) {
        self.health[source.index()].rejected_while_open += 1;
    }

    pub(crate) fn probe(&mut self, source: Source) -> bool {
        let i = source.index();
        let moved = self.health[i].probe(&self.config.health);
        self.sync_cell(i);
        moved
    }

    pub(crate) fn mark_stalled(&mut self, source: Source) {
        let i = source.index();
        self.health[i].mark_stalled();
        self.sync_cell(i);
    }

    pub(crate) fn mark_recovered(&mut self, source: Source) {
        let i = source.index();
        self.health[i].mark_recovered(&self.config.health);
        self.sync_cell(i);
    }

    pub(crate) fn take_spilled(&mut self) -> Vec<(Source, String)> {
        self.spill.drain(..).collect()
    }

    /// True once every pushed line has been applied in sequence order —
    /// the precondition for [`StreamCore::checkpoint_state`].
    pub(crate) fn is_quiescent(&self, pushed: &[u64; 5]) -> bool {
        (0..5).all(|i| self.next_seq[i] == pushed[i] && self.pending[i].is_empty())
    }

    /// Serializes the open state. Callers must have established quiescence
    /// (see [`StreamCore::is_quiescent`]): held-back out-of-order parse
    /// results cannot be externalized.
    pub(crate) fn checkpoint_state(&self) -> CoreState {
        debug_assert!(
            self.pending.iter().all(BTreeMap::is_empty),
            "checkpoint requires quiescence"
        );
        CoreState {
            next_seq: self.next_seq,
            progress: self.progress,
            open: self.open,
            counts: self.counts,
            quarantine: self
                .quarantine
                .iter()
                .map(|q| q.iter().cloned().collect())
                .collect(),
            filter_stats: self.filter_stats,
            buffer: self
                .buffer
                .iter()
                .map(|(&(_, _, _, seq), entry)| (seq, *entry))
                .collect(),
            entry_seq: self.entry_seq,
            late_dropped: self.late_dropped,
            released: self.released,
            coalescer: self.coalescer.state(),
            events: self.index.events_in_insertion_order(),
            reconstructor: self.reconstructor.state(),
            done: self
                .done
                .iter()
                .map(|(&seq, run)| (seq as u64, run.clone()))
                .collect(),
            health: self.health.to_vec(),
            spill_dropped: self.spill_dropped,
            coverage: self.coverage.state(),
        }
    }

    /// Rebuilds a core from a checkpoint. Inverse of
    /// [`StreamCore::checkpoint_state`] up to the spill queue (drained
    /// before checkpointing by contract).
    pub(crate) fn from_state(config: StreamConfig, cells: HealthCells, state: CoreState) -> Self {
        let mut core = StreamCore::new(config, cells);
        core.next_seq = state.next_seq;
        core.progress = state.progress;
        core.open = state.open;
        core.counts = state.counts;
        for (i, lines) in state.quarantine.into_iter().take(5).enumerate() {
            core.quarantine[i] = lines.into();
        }
        core.filter_stats = state.filter_stats;
        for (seq, entry) in state.buffer {
            let (ts, node) = entry_sort_key(&entry);
            let rank = match entry.source {
                EntrySource::Syslog => 0u8,
                EntrySource::HwErr => 1,
                EntrySource::Netwatch => 2,
            };
            core.buffer.insert((ts, node, rank, seq), entry);
        }
        core.entry_seq = state.entry_seq;
        core.late_dropped = state.late_dropped;
        core.released = state.released;
        core.coalescer = Coalescer::restore(core.config.logdiver.coalesce_gap, state.coalescer);
        core.index = StreamIndex::from_events(state.events);
        core.reconstructor = RunReconstructor::restore(state.reconstructor);
        core.done = state
            .done
            .into_iter()
            .map(|(seq, run)| (seq as usize, run))
            .collect();
        for (i, health) in state.health.into_iter().take(5).enumerate() {
            core.health[i] = health;
            core.sync_cell(i);
        }
        core.spill_dropped = state.spill_dropped;
        core.coverage = CoverageMap::restore(CoverageConfig::default(), state.coverage);
        core
    }

    pub(crate) fn finished_runs(&self) -> Vec<ClassifiedRun> {
        self.done.values().cloned().collect()
    }

    pub(crate) fn closed_events(&self) -> Vec<ErrorEvent> {
        self.index.events_in_order()
    }

    pub(crate) fn quarantined(&self, source: Source) -> (u64, Vec<String>) {
        let i = source.index();
        (
            self.counts[i].bad,
            self.quarantine[i].iter().cloned().collect(),
        )
    }

    /// Flushes everything and produces the full batch-equivalent analysis.
    pub(crate) fn finalize(mut self) -> Analysis {
        self.open = [false; 5];
        self.release_until(far_future());
        let workload_stats = self.reconstructor.stats_snapshot();
        for (seq, run) in self.reconstructor.take_all() {
            let verdict = classify_one(
                run,
                self.reconstructor.jobs(),
                &self.index,
                &self.config.logdiver,
            );
            self.done.insert(seq, verdict);
        }
        let mut runs: Vec<ClassifiedRun> = self.done.into_values().collect();
        let events = self.index.events_in_order();
        let stats = PipelineStats {
            parse: self.counts,
            filter: self.filter_stats,
            workload: workload_stats,
            entries: self.filter_stats.syslog_kept + self.filter_stats.structured_kept,
            duplicates: self.coalescer.duplicates(),
            events: events.len() as u64,
            lethal_events: self.index.lethal_count(),
        };
        // The coverage post-pass runs at finalize, once the tracker has
        // seen the whole stream — a gap near a run may only become
        // detectable after the run was incrementally classified.
        let gaps = self.coverage.gaps();
        qualify_runs(&mut runs, &gaps, &self.config.logdiver);
        let metrics = logdiver::metrics::compute(&runs, &events);
        Analysis {
            runs,
            events,
            metrics,
            stats,
            coverage: gaps,
        }
    }
}

fn alps_timestamp(rec: &AlpsRecord) -> Timestamp {
    match rec {
        AlpsRecord::Placed(p) => p.timestamp,
        AlpsRecord::Exit(e) => e.timestamp,
        AlpsRecord::LaunchErr(l) => l.timestamp,
    }
}
