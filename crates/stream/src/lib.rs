//! # logdiver-stream
//!
//! Online streaming ingestion for LogDiver: raw log lines go in (in
//! arrival order, from all five sources), live metrics come out — without
//! waiting for the full 518-day corpus to be on disk.
//!
//! The batch pipeline ([`logdiver::LogDiver`]) and this engine are two
//! drivers over the *same* incremental stages:
//! [`logdiver::coalesce::Coalescer`],
//! [`logdiver::workload::RunReconstructor`], and
//! [`logdiver::classify::classify_one`] over the
//! [`logdiver::matcher::EventLookup`] trait. The engine adds what online
//! operation needs: parallel parsing behind bounded channels, per-source
//! low watermarks with an allowed-lateness reorder buffer, and
//! watermark-driven event closing and run finalization, so memory is
//! proportional to *open* state rather than the whole history.
//!
//! ## Correctness bar
//!
//! For any chunking of the same logs — and any within-lateness reordering
//! inside a source — [`StreamEngine::drain`] returns an
//! [`logdiver::pipeline::Analysis`] equal to what
//! [`logdiver::LogDiver::analyze`] computes on the whole corpus:
//! verdict-for-verdict, event-for-event, metric-for-metric. The
//! equivalence proptests in `tests/` enforce exactly that.
//!
//! ```
//! use logdiver_stream::{Source, StreamConfig, StreamEngine};
//!
//! let mut engine = StreamEngine::new(StreamConfig::default());
//! engine
//!     .push(
//!         Source::Alps,
//!         "2013-03-28 12:30:00 apsys PLACED apid=7 batch=1.bw user=u0001 \
//!          cmd=a.out type=XE width=2 nodelist=nid[0-1]",
//!     )
//!     .unwrap();
//! engine
//!     .push(
//!         Source::Alps,
//!         "2013-03-28 13:30:00 apsys EXIT apid=7 code=0 signal=none \
//!          node_failed=no runtime=3600",
//!     )
//!     .unwrap();
//! let analysis = engine.drain();
//! assert_eq!(analysis.runs.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod checkpoint;
mod config;
mod engine;
mod health;
mod index;
pub mod inline;
mod state;
pub mod tail;

pub use checkpoint::{ResumeError, StreamCheckpoint};
pub use config::{Source, StreamConfig};
pub use engine::{StreamEngine, StreamError, StreamSnapshot};
pub use health::{HealthPolicy, HealthReport, SourceHealth};
pub use index::StreamIndex;
pub use inline::InlineEngine;

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver::{LogCollection, LogDiver};
    use logdiver_types::ExitClass;

    /// The batch pipeline's handwritten scenario, pushed line by line.
    fn scenario() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.torque.extend([
            "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
            "2013-03-28 10:00:00;S;2.bw;user=u0002 queue=small nodes=1 walltime=86400".to_string(),
        ]);
        logs.alps.extend([
            "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 10:00:06 apsys PLACED apid=200 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[100]".to_string(),
            "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
            "2013-03-28 13:00:06 apsys EXIT apid=200 code=0 signal=none node_failed=no runtime=10800".to_string(),
            "2013-03-28 14:00:00 apsys PLACED apid=300 batch=2.bw user=u0002 cmd=vasp type=XE width=1 nodelist=nid[101]".to_string(),
            "2013-03-28 14:00:03 apsys LAUNCHERR apid=300 reason=placement failed: node unavailable".to_string(),
        ]);
        logs.syslog.extend([
            "2013-03-28 09:59:00 nid00050 ntpd: time slew +0.012s".to_string(),
            "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200".to_string(),
            "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead".to_string(),
            "2013-03-28 15:00:00 nid00051 sshd: Accepted publickey for user port 2222".to_string(),
        ]);
        logs.hwerr.extend([
            "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
            "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
        ]);
        logs
    }

    fn push_all(engine: &mut StreamEngine, logs: &LogCollection) {
        engine
            .push_batch(Source::Syslog, logs.syslog.iter().cloned())
            .unwrap();
        engine
            .push_batch(Source::HwErr, logs.hwerr.iter().cloned())
            .unwrap();
        engine
            .push_batch(Source::Alps, logs.alps.iter().cloned())
            .unwrap();
        engine
            .push_batch(Source::Torque, logs.torque.iter().cloned())
            .unwrap();
        engine
            .push_batch(Source::Netwatch, logs.netwatch.iter().cloned())
            .unwrap();
    }

    #[test]
    fn drain_matches_batch_on_handwritten_scenario() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let mut engine = StreamEngine::new(StreamConfig::default());
        push_all(&mut engine, &logs);
        let streamed = engine.drain();
        assert_eq!(streamed.runs, batch.runs);
        assert_eq!(streamed.events, batch.events);
        assert_eq!(streamed.metrics, batch.metrics);
        assert_eq!(streamed.stats, batch.stats);
    }

    #[test]
    fn corrupt_lines_are_quarantined_not_fatal() {
        let logs = scenario();
        let mut engine = StreamEngine::new(StreamConfig::default());
        push_all(&mut engine, &logs);
        engine.push(Source::Syslog, "¡corrupted±line···").unwrap();
        engine.push(Source::Alps, "2013-03-28 garbage").unwrap();
        engine.push(Source::HwErr, "   ").unwrap();
        let (bad, kept) = {
            // Let the workers catch up before inspecting the quarantine.
            loop {
                let (bad, kept) = engine.quarantined(Source::Syslog);
                if bad >= 1 {
                    break (bad, kept);
                }
                std::thread::yield_now();
            }
        };
        assert_eq!(bad, 1);
        assert_eq!(kept, vec!["¡corrupted±line···".to_string()]);
        let analysis = engine.drain();
        assert_eq!(analysis.runs.len(), 3);
        assert_eq!(analysis.stats.parse[0].bad, 1);
        assert_eq!(analysis.stats.parse[1].bad, 1);
        assert_eq!(analysis.stats.parse[2].bad, 1);
        assert!(analysis
            .runs
            .iter()
            .any(|r| matches!(r.class, ExitClass::SystemFailure(_))));
    }

    #[test]
    fn push_after_close_errors() {
        let mut engine = StreamEngine::new(StreamConfig::default());
        engine.close(Source::Netwatch);
        assert_eq!(
            engine.push(Source::Netwatch, "x"),
            Err(StreamError::SourceClosed(Source::Netwatch))
        );
        assert_eq!(engine.pushed(Source::Netwatch), 0);
        let analysis = engine.drain();
        assert!(analysis.runs.is_empty());
    }

    #[test]
    fn snapshot_is_queryable_mid_stream() {
        let logs = scenario();
        let mut engine = StreamEngine::new(StreamConfig::default());
        push_all(&mut engine, &logs);
        let snap = engine.snapshot();
        assert!(snap.late_dropped == 0);
        let analysis = engine.drain();
        let end = engine_total(&analysis);
        assert_eq!(end, 14, "all pushed lines accounted for");
    }

    fn engine_total(analysis: &logdiver::Analysis) -> u64 {
        analysis.stats.parse.iter().map(|c| c.total).sum()
    }
}
