//! The threaded shell: per-source parse workers, bounded channels, and the
//! coordinator that owns the [`StreamCore`].
//!
//! ```text
//!  push(source, line)
//!    │  bounded input channel per shard (backpressure)
//!    ▼
//!  parse workers — syslog is shardable; workers also run the pattern
//!    │             table, so filtering parallelizes with parsing
//!    ▼  bounded result channel
//!  coordinator — re-sequences per source, advances watermarks, feeds the
//!    │           incremental coalescer/reconstructor/classifier
//!    ▼
//!  StreamCore behind parking_lot::Mutex — snapshot() reads it live,
//!                                         drain() consumes it
//! ```

use std::sync::Arc;
use std::thread::JoinHandle;

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use crossbeam::channel::{bounded, Receiver, Sender};
use logdiver::filter::{
    entry_from_hwerr, entry_from_netwatch, entry_from_syslog, FilterStats, PatternTable,
};
use logdiver::metrics::{compute, MetricSet};
use logdiver::parse::ParseCounts;
use logdiver::pipeline::Analysis;
use logdiver_types::{SimDuration, Timestamp};
use parking_lot::Mutex;

use crate::checkpoint::{ResumeError, StreamCheckpoint};
use crate::config::{Source, StreamConfig};
use crate::health::HealthReport;
use crate::state::{cell_is_open, new_health_cells, Body, HealthCells, Parsed, StreamCore};

/// Errors the push API can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The source was closed with [`StreamEngine::close`]; no more lines
    /// can be pushed to it.
    SourceClosed(Source),
    /// The source's circuit breaker is open: the line was rejected (and
    /// counted). Wait [`HealthReport::backoff_ms`], call
    /// [`StreamEngine::probe`], then retry.
    CircuitOpen(Source),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::SourceClosed(s) => write!(f, "source {} is closed", s.name()),
            StreamError::CircuitOpen(s) => {
                write!(f, "source {}: circuit breaker is open", s.name())
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A live view of the engine, cheap to take while ingestion continues.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// The run watermark: everything older is fully processed. `None`
    /// until every open source has produced at least one record.
    pub watermark: Option<Timestamp>,
    /// Per-source parse accounting (`[syslog, hwerr, alps, torque,
    /// netwatch]`); `bad` is the corrupt-line quarantine counter.
    pub parse: [ParseCounts; 5],
    /// Filter accounting so far.
    pub filter: FilterStats,
    /// Entries that arrived later than the allowed lateness and were
    /// skipped.
    pub late_dropped: u64,
    /// Entries waiting in the reorder buffer.
    pub buffered_entries: usize,
    /// Error events still open in the coalescer.
    pub open_events: usize,
    /// Error events closed and indexed.
    pub closed_events: usize,
    /// Of those, lethal events.
    pub lethal_events: u64,
    /// Reconstructed runs not yet finalized.
    pub open_runs: usize,
    /// Runs classified so far.
    pub classified_runs: usize,
    /// Metrics over the closed/classified state — the same [`MetricSet`]
    /// the batch pipeline computes, restricted to what has finalized.
    pub metrics: MetricSet,
    /// Per-source health (`[syslog, hwerr, alps, torque, netwatch]`).
    pub health: [HealthReport; 5],
    /// Quarantined lines dropped because the spill queue was full (see
    /// [`StreamEngine::take_spilled`]).
    pub spill_dropped: u64,
}

enum CoordMsg {
    Line {
        source: Source,
        seq: u64,
        body: Body,
    },
    ShardDone(Source),
}

/// The online streaming ingestion engine.
///
/// Push raw lines in arrival order; parsing fans out to worker threads,
/// results are re-sequenced, and the pipeline runs incrementally behind
/// watermarks. [`StreamEngine::drain`] returns the same
/// [`Analysis`] the batch [`logdiver::LogDiver`] produces on the same
/// lines, for any chunking of the input (within the lateness allowance).
#[derive(Debug)]
pub struct StreamEngine {
    inputs: Vec<Vec<Sender<(u64, String)>>>,
    seqs: [u64; 5],
    lateness: SimDuration,
    core: Arc<Mutex<StreamCore>>,
    cells: HealthCells,
    workers: Vec<JoinHandle<()>>,
    coordinator: Option<JoinHandle<()>>,
}

impl StreamEngine {
    /// Starts the engine: one parse worker per source, plus
    /// `config.syslog_shards` for syslog, plus the coordinator.
    pub fn new(config: StreamConfig) -> Self {
        let cells = new_health_cells();
        let core = StreamCore::new(config.clone(), Arc::clone(&cells));
        Self::launch(config, core, cells, [0; 5], [true; 5])
    }

    /// Rebuilds an engine from a [`StreamCheckpoint`], resuming exactly
    /// where the checkpointed engine left off: watermarks, reorder buffer,
    /// open events and runs, counters, and health machines all carry over.
    /// The caller feeds each source from
    /// [`StreamCheckpoint::offset`] onward; the resumed engine's future
    /// output equals an engine that never stopped.
    ///
    /// # Errors
    ///
    /// [`ResumeError::LatenessMismatch`] when `config.lateness` differs
    /// from the checkpoint's (the released watermark baked the old value
    /// in), [`ResumeError::Malformed`] when the checkpoint's internal
    /// arrays have the wrong shape.
    pub fn resume(
        config: StreamConfig,
        checkpoint: &StreamCheckpoint,
    ) -> Result<Self, ResumeError> {
        if config.lateness.as_secs() != checkpoint.lateness_secs {
            return Err(ResumeError::LatenessMismatch {
                checkpoint: checkpoint.lateness_secs,
                config: config.lateness.as_secs(),
            });
        }
        if checkpoint.core.health.len() != 5 || checkpoint.core.quarantine.len() != 5 {
            return Err(ResumeError::Malformed(format!(
                "expected 5 sources, found {} health / {} quarantine entries",
                checkpoint.core.health.len(),
                checkpoint.core.quarantine.len()
            )));
        }
        let cells = new_health_cells();
        let core =
            StreamCore::from_state(config.clone(), Arc::clone(&cells), checkpoint.core.clone());
        Ok(Self::launch(
            config,
            core,
            cells,
            checkpoint.core.next_seq,
            checkpoint.core.open,
        ))
    }

    fn launch(
        config: StreamConfig,
        core: StreamCore,
        cells: HealthCells,
        seqs: [u64; 5],
        open: [bool; 5],
    ) -> Self {
        let capacity = config.channel_capacity.max(1);
        let table = Arc::new(config.table.clone());
        let core = Arc::new(Mutex::new(core));
        let (out_tx, out_rx) = bounded::<CoordMsg>(capacity);

        let mut inputs = Vec::with_capacity(5);
        let mut workers = Vec::new();
        for source in Source::ALL {
            let shards = if source == Source::Syslog {
                config.syslog_shards.max(1)
            } else {
                1
            };
            let mut senders = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (in_tx, in_rx) = bounded::<(u64, String)>(capacity);
                let tx = out_tx.clone();
                let table = Arc::clone(&table);
                // lint: allow(thread-spawn) the parse-worker pool IS the engine's concurrency; merges are seq-stamped, so output stays deterministic (DESIGN §10)
                workers.push(std::thread::spawn(move || {
                    worker(source, &table, &in_rx, &tx)
                }));
                senders.push(in_tx);
            }
            // A source that was already closed at checkpoint time stays
            // closed: dropping the senders lets its workers finish.
            if !open[source.index()] {
                senders.clear();
            }
            inputs.push(senders);
        }
        drop(out_tx);

        let coord_core = Arc::clone(&core);
        // lint: allow(thread-spawn) single coordinator thread applying seq-ordered records; determinism argument in DESIGN §10
        let coordinator = std::thread::spawn(move || coordinate(&out_rx, &coord_core));
        StreamEngine {
            inputs,
            seqs,
            lateness: config.lateness,
            core,
            cells,
            workers,
            coordinator: Some(coordinator),
        }
    }

    /// Feeds one raw line. Blocks when the source's parse worker is behind
    /// (bounded-channel backpressure).
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`StreamEngine::close`] on this
    /// source; [`StreamError::CircuitOpen`] while the source's circuit
    /// breaker is open.
    pub fn push(&mut self, source: Source, line: impl Into<String>) -> Result<(), StreamError> {
        let i = source.index();
        let senders = &self.inputs[i];
        if senders.is_empty() {
            return Err(StreamError::SourceClosed(source));
        }
        if cell_is_open(&self.cells, i) {
            self.core.lock().note_rejected(source);
            return Err(StreamError::CircuitOpen(source));
        }
        let seq = self.seqs[i];
        let shard = (seq % senders.len() as u64) as usize;
        senders[shard]
            .send((seq, line.into()))
            .map_err(|_| StreamError::SourceClosed(source))?;
        self.seqs[i] = seq + 1;
        Ok(())
    }

    /// Feeds many lines to one source.
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`StreamEngine::close`] on this
    /// source.
    pub fn push_batch<L: Into<String>>(
        &mut self,
        source: Source,
        lines: impl IntoIterator<Item = L>,
    ) -> Result<(), StreamError> {
        for line in lines {
            self.push(source, line)?;
        }
        Ok(())
    }

    /// Declares a source exhausted: its parse workers finish and it stops
    /// holding the watermarks down. Use this when a log file is absent or
    /// fully read and other sources are still flowing.
    pub fn close(&mut self, source: Source) {
        self.inputs[source.index()].clear();
    }

    /// Lines accepted per source so far.
    pub fn pushed(&self, source: Source) -> u64 {
        self.seqs[source.index()]
    }

    /// Takes a live snapshot. Holds the state lock only long enough to
    /// clone the finalized runs and closed events; metrics are computed
    /// outside the lock.
    pub fn snapshot(&self) -> StreamSnapshot {
        let (counters, runs, events) = {
            let core = self.core.lock();
            (core.counters(), core.finished_runs(), core.closed_events())
        };
        StreamSnapshot {
            watermark: counters.watermark,
            parse: counters.parse,
            filter: counters.filter,
            late_dropped: counters.late_dropped,
            buffered_entries: counters.buffered_entries,
            open_events: counters.open_events,
            closed_events: counters.closed_events,
            lethal_events: counters.lethal_events,
            open_runs: counters.open_runs,
            classified_runs: counters.classified_runs,
            metrics: compute(&runs, &events),
            health: counters.health,
            spill_dropped: counters.spill_dropped,
        }
    }

    /// The corrupt-line quarantine for one source: total count and up to
    /// `quarantine_keep` most recent raw lines.
    pub fn quarantined(&self, source: Source) -> (u64, Vec<String>) {
        self.core.lock().quarantined(source)
    }

    /// Current health of one source.
    pub fn health(&self, source: Source) -> HealthReport {
        self.core.lock().health_report(source)
    }

    /// Half-opens an Open circuit so a bounded probe can flow. The driver
    /// calls this after waiting [`HealthReport::backoff_ms`]. Returns
    /// `false` (no-op) when the circuit is not open.
    pub fn probe(&mut self, source: Source) -> bool {
        self.core.lock().probe(source)
    }

    /// Driver verdict: the source is stalled (its file is not growing
    /// while others are). Degrades a Healthy source; see
    /// [`StreamEngine::mark_recovered`].
    pub fn mark_stalled(&mut self, source: Source) {
        self.core.lock().mark_stalled(source);
    }

    /// Driver verdict: the stall cleared. A source degraded only by the
    /// stall returns to Healthy.
    pub fn mark_recovered(&mut self, source: Source) {
        self.core.lock().mark_recovered(source);
    }

    /// Drains the quarantine spill queue (raw corrupt lines with their
    /// source), in arrival order. Only populated when
    /// [`StreamConfig::spill_quarantined`] is set. Drivers persist these
    /// (e.g. `--quarantine-out`) so bounded in-memory quarantine loses
    /// nothing.
    pub fn take_spilled(&mut self) -> Vec<(Source, String)> {
        self.core.lock().take_spilled()
    }

    /// Captures a [`StreamCheckpoint`] of the engine plus the caller's
    /// per-file byte `offsets` (in [`Source::ALL`] order). Waits for
    /// quiescence — every pushed line applied — so the checkpoint is a
    /// pure function of the consumed line prefixes; callers must pass
    /// offsets that match what they have pushed.
    pub fn checkpoint(&self, offsets: [u64; 5]) -> StreamCheckpoint {
        loop {
            {
                let core = self.core.lock();
                if core.is_quiescent(&self.seqs) {
                    return StreamCheckpoint {
                        version: StreamCheckpoint::VERSION,
                        lateness_secs: self.lateness.as_secs(),
                        offsets,
                        core: core.checkpoint_state(),
                    };
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Closes every source, waits for all in-flight lines to be processed,
    /// and produces the full analysis — equal to
    /// [`logdiver::LogDiver::analyze`] on the same lines.
    pub fn drain(mut self) -> Analysis {
        for senders in &mut self.inputs {
            senders.clear();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        let core = Arc::try_unwrap(self.core)
            // lint: allow(no-panic) every worker and the coordinator were joined above, so this is the last Arc by construction
            .expect("all engine threads joined")
            .into_inner();
        core.finalize()
    }
}

fn worker(
    source: Source,
    table: &PatternTable,
    input: &Receiver<(u64, String)>,
    out: &Sender<CoordMsg>,
) {
    for (seq, line) in input.iter() {
        let body = parse_line(source, &line, table);
        if out.send(CoordMsg::Line { source, seq, body }).is_err() {
            return;
        }
    }
    let _ = out.send(CoordMsg::ShardDone(source));
}

/// Parses one raw line with the batch pipeline's rules: blank lines are
/// corrupt; entry sources run the filter right here so the pattern table's
/// substring scans parallelize across shards.
pub(crate) fn parse_line(source: Source, line: &str, table: &PatternTable) -> Body {
    if line.trim().is_empty() {
        return Body::Bad(line.to_string());
    }
    let parsed = match source {
        Source::Syslog => SyslogRecord::parse(line).ok().map(|rec| Parsed::Syslog {
            timestamp: rec.timestamp,
            entry: entry_from_syslog(&rec, table),
        }),
        Source::HwErr => HwErrRecord::parse(line)
            .ok()
            .map(|rec| Parsed::HwErr(entry_from_hwerr(&rec))),
        Source::Alps => AlpsRecord::parse(line).ok().map(Parsed::Alps),
        Source::Torque => TorqueRecord::parse(line).ok().map(Parsed::Torque),
        Source::Netwatch => NetwatchRecord::parse(line)
            .ok()
            .map(|rec| Parsed::Netwatch(entry_from_netwatch(&rec))),
    };
    match parsed {
        Some(p) => Body::Ok(p),
        None => Body::Bad(line.to_string()),
    }
}

fn coordinate(input: &Receiver<CoordMsg>, core: &Mutex<StreamCore>) {
    loop {
        let Ok(first) = input.recv() else { return };
        let mut guard = core.lock();
        deliver(&mut guard, first);
        // Batch whatever else is already queued under one lock hold, then
        // advance the watermarks once.
        for _ in 0..255 {
            match input.try_recv() {
                Ok(msg) => deliver(&mut guard, msg),
                Err(_) => break,
            }
        }
        guard.advance();
    }
}

fn deliver(core: &mut StreamCore, msg: CoordMsg) {
    match msg {
        CoordMsg::Line { source, seq, body } => core.accept(source, seq, body),
        CoordMsg::ShardDone(source) => core.shard_done(source),
    }
}
