//! The threaded shell: per-source parse workers, bounded channels, and the
//! coordinator that owns the [`StreamCore`].
//!
//! ```text
//!  push(source, line) / push_batch(source, lines)
//!    │  bounded input channel per shard, carrying CHUNKS of lines
//!    ▼
//!  parse workers — syslog is shardable; workers also run the pattern
//!    │             table, so filtering parallelizes with parsing
//!    ▼  bounded result channel (one message per parsed chunk)
//!  coordinator — re-sequences per source, advances watermarks, feeds the
//!    │           incremental coalescer/reconstructor/classifier
//!    ▼
//!  StreamCore behind parking_lot::Mutex — snapshot() reads it live,
//!                                         drain() consumes it
//! ```
//!
//! Lines travel in chunks of up to [`PUSH_CHUNK`] so the per-line cost is
//! a vector push, not a channel rendezvous: one send per chunk, one
//! coordinator lock per bundle of chunks, one watermark advance per lock
//! hold. Per-line ordering is untouched — every line carries its per-source
//! sequence number and [`StreamCore::accept`] re-sequences exactly as
//! before, so the analysis is byte-identical for any chunking.

use std::sync::Arc;
use std::thread::JoinHandle;

use craylog::alps::AlpsRecord;
use craylog::hwerr::RawHwErr;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::RawSyslog;
use craylog::torque::TorqueRecord;
use crossbeam::channel::{bounded, Receiver, Sender};
use logdiver::filter::{
    entry_from_netwatch, entry_from_syslog_bytes, EntrySource, FilterStats, FilteredEntry,
    PatternTable,
};
use logdiver::metrics::{compute, MetricSet};
use logdiver::parse::ParseCounts;
use logdiver::pipeline::Analysis;
use logdiver_types::{SimDuration, Timestamp};
use parking_lot::Mutex;

use crate::checkpoint::{ResumeError, StreamCheckpoint};
use crate::config::{Source, StreamConfig};
use crate::health::HealthReport;
use crate::state::{cell_is_open, new_health_cells, Body, HealthCells, Parsed, StreamCore};

/// Errors the push API can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The source was closed with [`StreamEngine::close`]; no more lines
    /// can be pushed to it.
    SourceClosed(Source),
    /// The source's circuit breaker is open: the line was rejected (and
    /// counted). Wait [`HealthReport::backoff_ms`], call
    /// [`StreamEngine::probe`], then retry.
    CircuitOpen(Source),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::SourceClosed(s) => write!(f, "source {} is closed", s.name()),
            StreamError::CircuitOpen(s) => {
                write!(f, "source {}: circuit breaker is open", s.name())
            }
        }
    }
}

impl std::error::Error for StreamError {}

/// A live view of the engine, cheap to take while ingestion continues.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// The run watermark: everything older is fully processed. `None`
    /// until every open source has produced at least one record.
    pub watermark: Option<Timestamp>,
    /// Per-source parse accounting (`[syslog, hwerr, alps, torque,
    /// netwatch]`); `bad` is the corrupt-line quarantine counter.
    pub parse: [ParseCounts; 5],
    /// Filter accounting so far.
    pub filter: FilterStats,
    /// Entries that arrived later than the allowed lateness and were
    /// skipped.
    pub late_dropped: u64,
    /// Entries waiting in the reorder buffer.
    pub buffered_entries: usize,
    /// Error events still open in the coalescer.
    pub open_events: usize,
    /// Error events closed and indexed.
    pub closed_events: usize,
    /// Of those, lethal events.
    pub lethal_events: u64,
    /// Reconstructed runs not yet finalized.
    pub open_runs: usize,
    /// Runs classified so far.
    pub classified_runs: usize,
    /// Metrics over the closed/classified state — the same [`MetricSet`]
    /// the batch pipeline computes, restricted to what has finalized.
    pub metrics: MetricSet,
    /// Per-source health (`[syslog, hwerr, alps, torque, netwatch]`).
    pub health: [HealthReport; 5],
    /// Quarantined lines dropped because the spill queue was full (see
    /// [`StreamEngine::take_spilled`]).
    pub spill_dropped: u64,
}

/// How many lines ride in one channel message. Bounds per-chunk memory
/// while amortizing channel and lock traffic ~256× relative to the old
/// line-at-a-time protocol.
const PUSH_CHUNK: usize = 256;

/// One chunk of raw lines on an input channel, each tagged with its
/// per-source sequence number.
type LineChunk = Vec<(u64, String)>;

enum CoordMsg {
    Chunk {
        source: Source,
        items: Vec<(u64, Body)>,
    },
    ShardDone(Source),
}

/// The online streaming ingestion engine.
///
/// Push raw lines in arrival order; parsing fans out to worker threads,
/// results are re-sequenced, and the pipeline runs incrementally behind
/// watermarks. [`StreamEngine::drain`] returns the same
/// [`Analysis`] the batch [`logdiver::LogDiver`] produces on the same
/// lines, for any chunking of the input (within the lateness allowance).
#[derive(Debug)]
pub struct StreamEngine {
    inputs: Vec<Vec<Sender<LineChunk>>>,
    seqs: [u64; 5],
    lateness: SimDuration,
    core: Arc<Mutex<StreamCore>>,
    cells: HealthCells,
    workers: Vec<JoinHandle<()>>,
    coordinator: Option<JoinHandle<()>>,
}

impl StreamEngine {
    /// Starts the engine: one parse worker per source, plus
    /// `config.syslog_shards` for syslog, plus the coordinator.
    pub fn new(config: StreamConfig) -> Self {
        let cells = new_health_cells();
        let core = StreamCore::new(config.clone(), Arc::clone(&cells));
        Self::launch(config, core, cells, [0; 5], [true; 5])
    }

    /// Rebuilds an engine from a [`StreamCheckpoint`], resuming exactly
    /// where the checkpointed engine left off: watermarks, reorder buffer,
    /// open events and runs, counters, and health machines all carry over.
    /// The caller feeds each source from
    /// [`StreamCheckpoint::offset`] onward; the resumed engine's future
    /// output equals an engine that never stopped.
    ///
    /// # Errors
    ///
    /// [`ResumeError::LatenessMismatch`] when `config.lateness` differs
    /// from the checkpoint's (the released watermark baked the old value
    /// in), [`ResumeError::Malformed`] when the checkpoint's internal
    /// arrays have the wrong shape.
    pub fn resume(
        config: StreamConfig,
        checkpoint: &StreamCheckpoint,
    ) -> Result<Self, ResumeError> {
        if config.lateness.as_secs() != checkpoint.lateness_secs {
            return Err(ResumeError::LatenessMismatch {
                checkpoint: checkpoint.lateness_secs,
                config: config.lateness.as_secs(),
            });
        }
        if checkpoint.core.health.len() != 5 || checkpoint.core.quarantine.len() != 5 {
            return Err(ResumeError::Malformed(format!(
                "expected 5 sources, found {} health / {} quarantine entries",
                checkpoint.core.health.len(),
                checkpoint.core.quarantine.len()
            )));
        }
        let cells = new_health_cells();
        let core =
            StreamCore::from_state(config.clone(), Arc::clone(&cells), checkpoint.core.clone());
        Ok(Self::launch(
            config,
            core,
            cells,
            checkpoint.core.next_seq,
            checkpoint.core.open,
        ))
    }

    fn launch(
        config: StreamConfig,
        core: StreamCore,
        cells: HealthCells,
        seqs: [u64; 5],
        open: [bool; 5],
    ) -> Self {
        let capacity = config.channel_capacity.max(1);
        let table = Arc::new(config.table.clone());
        let core = Arc::new(Mutex::new(core));
        let (out_tx, out_rx) = bounded::<CoordMsg>(capacity);

        let mut inputs = Vec::with_capacity(5);
        let mut workers = Vec::new();
        for source in Source::ALL {
            let shards = if source == Source::Syslog {
                config.syslog_shards.max(1)
            } else {
                1
            };
            let mut senders = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (in_tx, in_rx) = bounded::<LineChunk>(capacity);
                let tx = out_tx.clone();
                let table = Arc::clone(&table);
                // lint: allow(thread-spawn) the parse-worker pool IS the engine's concurrency; merges are seq-stamped, so output stays deterministic (DESIGN §10)
                workers.push(std::thread::spawn(move || {
                    worker(source, &table, &in_rx, &tx)
                }));
                senders.push(in_tx);
            }
            // A source that was already closed at checkpoint time stays
            // closed: dropping the senders lets its workers finish.
            if !open[source.index()] {
                senders.clear();
            }
            inputs.push(senders);
        }
        drop(out_tx);

        let coord_core = Arc::clone(&core);
        // lint: allow(thread-spawn) single coordinator thread applying seq-ordered records; determinism argument in DESIGN §10
        let coordinator = std::thread::spawn(move || coordinate(&out_rx, &coord_core));
        StreamEngine {
            inputs,
            seqs,
            lateness: config.lateness,
            core,
            cells,
            workers,
            coordinator: Some(coordinator),
        }
    }

    /// Feeds one raw line. Blocks when the source's parse worker is behind
    /// (bounded-channel backpressure).
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`StreamEngine::close`] on this
    /// source; [`StreamError::CircuitOpen`] while the source's circuit
    /// breaker is open.
    pub fn push(&mut self, source: Source, line: impl Into<String>) -> Result<(), StreamError> {
        let i = source.index();
        if self.inputs[i].is_empty() {
            return Err(StreamError::SourceClosed(source));
        }
        if cell_is_open(&self.cells, i) {
            self.core.lock().note_rejected(source);
            return Err(StreamError::CircuitOpen(source));
        }
        let seq = self.seqs[i];
        self.seqs[i] = seq + 1;
        self.send_chunk(source, vec![(seq, line.into())])
    }

    /// Feeds many lines to one source, bundling them into chunks of
    /// [`PUSH_CHUNK`] so high-volume replay pays one channel send per
    /// chunk instead of per line. The circuit breaker is still consulted
    /// per line (a relaxed atomic load); on a trip, everything accepted so
    /// far is flushed before the error returns.
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`StreamEngine::close`] on this
    /// source; [`StreamError::CircuitOpen`] when the breaker trips
    /// mid-batch (remaining lines are not consumed).
    pub fn push_batch<L: Into<String>>(
        &mut self,
        source: Source,
        lines: impl IntoIterator<Item = L>,
    ) -> Result<(), StreamError> {
        let i = source.index();
        if self.inputs[i].is_empty() {
            return Err(StreamError::SourceClosed(source));
        }
        let mut chunk: LineChunk = Vec::with_capacity(PUSH_CHUNK);
        for line in lines {
            if cell_is_open(&self.cells, i) {
                if !chunk.is_empty() {
                    self.send_chunk(source, chunk)?;
                }
                self.core.lock().note_rejected(source);
                return Err(StreamError::CircuitOpen(source));
            }
            chunk.push((self.seqs[i], line.into()));
            self.seqs[i] += 1;
            if chunk.len() >= PUSH_CHUNK {
                self.send_chunk(source, std::mem::take(&mut chunk))?;
                chunk.reserve(PUSH_CHUNK);
            }
        }
        if chunk.is_empty() {
            Ok(())
        } else {
            self.send_chunk(source, chunk)
        }
    }

    /// Routes one chunk to a shard. Chunks rotate over shards at chunk
    /// granularity (first seq / chunk size), keeping runs of consecutive
    /// lines on one worker for cache locality while still spreading load.
    /// The caller advances `seqs` optimistically; a failed send (worker
    /// gone) rolls the counter back so quiescence tracking stays exact.
    fn send_chunk(&mut self, source: Source, chunk: LineChunk) -> Result<(), StreamError> {
        let i = source.index();
        let senders = &self.inputs[i];
        let shard = ((chunk[0].0 / PUSH_CHUNK as u64) % senders.len() as u64) as usize;
        let n = chunk.len() as u64;
        if senders[shard].send(chunk).is_err() {
            self.seqs[i] -= n;
            return Err(StreamError::SourceClosed(source));
        }
        Ok(())
    }

    /// Declares a source exhausted: its parse workers finish and it stops
    /// holding the watermarks down. Use this when a log file is absent or
    /// fully read and other sources are still flowing.
    pub fn close(&mut self, source: Source) {
        self.inputs[source.index()].clear();
    }

    /// Lines accepted per source so far.
    pub fn pushed(&self, source: Source) -> u64 {
        self.seqs[source.index()]
    }

    /// Takes a live snapshot. Holds the state lock only long enough to
    /// clone the finalized runs and closed events; metrics are computed
    /// outside the lock.
    pub fn snapshot(&self) -> StreamSnapshot {
        let (counters, runs, events) = {
            let core = self.core.lock();
            (core.counters(), core.finished_runs(), core.closed_events())
        };
        StreamSnapshot {
            watermark: counters.watermark,
            parse: counters.parse,
            filter: counters.filter,
            late_dropped: counters.late_dropped,
            buffered_entries: counters.buffered_entries,
            open_events: counters.open_events,
            closed_events: counters.closed_events,
            lethal_events: counters.lethal_events,
            open_runs: counters.open_runs,
            classified_runs: counters.classified_runs,
            metrics: compute(&runs, &events),
            health: counters.health,
            spill_dropped: counters.spill_dropped,
        }
    }

    /// The corrupt-line quarantine for one source: total count and up to
    /// `quarantine_keep` most recent raw lines.
    pub fn quarantined(&self, source: Source) -> (u64, Vec<String>) {
        self.core.lock().quarantined(source)
    }

    /// Current health of one source.
    pub fn health(&self, source: Source) -> HealthReport {
        self.core.lock().health_report(source)
    }

    /// Half-opens an Open circuit so a bounded probe can flow. The driver
    /// calls this after waiting [`HealthReport::backoff_ms`]. Returns
    /// `false` (no-op) when the circuit is not open.
    pub fn probe(&mut self, source: Source) -> bool {
        self.core.lock().probe(source)
    }

    /// Driver verdict: the source is stalled (its file is not growing
    /// while others are). Degrades a Healthy source; see
    /// [`StreamEngine::mark_recovered`].
    pub fn mark_stalled(&mut self, source: Source) {
        self.core.lock().mark_stalled(source);
    }

    /// Driver verdict: the stall cleared. A source degraded only by the
    /// stall returns to Healthy.
    pub fn mark_recovered(&mut self, source: Source) {
        self.core.lock().mark_recovered(source);
    }

    /// Drains the quarantine spill queue (raw corrupt lines with their
    /// source), in arrival order. Only populated when
    /// [`StreamConfig::spill_quarantined`] is set. Drivers persist these
    /// (e.g. `--quarantine-out`) so bounded in-memory quarantine loses
    /// nothing.
    pub fn take_spilled(&mut self) -> Vec<(Source, String)> {
        self.core.lock().take_spilled()
    }

    /// Captures a [`StreamCheckpoint`] of the engine plus the caller's
    /// per-file byte `offsets` (in [`Source::ALL`] order). Waits for
    /// quiescence — every pushed line applied — so the checkpoint is a
    /// pure function of the consumed line prefixes; callers must pass
    /// offsets that match what they have pushed.
    pub fn checkpoint(&self, offsets: [u64; 5]) -> StreamCheckpoint {
        loop {
            {
                let core = self.core.lock();
                if core.is_quiescent(&self.seqs) {
                    return StreamCheckpoint {
                        version: StreamCheckpoint::VERSION,
                        lateness_secs: self.lateness.as_secs(),
                        offsets,
                        core: core.checkpoint_state(),
                    };
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }

    /// Closes every source, waits for all in-flight lines to be processed,
    /// and produces the full analysis — equal to
    /// [`logdiver::LogDiver::analyze`] on the same lines.
    pub fn drain(mut self) -> Analysis {
        for senders in &mut self.inputs {
            senders.clear();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.coordinator.take() {
            let _ = handle.join();
        }
        let core = Arc::try_unwrap(self.core)
            // lint: allow(no-panic) every worker and the coordinator were joined above, so this is the last Arc by construction
            .expect("all engine threads joined")
            .into_inner();
        core.finalize()
    }
}

fn worker(
    source: Source,
    table: &PatternTable,
    input: &Receiver<LineChunk>,
    out: &Sender<CoordMsg>,
) {
    for chunk in input.iter() {
        let items: Vec<(u64, Body)> = chunk
            .into_iter()
            .map(|(seq, line)| {
                let body = match parse_line(source, &line, table) {
                    Some(parsed) => Body::Ok(parsed),
                    // The owned line moves straight into quarantine — the
                    // only per-line allocation left is the push-side one.
                    None => Body::Bad(line),
                };
                (seq, body)
            })
            .collect();
        if out.send(CoordMsg::Chunk { source, items }).is_err() {
            return;
        }
    }
    let _ = out.send(CoordMsg::ShardDone(source));
}

/// Parses one raw line with the batch pipeline's rules: blank lines are
/// corrupt; entry sources run the filter right here so the pattern table's
/// substring scans parallelize across shards. Runs entirely on the
/// zero-copy byte parsers — `None` means the caller still owns the raw
/// line and should quarantine it.
pub(crate) fn parse_line(source: Source, line: &str, table: &PatternTable) -> Option<Parsed> {
    let bytes = line.as_bytes();
    // Same decision as the old `line.trim().is_empty()`: non-ASCII
    // whitespace falls through to the parser, which rejects it anyway.
    if bytes.iter().all(u8::is_ascii_whitespace) {
        return None;
    }
    match source {
        Source::Syslog => RawSyslog::parse_bytes(bytes).ok().map(|raw| {
            let timestamp = raw.timestamp.decode();
            Parsed::Syslog {
                timestamp,
                entry: entry_from_syslog_bytes(timestamp, raw.host, raw.message, table),
            }
        }),
        Source::HwErr => RawHwErr::parse_bytes(bytes).ok().map(|raw| {
            Parsed::HwErr(FilteredEntry {
                timestamp: raw.timestamp.decode(),
                category: raw.category,
                severity: raw.severity,
                node: Some(raw.location.to_nid()),
                source: EntrySource::HwErr,
            })
        }),
        Source::Alps => AlpsRecord::parse_bytes(bytes).ok().map(Parsed::Alps),
        Source::Torque => TorqueRecord::parse_bytes(bytes).ok().map(Parsed::Torque),
        Source::Netwatch => NetwatchRecord::parse_bytes(bytes)
            .ok()
            .map(|rec| Parsed::Netwatch(entry_from_netwatch(&rec))),
    }
}

fn coordinate(input: &Receiver<CoordMsg>, core: &Mutex<StreamCore>) {
    loop {
        let Ok(first) = input.recv() else { return };
        let mut guard = core.lock();
        deliver(&mut guard, first);
        // Batch whatever else is already queued under one lock hold, then
        // advance the watermarks once. Each message is now a whole chunk,
        // so the bound stays small to keep snapshot() latency low.
        for _ in 0..15 {
            match input.try_recv() {
                Ok(msg) => deliver(&mut guard, msg),
                Err(_) => break,
            }
        }
        guard.advance();
    }
}

fn deliver(core: &mut StreamCore, msg: CoordMsg) {
    match msg {
        CoordMsg::Chunk { source, items } => {
            for (seq, body) in items {
                core.accept(source, seq, body);
            }
        }
        CoordMsg::ShardDone(source) => core.shard_done(source),
    }
}
