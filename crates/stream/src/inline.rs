//! A thread-free embedding of the streaming engine.
//!
//! [`StreamEngine`](crate::StreamEngine) is the right shape for one
//! process ingesting one machine: a parse-worker pool plus a coordinator
//! thread. A daemon hosting hundreds of *tenants* cannot afford seven
//! threads each — `logdiver-serve` instead wraps one [`InlineEngine`] per
//! tenant and shards the tenants themselves across the batch pipeline's
//! work-stealing executor ([`logdiver::exec::par_map`]).
//!
//! The inline engine owns a [`StreamCore`] directly and runs parse →
//! filter → accept → advance synchronously on the calling thread. Because
//! every push applies immediately in per-source sequence order, the engine
//! is *always quiescent*: [`InlineEngine::checkpoint`] never waits, and
//! [`InlineEngine::preview`] can materialize the full batch-equivalent
//! analysis at any time without consuming the engine (it round-trips the
//! open state through the checkpoint serializer into a scratch core and
//! finalizes that).
//!
//! Output is identical to the threaded engine's — both funnel every state
//! transition through the same [`StreamCore::accept`]/
//! [`StreamCore::advance`] pair, which the stream==batch equivalence
//! proptests pin down — so `drain()` equals
//! [`logdiver::LogDiver::analyze`] on the same lines for any chunking
//! within the lateness allowance.

use logdiver::pipeline::Analysis;
use logdiver_types::SimDuration;

use crate::checkpoint::{ResumeError, StreamCheckpoint};
use crate::config::{Source, StreamConfig};
use crate::engine::{parse_line, StreamError, StreamSnapshot};
use crate::health::HealthReport;
use crate::state::{cell_is_open, new_health_cells, Body, HealthCells, StreamCore};

/// How many accepted records may elapse between watermark advances. The
/// threaded coordinator batches up to 256 deliveries per lock hold; the
/// inline engine amortizes the same way. Advance cadence affects only
/// *when* events close, never *what* closes — the equivalence proptests
/// hold for any cadence.
const ADVANCE_EVERY: u32 = 64;

/// Rough per-item open-state costs for [`InlineEngine::open_cost`], in
/// bytes. These deliberately over-estimate: the budget they feed exists to
/// bound worst-case memory, and a conservative estimate sheds slightly
/// early rather than OOM-ing slightly late.
const COST_BUFFERED_ENTRY: usize = 256;
const COST_OPEN_EVENT: usize = 512;
const COST_OPEN_RUN: usize = 384;
const COST_CLOSED_EVENT: usize = 448;
const COST_CLASSIFIED_RUN: usize = 416;
const COST_QUARANTINED_LINE: usize = 160;

/// A synchronous, single-threaded streaming engine: same pipeline, same
/// output, no threads. One per tenant in `logdiver-serve`.
#[derive(Debug)]
pub struct InlineEngine {
    config: StreamConfig,
    core: StreamCore,
    cells: HealthCells,
    seqs: [u64; 5],
    open: [bool; 5],
    shards: [usize; 5],
    lateness: SimDuration,
    since_advance: u32,
}

impl InlineEngine {
    /// A fresh engine with the given configuration.
    pub fn new(config: StreamConfig) -> Self {
        let cells = new_health_cells();
        let core = StreamCore::new(config.clone(), cells.clone());
        Self::build(config, core, cells, [0; 5], [true; 5])
    }

    /// Rebuilds an engine from a [`StreamCheckpoint`], exactly as
    /// [`crate::StreamEngine::resume`] does: watermarks, reorder buffer,
    /// open events and runs, counters, and health machines all carry over,
    /// and the resumed engine's future output equals an engine that never
    /// stopped.
    ///
    /// # Errors
    ///
    /// [`ResumeError::LatenessMismatch`] when `config.lateness` differs
    /// from the checkpoint's, [`ResumeError::Malformed`] when the
    /// checkpoint's internal arrays have the wrong shape.
    pub fn resume(
        config: StreamConfig,
        checkpoint: &StreamCheckpoint,
    ) -> Result<Self, ResumeError> {
        if config.lateness.as_secs() != checkpoint.lateness_secs {
            return Err(ResumeError::LatenessMismatch {
                checkpoint: checkpoint.lateness_secs,
                config: config.lateness.as_secs(),
            });
        }
        if checkpoint.core.health.len() != 5 || checkpoint.core.quarantine.len() != 5 {
            return Err(ResumeError::Malformed(format!(
                "expected 5 sources, found {} health / {} quarantine entries",
                checkpoint.core.health.len(),
                checkpoint.core.quarantine.len()
            )));
        }
        let cells = new_health_cells();
        let core = StreamCore::from_state(config.clone(), cells.clone(), checkpoint.core.clone());
        Ok(Self::build(
            config,
            core,
            cells,
            checkpoint.core.next_seq,
            checkpoint.core.open,
        ))
    }

    fn build(
        config: StreamConfig,
        core: StreamCore,
        cells: HealthCells,
        seqs: [u64; 5],
        open: [bool; 5],
    ) -> Self {
        let mut shards = [1usize; 5];
        shards[Source::Syslog.index()] = config.syslog_shards.max(1);
        let lateness = config.lateness;
        InlineEngine {
            config,
            core,
            cells,
            seqs,
            open,
            shards,
            lateness,
            since_advance: 0,
        }
    }

    /// Parses, filters, and applies one raw line synchronously.
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`InlineEngine::close`] on this
    /// source; [`StreamError::CircuitOpen`] while the source's circuit
    /// breaker is open (the line is rejected and counted).
    pub fn push(&mut self, source: Source, line: &str) -> Result<(), StreamError> {
        let i = source.index();
        if !self.open[i] {
            return Err(StreamError::SourceClosed(source));
        }
        if cell_is_open(&self.cells, i) {
            self.core.note_rejected(source);
            return Err(StreamError::CircuitOpen(source));
        }
        let body = match parse_line(source, line, &self.config.table) {
            Some(parsed) => Body::Ok(parsed),
            None => Body::Bad(line.to_string()),
        };
        let seq = self.seqs[i];
        self.core.accept(source, seq, body);
        self.seqs[i] = seq + 1;
        self.since_advance += 1;
        if self.since_advance >= ADVANCE_EVERY {
            self.advance();
        }
        Ok(())
    }

    /// Parses, filters, and applies a run of raw lines for one source,
    /// advancing the watermarks once at the end instead of every
    /// [`ADVANCE_EVERY`] lines — the inline analogue of the threaded
    /// engine's chunked channel protocol. Returns how many lines were
    /// accepted; on a mid-chunk circuit trip the prefix stays applied.
    ///
    /// # Errors
    ///
    /// [`StreamError::SourceClosed`] after [`InlineEngine::close`] on this
    /// source; [`StreamError::CircuitOpen`] when the breaker trips
    /// mid-chunk (remaining lines are not consumed).
    pub fn push_chunk<'a>(
        &mut self,
        source: Source,
        lines: impl IntoIterator<Item = &'a str>,
    ) -> Result<usize, StreamError> {
        let i = source.index();
        if !self.open[i] {
            return Err(StreamError::SourceClosed(source));
        }
        let mut accepted = 0usize;
        for line in lines {
            if cell_is_open(&self.cells, i) {
                self.advance();
                self.core.note_rejected(source);
                return Err(StreamError::CircuitOpen(source));
            }
            let body = match parse_line(source, line, &self.config.table) {
                Some(parsed) => Body::Ok(parsed),
                None => Body::Bad(line.to_string()),
            };
            let seq = self.seqs[i];
            self.core.accept(source, seq, body);
            self.seqs[i] = seq + 1;
            accepted += 1;
        }
        self.advance();
        Ok(accepted)
    }

    /// Advances the watermarks now: releases ripe entries, closes events,
    /// finalizes runs. Called automatically every [`ADVANCE_EVERY`] pushes;
    /// drivers call it before reading a snapshot they want current.
    pub fn advance(&mut self) {
        self.core.advance();
        self.since_advance = 0;
    }

    /// Declares a source exhausted: it stops holding the watermarks down.
    pub fn close(&mut self, source: Source) {
        let i = source.index();
        if !self.open[i] {
            return;
        }
        self.open[i] = false;
        for _ in 0..self.shards[i] {
            self.core.shard_done(source);
        }
    }

    /// Lines accepted per source so far (the client's resume cursor).
    pub fn pushed(&self, source: Source) -> u64 {
        self.seqs[source.index()]
    }

    /// All five per-source accepted-line counts, in [`Source::ALL`] order.
    pub fn pushed_all(&self) -> [u64; 5] {
        self.seqs
    }

    /// A live snapshot — the same [`StreamSnapshot`] the threaded engine
    /// produces, with metrics over the closed/classified state.
    pub fn snapshot(&mut self) -> StreamSnapshot {
        self.advance();
        let counters = self.core.counters();
        let runs = self.core.finished_runs();
        let events = self.core.closed_events();
        StreamSnapshot {
            watermark: counters.watermark,
            parse: counters.parse,
            filter: counters.filter,
            late_dropped: counters.late_dropped,
            buffered_entries: counters.buffered_entries,
            open_events: counters.open_events,
            closed_events: counters.closed_events,
            lethal_events: counters.lethal_events,
            open_runs: counters.open_runs,
            classified_runs: counters.classified_runs,
            metrics: logdiver::metrics::compute(&runs, &events),
            health: counters.health,
            spill_dropped: counters.spill_dropped,
        }
    }

    /// Current health of one source.
    pub fn health(&self, source: Source) -> HealthReport {
        self.core.health_report(source)
    }

    /// Half-opens an Open circuit so a bounded probe can flow.
    pub fn probe(&mut self, source: Source) -> bool {
        self.core.probe(source)
    }

    /// The corrupt-line quarantine for one source.
    pub fn quarantined(&self, source: Source) -> (u64, Vec<String>) {
        self.core.quarantined(source)
    }

    /// Drains the quarantine spill queue (see
    /// [`crate::StreamConfig::spill_quarantined`]).
    pub fn take_spilled(&mut self) -> Vec<(Source, String)> {
        self.core.take_spilled()
    }

    /// A conservative estimate of the engine's open-state footprint in
    /// bytes — what the serve daemon's global memory budget charges this
    /// tenant. Counts the reorder buffer, open coalescer windows, open
    /// runs, the retained closed events and classified runs (they live
    /// until drain), and the quarantine rings.
    pub fn open_cost(&mut self) -> usize {
        let c = self.core.counters();
        let quarantined: usize = Source::ALL
            .into_iter()
            .map(|s| self.core.quarantined(s).1.len())
            .sum();
        c.buffered_entries * COST_BUFFERED_ENTRY
            + c.open_events * COST_OPEN_EVENT
            + c.open_runs * COST_OPEN_RUN
            + c.closed_events * COST_CLOSED_EVENT
            + c.classified_runs * COST_CLASSIFIED_RUN
            + quarantined * COST_QUARANTINED_LINE
    }

    /// Captures a [`StreamCheckpoint`]. The inline engine is always
    /// quiescent, so this never waits. `offsets` is the caller's resume
    /// cursor per source — `logdiver-serve` stores accepted *line counts*
    /// there rather than byte offsets (the push API has no files).
    pub fn checkpoint(&mut self, offsets: [u64; 5]) -> StreamCheckpoint {
        self.advance();
        StreamCheckpoint {
            version: StreamCheckpoint::VERSION,
            lateness_secs: self.lateness.as_secs(),
            offsets,
            core: self.core.checkpoint_state(),
        }
    }

    /// The full batch-equivalent analysis *as of now* — what
    /// [`InlineEngine::drain`] would return if every source closed at this
    /// instant — without consuming the engine. The open state round-trips
    /// through the checkpoint serializer into a scratch core, which is
    /// then finalized; the live engine keeps streaming.
    pub fn preview(&mut self) -> Analysis {
        self.advance();
        let state = self.core.checkpoint_state();
        let cells = new_health_cells();
        StreamCore::from_state(self.config.clone(), cells, state).finalize()
    }

    /// Closes every source and produces the full analysis — equal to
    /// [`logdiver::LogDiver::analyze`] on the same lines.
    pub fn drain(mut self) -> Analysis {
        for source in Source::ALL {
            self.close(source);
        }
        self.core.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver::{LogCollection, LogDiver};

    fn scenario() -> LogCollection {
        let mut logs = LogCollection::new();
        logs.torque.extend([
            "2013-03-28 10:00:00;S;1.bw;user=u0001 queue=normal nodes=4 walltime=86400".to_string(),
        ]);
        logs.alps.extend([
            "2013-03-28 10:00:05 apsys PLACED apid=100 batch=1.bw user=u0001 cmd=namd2 type=XE width=4 nodelist=nid[0-3]".to_string(),
            "2013-03-28 12:00:05 apsys EXIT apid=100 code=137 signal=9 node_failed=yes runtime=7200".to_string(),
        ]);
        logs.syslog.extend([
            "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4 status 0xb200"
                .to_string(),
            "2013-03-28 12:00:31 smw xtnmd: node heartbeat fault: no response in 60s, declaring node dead"
                .to_string(),
        ]);
        logs.hwerr.extend([
            "2013-03-28 12:00:01|c0-0c0s0n2|MCE|CRIT|bank=4".to_string(),
            "2013-03-28 12:00:31|c0-0c0s0n2|NODE_DEAD|FATAL|".to_string(),
        ]);
        logs
    }

    fn push_all(engine: &mut InlineEngine, logs: &LogCollection) {
        for (source, lines) in [
            (Source::Syslog, &logs.syslog),
            (Source::HwErr, &logs.hwerr),
            (Source::Alps, &logs.alps),
            (Source::Torque, &logs.torque),
            (Source::Netwatch, &logs.netwatch),
        ] {
            for line in lines {
                engine.push(source, line).unwrap();
            }
        }
    }

    #[test]
    fn drain_matches_batch() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);
        let mut engine = InlineEngine::new(StreamConfig::default());
        push_all(&mut engine, &logs);
        let streamed = engine.drain();
        assert_eq!(streamed.runs, batch.runs);
        assert_eq!(streamed.events, batch.events);
        assert_eq!(streamed.metrics, batch.metrics);
        assert_eq!(streamed.stats, batch.stats);
    }

    #[test]
    fn preview_equals_drain_and_does_not_consume() {
        let logs = scenario();
        let mut engine = InlineEngine::new(StreamConfig::default());
        push_all(&mut engine, &logs);
        let preview = engine.preview();
        // The engine is still alive and accepts more lines.
        engine
            .push(
                Source::Syslog,
                "2013-03-28 15:00:00 nid00051 sshd: Accepted publickey for user port 2222",
            )
            .unwrap();
        let drained = engine.drain();
        assert_eq!(preview.runs, drained.runs);
        assert_eq!(preview.events, drained.events);
    }

    #[test]
    fn checkpoint_resume_continues_exactly() {
        let logs = scenario();
        let batch = LogDiver::new().analyze(&logs);

        let mut first = InlineEngine::new(StreamConfig::default());
        // Push half of each source, checkpoint, resume, push the rest.
        let halves: Vec<(Source, &Vec<String>)> = vec![
            (Source::Syslog, &logs.syslog),
            (Source::HwErr, &logs.hwerr),
            (Source::Alps, &logs.alps),
            (Source::Torque, &logs.torque),
            (Source::Netwatch, &logs.netwatch),
        ];
        for (source, lines) in &halves {
            for line in lines.iter().take(lines.len() / 2) {
                first.push(*source, line).unwrap();
            }
        }
        let offsets = first.pushed_all();
        let ckpt = first.checkpoint(offsets);
        drop(first);

        let mut resumed = InlineEngine::resume(StreamConfig::default(), &ckpt).unwrap();
        for (source, lines) in &halves {
            let from = ckpt.offset(*source) as usize;
            for line in lines.iter().skip(from) {
                resumed.push(*source, line).unwrap();
            }
        }
        let streamed = resumed.drain();
        assert_eq!(streamed.runs, batch.runs);
        assert_eq!(streamed.events, batch.events);
        assert_eq!(streamed.stats, batch.stats);
    }

    #[test]
    fn push_after_close_errors_and_cost_grows() {
        let mut engine = InlineEngine::new(StreamConfig::default());
        assert_eq!(engine.open_cost(), 0);
        engine.close(Source::Netwatch);
        assert_eq!(
            engine.push(Source::Netwatch, "x"),
            Err(StreamError::SourceClosed(Source::Netwatch))
        );
        engine
            .push(
                Source::Syslog,
                "2013-03-28 12:00:00 nid00002 kernel: Machine Check Exception: bank 4",
            )
            .unwrap();
        assert!(engine.open_cost() > 0);
        let analysis = engine.drain();
        assert!(analysis.runs.is_empty());
    }

    #[test]
    fn lateness_mismatch_is_rejected_on_resume() {
        let mut engine = InlineEngine::new(StreamConfig::default());
        let ckpt = engine.checkpoint([0; 5]);
        let other = StreamConfig::default().with_lateness(SimDuration::from_secs(5));
        assert!(matches!(
            InlineEngine::resume(other, &ckpt),
            Err(ResumeError::LatenessMismatch { .. })
        ));
    }
}
