//! Crash-safe checkpoints of the streaming engine.
//!
//! A [`StreamCheckpoint`] captures everything the coordinator knows —
//! per-source watermarks, the reorder buffer, open coalescer windows, open
//! runs, health machines, and every counter — plus the per-file byte
//! offsets the feeder had consumed. Together they make `kill -9` a
//! recoverable event: [`crate::StreamEngine::resume`] rebuilds an engine
//! whose future output is identical to one that never died, and the feeder
//! seeks each log file past [`StreamCheckpoint::offset`].
//!
//! ## Quiescence
//!
//! Checkpoints are taken at *quiescence*: every pushed line has been
//! applied by the coordinator ([`crate::StreamEngine::checkpoint`] waits
//! for that). At quiescence the core holds no un-serializable in-flight
//! parse results, and its state is a deterministic function of the line
//! prefixes consumed so far — which is exactly what makes
//! crash-plus-resume equal to an uninterrupted run (the chaos proptests
//! enforce this).
//!
//! ## Durability
//!
//! [`StreamCheckpoint::write_atomic`] writes to a temporary sibling, syncs
//! it, then renames over the target: a crash mid-write leaves the previous
//! checkpoint intact, never a torn file.
//!
//! Quarantine *spill* lines queued for
//! [`crate::StreamEngine::take_spilled`] are deliberately not captured —
//! drivers drain the spill to disk before checkpointing, so carrying them
//! would duplicate lines after a resume.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;

use logdiver::classify::ClassifiedRun;
use logdiver::coalesce::{CoalescerState, ErrorEvent};
use logdiver::coverage::CoverageState;
use logdiver::filter::{FilterStats, FilteredEntry};
use logdiver::parse::ParseCounts;
use logdiver::workload::ReconstructorState;
use logdiver_types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::config::Source;
use crate::health::HealthState;

/// Serialized open state of the coordinator core. Maps keyed by integers
/// are carried as sorted pairs (the JSON layer only supports string keys);
/// the reorder buffer stores only `(entry_seq, entry)` because the rest of
/// its key is recomputed from the entry itself on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CoreState {
    pub(crate) next_seq: [u64; 5],
    pub(crate) progress: [Option<Timestamp>; 5],
    pub(crate) open: [bool; 5],
    pub(crate) counts: [ParseCounts; 5],
    pub(crate) quarantine: Vec<Vec<String>>,
    pub(crate) filter_stats: FilterStats,
    pub(crate) buffer: Vec<(u64, FilteredEntry)>,
    pub(crate) entry_seq: u64,
    pub(crate) late_dropped: u64,
    pub(crate) released: Option<Timestamp>,
    pub(crate) coalescer: CoalescerState,
    pub(crate) events: Vec<ErrorEvent>,
    pub(crate) reconstructor: ReconstructorState,
    pub(crate) done: Vec<(u64, ClassifiedRun)>,
    pub(crate) health: Vec<HealthState>,
    pub(crate) spill_dropped: u64,
    pub(crate) coverage: CoverageState,
}

/// A serializable snapshot of a quiescent [`crate::StreamEngine`] plus the
/// feeder's per-file byte offsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Format version; [`crate::StreamEngine::resume`] rejects others.
    pub version: u32,
    /// The engine's allowed lateness when the checkpoint was taken. Resume
    /// requires the same value: the released watermark already encodes it.
    pub lateness_secs: i64,
    /// Consumed byte offset per source file, in [`Source::ALL`] order.
    /// Only *complete* lines count — a partially written tail line is
    /// re-read after resume.
    pub offsets: [u64; 5],
    pub(crate) core: CoreState,
}

impl StreamCheckpoint {
    /// Current checkpoint format version. Version 2 added the coalescer
    /// dedup slots, per-run attribution confidence, and the source-coverage
    /// tracker; version-1 checkpoints are rejected rather than resumed with
    /// silently absent coverage state.
    pub const VERSION: u32 = 2;

    /// The consumed byte offset recorded for one source.
    pub fn offset(&self, source: Source) -> u64 {
        self.offsets[source.index()]
    }

    /// Total lines applied across all sources when the checkpoint was
    /// taken (drives `--checkpoint-every` cadence).
    pub fn records_applied(&self) -> u64 {
        self.core.next_seq.iter().sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        // lint: allow(no-panic) plain-old-data with string map keys; the serializer has no failure path for this shape
        serde_json::to_string_pretty(self).expect("checkpoint serialization is infallible")
    }

    /// Parses a checkpoint, rejecting unknown versions.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Corrupt`] on malformed JSON, [`ResumeError::Version`]
    /// on a version this build does not understand.
    pub fn from_json(text: &str) -> Result<Self, ResumeError> {
        let ckpt: StreamCheckpoint =
            serde_json::from_str(text).map_err(|e| ResumeError::Corrupt(e.to_string()))?;
        if ckpt.version != Self::VERSION {
            return Err(ResumeError::Version(ckpt.version));
        }
        Ok(ckpt)
    }

    /// Writes the checkpoint atomically: temp sibling, sync, rename. A
    /// crash at any point leaves either the old checkpoint or the new one,
    /// never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from create/write/sync/rename.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            file.write_all(b"\n")?;
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Io`] when the file cannot be read; see
    /// [`StreamCheckpoint::from_json`] for the rest.
    pub fn read(path: &Path) -> Result<Self, ResumeError> {
        let text = fs::read_to_string(path)
            .map_err(|e| ResumeError::Io(format!("{}: {e}", path.display())))?;
        Self::from_json(&text)
    }
}

/// Why a checkpoint could not be loaded or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint file could not be read.
    Io(String),
    /// The file's contents did not parse as a checkpoint.
    Corrupt(String),
    /// The checkpoint was written by an incompatible format version.
    Version(u32),
    /// The engine config's lateness differs from the checkpoint's; the
    /// released watermark already baked the old value in.
    LatenessMismatch {
        /// Lateness (seconds) recorded in the checkpoint.
        checkpoint: i64,
        /// Lateness (seconds) in the config passed to resume.
        config: i64,
    },
    /// The checkpoint's internal shape is inconsistent (wrong array
    /// lengths).
    Malformed(String),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(msg) => write!(f, "cannot read checkpoint: {msg}"),
            ResumeError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ResumeError::Version(v) => write!(
                f,
                "checkpoint version {v} is not supported (this build writes {})",
                StreamCheckpoint::VERSION
            ),
            ResumeError::LatenessMismatch { checkpoint, config } => write!(
                f,
                "lateness mismatch: checkpoint was taken with {checkpoint}s, config says {config}s"
            ),
            ResumeError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for ResumeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::engine::StreamEngine;

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let engine = StreamEngine::new(StreamConfig::default());
        let ckpt = engine.checkpoint([7, 0, 0, 0, 0]);
        engine.drain();

        let dir = std::env::temp_dir().join("logdiver-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        ckpt.write_atomic(&path).unwrap();
        let back = StreamCheckpoint::read(&path).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.offset(Source::Syslog), 7);
        assert!(!dir.join("state.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let engine = StreamEngine::new(StreamConfig::default());
        let mut ckpt = engine.checkpoint([0; 5]);
        engine.drain();
        ckpt.version = 99;
        let text = ckpt.to_json();
        assert!(matches!(
            StreamCheckpoint::from_json(&text),
            Err(ResumeError::Version(99))
        ));
    }

    #[test]
    fn garbage_is_corrupt_not_panic() {
        assert!(matches!(
            StreamCheckpoint::from_json("{\"not\": \"a checkpoint\""),
            Err(ResumeError::Corrupt(_))
        ));
        assert!(matches!(
            StreamCheckpoint::read(Path::new("/nonexistent/x.ckpt")),
            Err(ResumeError::Io(_))
        ));
    }
}
