//! Crash-safe, self-validating checkpoints of the streaming engine.
//!
//! A [`StreamCheckpoint`] captures everything the coordinator knows —
//! per-source watermarks, the reorder buffer, open coalescer windows, open
//! runs, health machines, and every counter — plus the per-file byte
//! offsets the feeder had consumed. Together they make `kill -9` a
//! recoverable event: [`crate::StreamEngine::resume`] rebuilds an engine
//! whose future output is identical to one that never died, and the feeder
//! seeks each log file past [`StreamCheckpoint::offset`].
//!
//! ## Quiescence
//!
//! Checkpoints are taken at *quiescence*: every pushed line has been
//! applied by the coordinator ([`crate::StreamEngine::checkpoint`] waits
//! for that). At quiescence the core holds no un-serializable in-flight
//! parse results, and its state is a deterministic function of the line
//! prefixes consumed so far — which is exactly what makes
//! crash-plus-resume equal to an uninterrupted run (the chaos proptests
//! enforce this).
//!
//! ## Durability and integrity
//!
//! [`StreamCheckpoint::write_atomic`] writes to a temporary sibling, syncs
//! it, then renames over the target: a crash mid-write leaves the previous
//! checkpoint intact, never a torn file — *on a filesystem that honors
//! rename atomicity*. Because replicated stores cannot assume that (the
//! paper's storage faults include torn writes and at-rest bit rot), the
//! on-disk format is self-validating: the JSON body is followed by a
//! one-line footer carrying the body's byte length and CRC32. A reader
//! that finds a missing/short footer (torn write) or a CRC mismatch (bit
//! rot) gets [`ResumeError::Corrupt`] instead of silently resuming from
//! garbage — which is what lets `logdiver-serve`'s `CheckpointStore` scan
//! N replicas and restore from the newest *valid* copy.
//!
//! All file I/O goes through the narrow [`Fs`] seam
//! ([`logdiver_types::fsio`]), so chaos tests can inject EIO/ENOSPC/torn
//! writes underneath the identical production code path.
//!
//! Quarantine *spill* lines queued for
//! [`crate::StreamEngine::take_spilled`] are deliberately not captured —
//! drivers drain the spill to disk before checkpointing, so carrying them
//! would duplicate lines after a resume.

use std::fmt;
use std::path::Path;

use logdiver::classify::ClassifiedRun;
use logdiver::coalesce::{CoalescerState, ErrorEvent};
use logdiver::coverage::CoverageState;
use logdiver::filter::{FilterStats, FilteredEntry};
use logdiver::parse::ParseCounts;
use logdiver::workload::ReconstructorState;
use logdiver_types::fsio::{tmp_sibling, Fs, RealFs};
use logdiver_types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::config::Source;
use crate::health::HealthState;

/// Leading tag of the integrity footer line.
const FOOTER_TAG: &str = "#logdiver-ckpt";

/// Serialized open state of the coordinator core. Maps keyed by integers
/// are carried as sorted pairs (the JSON layer only supports string keys);
/// the reorder buffer stores only `(entry_seq, entry)` because the rest of
/// its key is recomputed from the entry itself on restore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct CoreState {
    pub(crate) next_seq: [u64; 5],
    pub(crate) progress: [Option<Timestamp>; 5],
    pub(crate) open: [bool; 5],
    pub(crate) counts: [ParseCounts; 5],
    pub(crate) quarantine: Vec<Vec<String>>,
    pub(crate) filter_stats: FilterStats,
    pub(crate) buffer: Vec<(u64, FilteredEntry)>,
    pub(crate) entry_seq: u64,
    pub(crate) late_dropped: u64,
    pub(crate) released: Option<Timestamp>,
    pub(crate) coalescer: CoalescerState,
    pub(crate) events: Vec<ErrorEvent>,
    pub(crate) reconstructor: ReconstructorState,
    pub(crate) done: Vec<(u64, ClassifiedRun)>,
    pub(crate) health: Vec<HealthState>,
    pub(crate) spill_dropped: u64,
    pub(crate) coverage: CoverageState,
}

/// A serializable snapshot of a quiescent [`crate::StreamEngine`] plus the
/// feeder's per-file byte offsets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamCheckpoint {
    /// Format version; [`crate::StreamEngine::resume`] rejects others.
    pub version: u32,
    /// The engine's allowed lateness when the checkpoint was taken. Resume
    /// requires the same value: the released watermark already encodes it.
    pub lateness_secs: i64,
    /// Consumed byte offset per source file, in [`Source::ALL`] order.
    /// Only *complete* lines count — a partially written tail line is
    /// re-read after resume.
    pub offsets: [u64; 5],
    pub(crate) core: CoreState,
}

impl StreamCheckpoint {
    /// Current checkpoint format version. Version 3 added the length/CRC32
    /// integrity footer so torn writes and at-rest bit rot are detected on
    /// read instead of resumed from; version 2 added the coalescer dedup
    /// slots, per-run attribution confidence, and the source-coverage
    /// tracker. Older versions are rejected rather than resumed with
    /// silently absent state.
    pub const VERSION: u32 = 3;

    /// The consumed byte offset recorded for one source.
    pub fn offset(&self, source: Source) -> u64 {
        self.offsets[source.index()]
    }

    /// Total lines applied across all sources when the checkpoint was
    /// taken. This is the *logical* recency measure: it is monotone over a
    /// tenant's life and wall-clock-free, so a replicated store picks the
    /// "newest" valid replica by the largest value (drives
    /// `--checkpoint-every` cadence too).
    pub fn records_applied(&self) -> u64 {
        self.core.next_seq.iter().sum()
    }

    /// Serializes the JSON body (no integrity footer — see
    /// [`StreamCheckpoint::to_bytes`] for the durable wire format).
    pub fn to_json(&self) -> String {
        // lint: allow(no-panic) plain-old-data with string map keys; the serializer has no failure path for this shape
        serde_json::to_string_pretty(self).expect("checkpoint serialization is infallible")
    }

    /// Parses a checkpoint body, rejecting unknown versions.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Corrupt`] on malformed JSON, [`ResumeError::Version`]
    /// on a version this build does not understand.
    pub fn from_json(text: &str) -> Result<Self, ResumeError> {
        let ckpt: StreamCheckpoint =
            serde_json::from_str(text).map_err(|e| ResumeError::Corrupt(e.to_string()))?;
        if ckpt.version != Self::VERSION {
            return Err(ResumeError::Version(ckpt.version));
        }
        Ok(ckpt)
    }

    /// The durable on-disk form: the JSON body followed by a one-line
    /// integrity footer `#logdiver-ckpt v<V> len=<body bytes> crc=<crc32>`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = self.to_json().into_bytes();
        bytes.push(b'\n');
        let footer = format!(
            "{FOOTER_TAG} v{} len={} crc={:08x}\n",
            self.version,
            bytes.len(),
            crc32(&bytes)
        );
        bytes.extend_from_slice(footer.as_bytes());
        bytes
    }

    /// Parses the durable form, validating the integrity footer before
    /// touching the JSON.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Corrupt`] when the footer is missing or short (torn
    /// write), the body length disagrees (truncation), or the CRC32 does
    /// not match (bit rot); [`ResumeError::Version`] for a valid file of a
    /// version this build does not understand (including pre-footer
    /// version-2 files).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ResumeError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| ResumeError::Corrupt(format!("not UTF-8: {e}")))?;
        let Some(without_last_newline) = text.strip_suffix('\n') else {
            return Err(ResumeError::Corrupt(
                "missing trailing newline (torn write)".to_string(),
            ));
        };
        let Some(footer_start) = without_last_newline.rfind('\n') else {
            return Err(ResumeError::Corrupt(
                "missing integrity footer (torn write)".to_string(),
            ));
        };
        let footer = &without_last_newline[footer_start + 1..];
        if !footer.starts_with(FOOTER_TAG) {
            // Pre-footer formats (v1/v2) were bare JSON: if the whole file
            // parses, report the version mismatch rather than "corrupt".
            if let Ok(legacy) = serde_json::from_str::<StreamCheckpoint>(text) {
                return Err(ResumeError::Version(legacy.version));
            }
            return Err(ResumeError::Corrupt(
                "missing integrity footer (torn write)".to_string(),
            ));
        }
        let body = &bytes[..footer_start + 1];
        let (mut len, mut crc) = (None, None);
        for token in footer.split(' ').skip(2) {
            if let Some(v) = token.strip_prefix("len=") {
                len = v.parse::<usize>().ok();
            } else if let Some(v) = token.strip_prefix("crc=") {
                crc = u32::from_str_radix(v, 16).ok();
            }
        }
        let (Some(len), Some(crc)) = (len, crc) else {
            return Err(ResumeError::Corrupt(
                "unparseable integrity footer".to_string(),
            ));
        };
        if len != body.len() {
            return Err(ResumeError::Corrupt(format!(
                "torn checkpoint: footer says {len} body bytes, found {}",
                body.len()
            )));
        }
        let actual = crc32(body);
        if actual != crc {
            return Err(ResumeError::Corrupt(format!(
                "checkpoint CRC mismatch: footer {crc:08x}, computed {actual:08x} (bit rot?)"
            )));
        }
        let body_text = &text[..footer_start + 1];
        Self::from_json(body_text)
    }

    /// Writes the checkpoint atomically: temp sibling, write+sync, rename.
    /// A crash at any point leaves either the old checkpoint or the new
    /// one; a torn write (no rename atomicity) is caught on read by the
    /// integrity footer.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from create/write/sync/rename.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        self.write_atomic_fs(&RealFs, path)
    }

    /// [`StreamCheckpoint::write_atomic`] through an explicit [`Fs`] (the
    /// seam the chaos filesystem plugs into).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the underlying [`Fs`].
    pub fn write_atomic_fs(&self, fs: &dyn Fs, path: &Path) -> std::io::Result<()> {
        let tmp = tmp_sibling(path);
        fs.write(&tmp, &self.to_bytes())?;
        fs.rename(&tmp, path)
    }

    /// Reads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// [`ResumeError::Io`] when the file cannot be read; see
    /// [`StreamCheckpoint::from_bytes`] for the rest.
    pub fn read(path: &Path) -> Result<Self, ResumeError> {
        Self::read_fs(&RealFs, path)
    }

    /// [`StreamCheckpoint::read`] through an explicit [`Fs`].
    ///
    /// # Errors
    ///
    /// [`ResumeError::Io`] when the file cannot be read; see
    /// [`StreamCheckpoint::from_bytes`] for the rest.
    pub fn read_fs(fs: &dyn Fs, path: &Path) -> Result<Self, ResumeError> {
        let bytes = fs
            .read(path)
            .map_err(|e| ResumeError::Io(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), bitwise — no table, no
/// dependencies; checkpoint bodies are small enough that eight shifts per
/// byte never shows up in a profile.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Why a checkpoint could not be loaded or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The checkpoint file could not be read.
    Io(String),
    /// The file's contents failed integrity validation (torn write, bit
    /// rot) or did not parse as a checkpoint.
    Corrupt(String),
    /// The checkpoint was written by an incompatible format version.
    Version(u32),
    /// The engine config's lateness differs from the checkpoint's; the
    /// released watermark already baked the old value in.
    LatenessMismatch {
        /// Lateness (seconds) recorded in the checkpoint.
        checkpoint: i64,
        /// Lateness (seconds) in the config passed to resume.
        config: i64,
    },
    /// The checkpoint's internal shape is inconsistent (wrong array
    /// lengths).
    Malformed(String),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(msg) => write!(f, "cannot read checkpoint: {msg}"),
            ResumeError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            ResumeError::Version(v) => write!(
                f,
                "checkpoint version {v} is not supported (this build writes {})",
                StreamCheckpoint::VERSION
            ),
            ResumeError::LatenessMismatch { checkpoint, config } => write!(
                f,
                "lateness mismatch: checkpoint was taken with {checkpoint}s, config says {config}s"
            ),
            ResumeError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for ResumeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::engine::StreamEngine;

    fn sample() -> StreamCheckpoint {
        let engine = StreamEngine::new(StreamConfig::default());
        let ckpt = engine.checkpoint([7, 0, 0, 0, 0]);
        engine.drain();
        ckpt
    }

    #[test]
    fn write_atomic_round_trips_and_leaves_no_temp() {
        let ckpt = sample();
        let dir = std::env::temp_dir().join("logdiver-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        ckpt.write_atomic(&path).unwrap();
        let back = StreamCheckpoint::read(&path).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.offset(Source::Syslog), 7);
        assert!(!dir.join("state.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut ckpt = sample();
        ckpt.version = 99;
        assert!(matches!(
            StreamCheckpoint::from_bytes(&ckpt.to_bytes()),
            Err(ResumeError::Version(99))
        ));
        assert!(matches!(
            StreamCheckpoint::from_json(&ckpt.to_json()),
            Err(ResumeError::Version(99))
        ));
    }

    #[test]
    fn legacy_footerless_file_reports_its_version() {
        let mut ckpt = sample();
        ckpt.version = 2;
        let mut legacy = ckpt.to_json().into_bytes();
        legacy.push(b'\n');
        assert!(matches!(
            StreamCheckpoint::from_bytes(&legacy),
            Err(ResumeError::Version(2))
        ));
    }

    #[test]
    fn torn_write_is_detected() {
        let bytes = sample().to_bytes();
        // Any strict prefix must fail validation, not parse as a shorter
        // checkpoint: either the footer is gone or its length disagrees.
        for cut in [1, bytes.len() / 2, bytes.len() - 2] {
            assert!(
                matches!(
                    StreamCheckpoint::from_bytes(&bytes[..cut]),
                    Err(ResumeError::Corrupt(_))
                ),
                "prefix of {cut} bytes was accepted"
            );
        }
    }

    #[test]
    fn bit_rot_is_detected() {
        let bytes = sample().to_bytes();
        for victim in [0, bytes.len() / 3, bytes.len() * 2 / 3] {
            let mut rotted = bytes.clone();
            rotted[victim] ^= 0x20;
            assert!(
                matches!(
                    StreamCheckpoint::from_bytes(&rotted),
                    Err(ResumeError::Corrupt(_) | ResumeError::Version(_))
                ),
                "flip at byte {victim} was accepted"
            );
        }
    }

    #[test]
    fn garbage_is_corrupt_not_panic() {
        assert!(matches!(
            StreamCheckpoint::from_bytes(b"{\"not\": \"a checkpoint\""),
            Err(ResumeError::Corrupt(_))
        ));
        assert!(matches!(
            StreamCheckpoint::read(Path::new("/nonexistent/x.ckpt")),
            Err(ResumeError::Io(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
