//! Live event index: the streaming counterpart of
//! [`logdiver::matcher::MatchIndex`].
//!
//! Events arrive one at a time as the coalescer closes them (not in start
//! order — different spatial groups close at different watermarks), so the
//! index keeps an insertion vector plus a `(start, id)`-sorted view. The
//! sorted view makes [`EventLookup::matches_for`] return ids in exactly the
//! order the batch index produces: the batch table is built from id-ordered
//! events with a stable sort by start, which is `(start, id)` order.

use std::collections::HashMap;

use logdiver::coalesce::ErrorEvent;
use logdiver::matcher::EventLookup;
use logdiver::ranges::RangeSet;
use logdiver_types::{SimDuration, Timestamp};

/// A growing, queryable table of closed error events.
#[derive(Debug)]
pub struct StreamIndex {
    events: Vec<ErrorEvent>,
    /// `(start, id, position in events)`, sorted.
    order: Vec<(Timestamp, u32, usize)>,
    by_id: HashMap<u32, usize>,
    max_span: SimDuration,
    lethal: u64,
}

impl Default for StreamIndex {
    fn default() -> Self {
        StreamIndex {
            events: Vec::new(),
            order: Vec::new(),
            by_id: HashMap::new(),
            max_span: SimDuration::ZERO,
            lethal: 0,
        }
    }
}

impl StreamIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one closed event. Events usually close in roughly increasing
    /// start order, so the sorted insert is cheap in practice.
    pub fn insert(&mut self, event: ErrorEvent) {
        let pos = self.events.len();
        self.max_span = self.max_span.max(event.span());
        if event.is_lethal() {
            self.lethal += 1;
        }
        self.by_id.insert(event.id, pos);
        let key = (event.start, event.id);
        let at = self.order.partition_point(|&(s, i, _)| (s, i) < key);
        self.order.insert(at, (event.start, event.id, pos));
        self.events.push(event);
    }

    /// Number of closed events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have closed yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Closed lethal events.
    pub fn lethal_count(&self) -> u64 {
        self.lethal
    }

    /// The events in `(start, id)` order — the order
    /// [`logdiver::pipeline::Analysis::events`] uses.
    pub fn events_in_order(&self) -> Vec<ErrorEvent> {
        self.order
            .iter()
            .map(|&(_, _, pos)| self.events[pos].clone())
            .collect()
    }

    /// The events in insertion order. [`StreamIndex::from_events`] on this
    /// vector rebuilds an identical index — the checkpoint round trip.
    pub fn events_in_insertion_order(&self) -> Vec<ErrorEvent> {
        self.events.clone()
    }

    /// Rebuilds an index by inserting `events` in order. Inverse of
    /// [`StreamIndex::events_in_insertion_order`]: every derived structure
    /// (sorted view, id map, max span, lethal count) is a deterministic
    /// function of the insertion sequence.
    pub fn from_events(events: Vec<ErrorEvent>) -> Self {
        let mut index = StreamIndex::new();
        for event in events {
            index.insert(event);
        }
        index
    }
}

impl EventLookup for StreamIndex {
    fn matches_for(
        &self,
        death: Timestamp,
        nodes: &RangeSet,
        lead: SimDuration,
        lag: SimDuration,
    ) -> Vec<u32> {
        let win_lo = death - lead;
        let win_hi = death + lag;
        // Mirrors MatchIndex::matches_for. The max span here covers every
        // indexed event, so the scan floor is sound for them; events not yet
        // indexed are the caller's responsibility (runs are only classified
        // once every event that could overlap their window has closed).
        let scan_lo = win_lo - self.max_span;
        let first = self.order.partition_point(|&(s, _, _)| s < scan_lo);
        let mut out = Vec::new();
        for &(start, _, pos) in &self.order[first..] {
            if start > win_hi {
                break;
            }
            let e = &self.events[pos];
            if e.end < win_lo {
                continue;
            }
            if e.system_scope || nodes.intersects_any(&e.nodes) {
                out.push(e.id);
            }
        }
        out
    }

    fn by_id(&self, id: u32) -> Option<&ErrorEvent> {
        self.by_id.get(&id).map(|&pos| &self.events[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver::matcher::MatchIndex;
    use logdiver_types::{ErrorCategory, NodeId, NodeSet, Severity};

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    fn event(id: u32, start: i64, end: i64, nodes: &[u32], system: bool) -> ErrorEvent {
        ErrorEvent {
            id,
            start: t(start),
            end: t(end),
            categories: vec![ErrorCategory::MemoryUncorrectable],
            severity: Severity::Fatal,
            nodes: nodes.iter().copied().map(NodeId::new).collect(),
            system_scope: system,
            entry_count: 1,
        }
    }

    fn ranges(nids: &[u32]) -> RangeSet {
        let set: NodeSet = nids.iter().copied().map(NodeId::new).collect();
        RangeSet::from_node_set(&set)
    }

    #[test]
    fn agrees_with_batch_index_on_any_insert_order() {
        let events = vec![
            event(0, 100, 130, &[4], false),
            event(1, 100, 160, &[], true),
            event(2, 50, 1_900, &[9], false),
            event(3, 400, 410, &[4, 9], false),
        ];
        // Insert in a scrambled order; the batch index always sees id order.
        let mut stream = StreamIndex::new();
        for i in [2usize, 0, 3, 1] {
            stream.insert(events[i].clone());
        }
        let batch = MatchIndex::new(events);
        let lead = SimDuration::from_secs(120);
        let lag = SimDuration::from_secs(120);
        for death in [0i64, 90, 120, 200, 420, 1_000, 2_500] {
            for nids in [&[4u32][..], &[9], &[4, 9], &[77]] {
                assert_eq!(
                    EventLookup::matches_for(&stream, t(death), &ranges(nids), lead, lag),
                    batch.matches_for(t(death), &ranges(nids), lead, lag),
                    "death={death} nodes={nids:?}"
                );
            }
        }
        for id in 0..5 {
            assert_eq!(EventLookup::by_id(&stream, id), batch.by_id(id));
        }
        assert_eq!(stream.events_in_order(), batch.events().to_vec());
        assert_eq!(stream.len(), 4);
        assert!(!stream.is_empty());
        assert_eq!(stream.lethal_count(), 4);
    }
}
