//! Streaming-engine configuration.

use logdiver::filter::PatternTable;
use logdiver::LogDiverConfig;
use logdiver_types::SimDuration;

use crate::health::HealthPolicy;

/// The five log sources the engine accepts lines from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Consolidated syslog (`messages.log`).
    Syslog,
    /// Hardware error log (`hwerr.log`).
    HwErr,
    /// ALPS apsys log (`apsys.log`).
    Alps,
    /// Torque accounting log (`torque.log`).
    Torque,
    /// HSN netwatch log (`netwatch.log`).
    Netwatch,
}

impl Source {
    /// All sources, in the canonical `[syslog, hwerr, alps, torque,
    /// netwatch]` order used by [`logdiver::pipeline::PipelineStats`].
    pub const ALL: [Source; 5] = [
        Source::Syslog,
        Source::HwErr,
        Source::Alps,
        Source::Torque,
        Source::Netwatch,
    ];

    /// Canonical index (position in [`Source::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Source::Syslog => 0,
            Source::HwErr => 1,
            Source::Alps => 2,
            Source::Torque => 3,
            Source::Netwatch => 4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Source::Syslog => "syslog",
            Source::HwErr => "hwerr",
            Source::Alps => "alps",
            Source::Torque => "torque",
            Source::Netwatch => "netwatch",
        }
    }

    /// Conventional file name in a log directory.
    pub fn file_name(self) -> &'static str {
        match self {
            Source::Syslog => "messages.log",
            Source::HwErr => "hwerr.log",
            Source::Alps => "apsys.log",
            Source::Torque => "torque.log",
            Source::Netwatch => "netwatch.log",
        }
    }

    /// True for the sources that produce filtered error entries (as opposed
    /// to workload records).
    pub fn is_entry(self) -> bool {
        matches!(self, Source::Syslog | Source::HwErr | Source::Netwatch)
    }
}

/// Configuration for [`crate::StreamEngine`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// The batch pipeline's windows (coalescing gap, attribution windows).
    pub logdiver: LogDiverConfig,
    /// The syslog pattern table (matched inside the parse workers, so more
    /// shards also parallelize filtering).
    pub table: PatternTable,
    /// Allowed out-of-order lateness *within* a source: a record may arrive
    /// up to this much earlier than the newest record already seen on its
    /// source and still be processed. Records later than that are counted
    /// in `late_dropped` and skipped.
    pub lateness: SimDuration,
    /// Parse workers for the syslog source (the only high-volume one).
    pub syslog_shards: usize,
    /// Capacity of each bounded channel; full channels apply backpressure
    /// to [`crate::StreamEngine::push`].
    pub channel_capacity: usize,
    /// How many recent corrupt lines to keep per source for inspection.
    pub quarantine_keep: usize,
    /// When `true`, every quarantined raw line (subject to degraded-state
    /// sampling) is also queued for [`crate::StreamEngine::take_spilled`]
    /// so a driver can write it to disk.
    pub spill_quarantined: bool,
    /// Ceiling on queued spill lines between
    /// [`crate::StreamEngine::take_spilled`] calls; beyond it lines are
    /// dropped (counted, not kept) so an unpolled spill cannot grow
    /// without bound.
    pub spill_capacity: usize,
    /// Escalation thresholds and backoff policy for per-source health.
    pub health: HealthPolicy,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            logdiver: LogDiverConfig::default(),
            table: PatternTable::curated(),
            lateness: SimDuration::from_secs(60),
            syslog_shards: 2,
            channel_capacity: 4_096,
            quarantine_keep: 16,
            spill_quarantined: false,
            spill_capacity: 65_536,
            health: HealthPolicy::default(),
        }
    }
}

impl StreamConfig {
    /// Overrides the allowed lateness.
    pub fn with_lateness(mut self, lateness: SimDuration) -> Self {
        self.lateness = lateness;
        self
    }

    /// Overrides the syslog shard count.
    pub fn with_syslog_shards(mut self, shards: usize) -> Self {
        self.syslog_shards = shards.max(1);
        self
    }

    /// Overrides the batch-pipeline configuration.
    pub fn with_logdiver(mut self, config: LogDiverConfig) -> Self {
        self.logdiver = config;
        self
    }

    /// Overrides the health policy.
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }

    /// Enables quarantine spilling (see
    /// [`crate::StreamEngine::take_spilled`]).
    pub fn with_quarantine_spill(mut self) -> Self {
        self.spill_quarantined = true;
        self
    }

    /// Overrides the per-source quarantine ring size.
    pub fn with_quarantine_keep(mut self, keep: usize) -> Self {
        self.quarantine_keep = keep;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_indices_are_canonical() {
        for (i, s) in Source::ALL.into_iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert!(Source::Syslog.is_entry());
        assert!(!Source::Alps.is_entry());
        assert_eq!(Source::Netwatch.file_name(), "netwatch.log");
    }
}
