//! Byte-offset file tailing that survives rotation, truncation, and torn
//! writes.
//!
//! The feeder side of `--follow` used to slurp "everything past offset"
//! with `read_to_string`, which fails on invalid UTF-8, silently clamps on
//! shrink, and happily consumes half-written lines. [`Tailer`] fixes all
//! three:
//!
//! - **Complete lines only.** The consumed offset only ever advances past
//!   a terminating `\n`. A torn write (writer died or flushed mid-line)
//!   stays unconsumed and is re-read on the next poll once the rest
//!   arrives — so a checkpointed offset is always a clean line boundary.
//! - **Rotation/truncation.** A file shorter than the consumed offset
//!   means the file was rotated or truncated in place; the tailer restarts
//!   from byte 0 and reports it ([`TailPoll::rotated`]).
//! - **Encoding.** Lines are split on raw bytes and decoded lossily, so a
//!   mid-record UTF-8 truncation yields a quarantinable line instead of an
//!   I/O error that kills the whole feeder.
//!
//! The file behind a tailer is abstract ([`LogFile`]) so the chaos harness
//! can drive the exact same code against an in-memory fault injector.

use std::fs;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::PathBuf;

/// Largest read per poll. A single "line" longer than this (no newline in
/// a full chunk with more bytes behind it) is force-split — it is garbage
/// by any log's standards and must not wedge the tailer.
const MAX_POLL_READ: usize = 8 << 20;

/// A byte-addressable, growing (or rotating) log file.
#[allow(clippy::len_without_is_empty)] // len is fallible and racy; an is_empty would mislead
pub trait LogFile {
    /// Current length in bytes. A missing file reads as empty — absent and
    /// not-yet-created are the same thing to a tailer.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures other than the file being absent.
    fn len(&mut self) -> io::Result<u64>;

    /// Reads up to `max` bytes starting at `offset`. Short reads are fine.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures other than the file being absent (which
    /// reads as empty).
    fn read_at(&mut self, offset: u64, max: usize) -> io::Result<Vec<u8>>;
}

/// A [`LogFile`] over a filesystem path. The file is reopened on every
/// call, so rename-style rotation (new inode at the same path) is picked
/// up without holding a stale descriptor.
#[derive(Debug)]
pub struct FsLogFile {
    path: PathBuf,
}

impl FsLogFile {
    /// Tails the file at `path` (which need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FsLogFile { path: path.into() }
    }
}

impl LogFile for FsLogFile {
    fn len(&mut self) -> io::Result<u64> {
        match fs::metadata(&self.path) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    fn read_at(&mut self, offset: u64, max: usize) -> io::Result<Vec<u8>> {
        let mut file = match fs::File::open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; max];
        let mut filled = 0;
        while filled < buf.len() {
            match file.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        buf.truncate(filled);
        Ok(buf)
    }
}

/// Result of one [`Tailer::poll`].
#[derive(Debug, Default)]
pub struct TailPoll {
    /// Complete lines consumed, terminators stripped, lossily decoded.
    pub lines: Vec<String>,
    /// Byte offset just past each line's terminator, parallel to `lines`.
    /// `ends[k]` is the exact offset to resume from if `lines[..=k]` have
    /// been durably consumed — what checkpointing feeders record.
    pub ends: Vec<u64>,
    /// The file shrank below the consumed offset (rotation or in-place
    /// truncation); consumption restarted from byte 0.
    pub rotated: bool,
    /// File length observed this poll (after any rotation reset).
    pub len: u64,
}

/// Incremental line reader over a [`LogFile`].
#[derive(Debug)]
pub struct Tailer<F> {
    file: F,
    offset: u64,
    rotations: u64,
}

impl<F: LogFile> Tailer<F> {
    /// Starts tailing from the beginning of `file`.
    pub fn new(file: F) -> Self {
        Tailer {
            file,
            offset: 0,
            rotations: 0,
        }
    }

    /// Starts tailing from a previously checkpointed consumed offset. If
    /// the file was rotated while the tailer was away (now shorter than
    /// `offset`), the first poll detects it and restarts from 0.
    pub fn resume_at(file: F, offset: u64) -> Self {
        Tailer {
            file,
            offset,
            rotations: 0,
        }
    }

    /// Bytes consumed so far — always a complete-line boundary, safe to
    /// checkpoint.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Rotations/truncations detected so far.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Reads whatever complete lines have appeared since the last poll.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying file; the consumed
    /// offset is unchanged on error, so polling again is always safe.
    pub fn poll(&mut self) -> io::Result<TailPoll> {
        let mut out = TailPoll::default();
        let len = self.file.len()?;
        if len < self.offset {
            self.offset = 0;
            self.rotations += 1;
            out.rotated = true;
        }
        out.len = len;
        if len == self.offset {
            return Ok(out);
        }
        let want = usize::try_from(len - self.offset)
            .unwrap_or(MAX_POLL_READ)
            .min(MAX_POLL_READ);
        let chunk = self.file.read_at(self.offset, want)?;
        if chunk.is_empty() {
            return Ok(out);
        }
        let complete = match chunk.iter().rposition(|&b| b == b'\n') {
            Some(last_nl) => last_nl + 1,
            // No newline anywhere: an in-progress tail line — unless the
            // chunk is full *and* more bytes exist, in which case this is
            // a pathological monster line; force-split so we cannot wedge.
            None if chunk.len() == MAX_POLL_READ && len - self.offset > chunk.len() as u64 => {
                chunk.len()
            }
            None => return Ok(out),
        };
        // Strip the final terminator before splitting so the trailing
        // empty artifact disappears; interior blank lines (two adjacent
        // newlines) still come through — they are quarantine fodder, not
        // data loss.
        let body = &chunk[..complete];
        let terminated = body.ends_with(b"\n");
        let body = body.strip_suffix(b"\n").unwrap_or(body);
        let mut cursor = self.offset;
        let slices: Vec<&[u8]> = body.split(|&b| b == b'\n').collect();
        for (k, raw) in slices.iter().enumerate() {
            // Every slice but possibly the last (a force-split monster
            // line) is followed by one terminator byte in the file.
            let sep = u64::from(k + 1 < slices.len() || terminated);
            cursor += raw.len() as u64 + sep;
            out.lines.push(String::from_utf8_lossy(raw).into_owned());
            out.ends.push(cursor);
        }
        debug_assert_eq!(cursor, self.offset + complete as u64);
        self.offset += complete as u64;
        Ok(out)
    }

    /// Consumes an unterminated final line, if any — for one-shot (non
    /// follow) reads where no further write will ever complete it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying file.
    pub fn finish(&mut self) -> io::Result<Option<String>> {
        let len = self.file.len()?;
        if len <= self.offset {
            return Ok(None);
        }
        let want = usize::try_from(len - self.offset).unwrap_or(MAX_POLL_READ);
        let chunk = self.file.read_at(self.offset, want)?;
        if chunk.is_empty() {
            return Ok(None);
        }
        self.offset += chunk.len() as u64;
        Ok(Some(String::from_utf8_lossy(&chunk).into_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// In-memory log for unit tests: a shared byte buffer the "writer"
    /// mutates between polls.
    #[derive(Debug, Clone, Default)]
    struct MemLog(Rc<RefCell<Vec<u8>>>);

    impl MemLog {
        fn write(&self, bytes: &[u8]) {
            self.0.borrow_mut().extend_from_slice(bytes);
        }
        fn truncate_to(&self, len: usize) {
            self.0.borrow_mut().truncate(len);
        }
    }

    impl LogFile for MemLog {
        fn len(&mut self) -> io::Result<u64> {
            Ok(self.0.borrow().len() as u64)
        }
        fn read_at(&mut self, offset: u64, max: usize) -> io::Result<Vec<u8>> {
            let data = self.0.borrow();
            let lo = (offset as usize).min(data.len());
            let hi = (lo + max).min(data.len());
            Ok(data[lo..hi].to_vec())
        }
    }

    #[test]
    fn consumes_only_complete_lines() {
        let log = MemLog::default();
        let mut tail = Tailer::new(log.clone());
        log.write(b"alpha\nbra");
        let p = tail.poll().unwrap();
        assert_eq!(p.lines, vec!["alpha"]);
        assert_eq!(tail.offset(), 6);
        // The torn tail arrives; both halves join into one line.
        log.write(b"vo\ncharlie\n");
        let p = tail.poll().unwrap();
        assert_eq!(p.lines, vec!["bravo", "charlie"]);
        assert_eq!(tail.offset(), 20);
        assert!(tail.poll().unwrap().lines.is_empty());
    }

    #[test]
    fn rotation_restarts_from_zero() {
        let log = MemLog::default();
        let mut tail = Tailer::new(log.clone());
        log.write(b"one\ntwo\n");
        assert_eq!(tail.poll().unwrap().lines.len(), 2);
        // Rotate: new, shorter file at the same path.
        log.truncate_to(0);
        log.write(b"fresh\n");
        let p = tail.poll().unwrap();
        assert!(p.rotated);
        assert_eq!(p.lines, vec!["fresh"]);
        assert_eq!(tail.rotations(), 1);
    }

    #[test]
    fn invalid_utf8_is_lossy_not_fatal() {
        let log = MemLog::default();
        let mut tail = Tailer::new(log.clone());
        log.write(b"good line\n\xe4\xb8\n");
        let p = tail.poll().unwrap();
        assert_eq!(p.lines.len(), 2);
        assert_eq!(p.lines[0], "good line");
        assert!(p.lines[1].contains('\u{FFFD}'));
    }

    #[test]
    fn ends_are_exact_resume_offsets() {
        let log = MemLog::default();
        let mut tail = Tailer::new(log.clone());
        log.write(b"ab\ncdef\n\ng\n");
        let p = tail.poll().unwrap();
        assert_eq!(p.lines, vec!["ab", "cdef", "", "g"]);
        assert_eq!(p.ends, vec![3, 8, 9, 11]);
        assert_eq!(tail.offset(), 11);
        // Resuming at any recorded end yields exactly the suffix.
        let mut resumed = Tailer::resume_at(log.clone(), 8);
        assert_eq!(resumed.poll().unwrap().lines, vec!["", "g"]);
    }

    #[test]
    fn interior_blank_lines_come_through() {
        let log = MemLog::default();
        let mut tail = Tailer::new(log.clone());
        log.write(b"a\n\nb\n");
        let p = tail.poll().unwrap();
        assert_eq!(p.lines, vec!["a", "", "b"]);
    }

    #[test]
    fn resume_at_skips_consumed_prefix() {
        let log = MemLog::default();
        log.write(b"seen\nunseen\n");
        let mut tail = Tailer::resume_at(log.clone(), 5);
        let p = tail.poll().unwrap();
        assert_eq!(p.lines, vec!["unseen"]);
        // Resume past a rotation: offset beyond the (new) file.
        let mut tail = Tailer::resume_at(log.clone(), 9_999);
        let p = tail.poll().unwrap();
        assert!(p.rotated);
        assert_eq!(p.lines, vec!["seen", "unseen"]);
    }

    #[test]
    fn finish_takes_unterminated_tail() {
        let log = MemLog::default();
        log.write(b"whole\npartial");
        let mut tail = Tailer::new(log.clone());
        assert_eq!(tail.poll().unwrap().lines, vec!["whole"]);
        assert_eq!(tail.finish().unwrap(), Some("partial".to_string()));
        assert_eq!(tail.finish().unwrap(), None);
        assert_eq!(tail.offset(), 13);
    }

    #[test]
    fn fs_log_file_absent_reads_empty() {
        let mut f = FsLogFile::new("/nonexistent/logdiver-test/zzz.log");
        assert_eq!(f.len().unwrap(), 0);
        assert!(f.read_at(0, 16).unwrap().is_empty());
        let mut tail = Tailer::new(f);
        let p = tail.poll().unwrap();
        assert!(p.lines.is_empty() && !p.rotated);
    }
}
