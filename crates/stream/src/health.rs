//! Per-source health tracking and graceful degradation.
//!
//! One rotated, corrupt, or NFS-stalled log file must not poison the
//! global low watermark — the paper's own lesson applied to the tool. Each
//! source carries a small state machine:
//!
//! ```text
//!            consecutive bad ≥ degrade_after,
//!            or driver-reported stall
//!  Healthy ────────────────────────────────▶ Degraded
//!     ▲                                         │ consecutive bad
//!     │ recover_after good lines                │ ≥ break_after
//!     │ and not stalled                         ▼
//!  HalfOpen ◀────────────────────────────── Open (circuit broken)
//!     │          probe() after backoff
//!     │ probe_lines good lines → Healthy
//!     └─ any bad line → Open (attempt + 1, wider backoff)
//! ```
//!
//! Consequences per state:
//!
//! - **Healthy** — gates the watermarks normally (`progress − lateness`).
//! - **Degraded** — quarantine retention is *sampled* (1 in
//!   [`HealthPolicy::sample_keep`] bad lines kept; counters stay exact) and
//!   the source's watermark contribution is clamped: it may hold the global
//!   mark at most [`HealthPolicy::degraded_hold`] behind the most advanced
//!   source, so a stalled file delays — but no longer blocks — event
//!   closing and run finalization. Records it delivers after the watermark
//!   has moved past them are counted in `late_dropped` (fidelity is traded
//!   for progress, and the trade is visible in the snapshot).
//! - **Open** — the circuit is broken: [`crate::StreamEngine::push`]
//!   rejects lines ([`crate::StreamError::CircuitOpen`]), the source stops
//!   gating the watermarks entirely, and the driver is expected to retry
//!   with [`HealthReport::backoff_ms`] (exponential + deterministic jitter)
//!   before calling [`crate::StreamEngine::probe`].
//! - **HalfOpen** — a probe window: up to [`HealthPolicy::probe_lines`]
//!   lines flow; one bad line re-opens the circuit with a wider backoff,
//!   a full window of good lines closes it (back to Healthy).

use logdiver_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Health state of one log source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceHealth {
    /// Flowing and parseable; gates the watermarks normally.
    Healthy,
    /// Suspect (corrupt run or stalled): sampled quarantine, clamped
    /// watermark contribution.
    Degraded,
    /// Circuit broken: pushes are rejected, the source does not gate the
    /// watermarks; retry with backoff, then probe.
    Open,
    /// Probing after backoff: a bounded number of lines may flow.
    HalfOpen,
}

impl SourceHealth {
    /// Short fixed-width label for progress lines (`ok`, `deg`, `OPEN`,
    /// `half`).
    pub fn label(self) -> &'static str {
        match self {
            SourceHealth::Healthy => "ok",
            SourceHealth::Degraded => "deg",
            SourceHealth::Open => "OPEN",
            SourceHealth::HalfOpen => "half",
        }
    }
}

/// Escalation thresholds and backoff policy for source health.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Consecutive quarantined lines before a source turns Degraded.
    pub degrade_after: u32,
    /// Consecutive quarantined lines before the circuit opens.
    pub break_after: u32,
    /// Consecutive good lines for a Degraded source to recover.
    pub recover_after: u32,
    /// In Degraded/Open state, keep 1 in this many bad lines in the
    /// quarantine ring and spill (counters stay exact).
    pub sample_keep: u32,
    /// Lines admitted during a HalfOpen probe; that many consecutive good
    /// lines close the circuit.
    pub probe_lines: u32,
    /// How far (in log time) a Degraded source may hold the global
    /// watermark behind the most advanced source.
    pub degraded_hold: SimDuration,
    /// Base retry backoff when the circuit opens.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_max_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after: 32,
            break_after: 256,
            recover_after: 64,
            sample_keep: 8,
            probe_lines: 32,
            degraded_hold: SimDuration::from_secs(3_600),
            backoff_base_ms: 500,
            backoff_max_ms: 30_000,
        }
    }
}

impl HealthPolicy {
    /// Suggested wait before probe attempt `attempt` (0-based):
    /// `base · 2^attempt` capped at the ceiling, plus a deterministic
    /// jitter (< base/2, keyed on source and attempt) so five sources that
    /// break together do not probe in lockstep.
    pub fn backoff_ms(&self, source_index: usize, attempt: u32) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.backoff_max_ms);
        let jitter_span = (self.backoff_base_ms / 2).max(1);
        // splitmix64-style hash: cheap, deterministic, spreads sources.
        let mut x = (source_index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(attempt));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        exp + x % jitter_span
    }
}

/// Live health of one source, as reported by
/// [`crate::StreamSnapshot::health`] and [`crate::StreamEngine::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Current state.
    pub state: SourceHealth,
    /// Consecutive quarantined lines right now.
    pub consecutive_bad: u32,
    /// Times the circuit has opened without a successful close since the
    /// last recovery (drives the backoff exponent).
    pub open_attempts: u32,
    /// Lines rejected while the circuit was open.
    pub rejected_while_open: u64,
    /// Suggested wait before the next probe, when Open (0 otherwise).
    pub backoff_ms: u64,
}

/// The per-source state machine. Serializable: checkpoints carry it so a
/// resumed engine keeps degrading/backing off exactly where it left off.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct HealthState {
    pub(crate) state: SourceHealth,
    pub(crate) consecutive_bad: u32,
    pub(crate) consecutive_good: u32,
    pub(crate) open_attempts: u32,
    pub(crate) probe_remaining: u32,
    pub(crate) rejected_while_open: u64,
    /// Driver-reported stall (wall-clock detection happens in the feeder;
    /// the engine only records the verdict).
    pub(crate) stalled: bool,
}

impl Default for HealthState {
    fn default() -> Self {
        HealthState {
            state: SourceHealth::Healthy,
            consecutive_bad: 0,
            consecutive_good: 0,
            open_attempts: 0,
            probe_remaining: 0,
            rejected_while_open: 0,
            stalled: false,
        }
    }
}

impl HealthState {
    /// A quarantined line was applied. Returns `true` when the raw line
    /// should be retained (ring/spill) under the sampling rule.
    pub(crate) fn record_bad(&mut self, policy: &HealthPolicy, bad_total: u64) -> bool {
        self.consecutive_bad = self.consecutive_bad.saturating_add(1);
        self.consecutive_good = 0;
        match self.state {
            SourceHealth::HalfOpen => {
                // Probe failed: back to Open with a wider backoff.
                self.state = SourceHealth::Open;
                self.open_attempts = self.open_attempts.saturating_add(1);
            }
            SourceHealth::Healthy if self.consecutive_bad >= policy.degrade_after => {
                self.state = SourceHealth::Degraded;
            }
            SourceHealth::Degraded if self.consecutive_bad >= policy.break_after => {
                self.state = SourceHealth::Open;
                self.open_attempts = self.open_attempts.saturating_add(1);
            }
            _ => {}
        }
        match self.state {
            SourceHealth::Healthy => true,
            _ => bad_total.is_multiple_of(u64::from(policy.sample_keep.max(1))),
        }
    }

    /// A good (parsed) line was applied.
    pub(crate) fn record_good(&mut self, policy: &HealthPolicy) {
        self.consecutive_bad = 0;
        self.consecutive_good = self.consecutive_good.saturating_add(1);
        match self.state {
            SourceHealth::HalfOpen => {
                self.probe_remaining = self.probe_remaining.saturating_sub(1);
                if self.probe_remaining == 0 {
                    self.state = SourceHealth::Healthy;
                    self.open_attempts = 0;
                    self.stalled = false;
                }
            }
            SourceHealth::Degraded
                if !self.stalled && self.consecutive_good >= policy.recover_after =>
            {
                self.state = SourceHealth::Healthy;
                self.open_attempts = 0;
            }
            _ => {}
        }
    }

    /// Driver says the source is stalled (file not growing while others
    /// do). Healthy sources degrade; worse states keep their standing.
    pub(crate) fn mark_stalled(&mut self) {
        self.stalled = true;
        if self.state == SourceHealth::Healthy {
            self.state = SourceHealth::Degraded;
        }
    }

    /// Driver says the stall cleared. A source degraded *only* by the
    /// stall recovers immediately; corrupt-line escalation stays put.
    pub(crate) fn mark_recovered(&mut self, policy: &HealthPolicy) {
        self.stalled = false;
        if self.state == SourceHealth::Degraded && self.consecutive_bad < policy.degrade_after {
            self.state = SourceHealth::Healthy;
        }
    }

    /// Open → HalfOpen transition (the driver calls this after the backoff
    /// wait). Returns `false` when the circuit is not open.
    pub(crate) fn probe(&mut self, policy: &HealthPolicy) -> bool {
        if self.state != SourceHealth::Open {
            return false;
        }
        self.state = SourceHealth::HalfOpen;
        self.probe_remaining = policy.probe_lines.max(1);
        true
    }

    pub(crate) fn report(&self, policy: &HealthPolicy, source_index: usize) -> HealthReport {
        HealthReport {
            state: self.state,
            consecutive_bad: self.consecutive_bad,
            open_attempts: self.open_attempts,
            rejected_while_open: self.rejected_while_open,
            backoff_ms: match self.state {
                SourceHealth::Open => {
                    policy.backoff_ms(source_index, self.open_attempts.saturating_sub(1))
                }
                _ => 0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            degrade_after: 3,
            break_after: 6,
            recover_after: 4,
            sample_keep: 2,
            probe_lines: 2,
            ..HealthPolicy::default()
        }
    }

    #[test]
    fn escalates_degraded_then_open_and_recovers_via_probe() {
        let p = policy();
        let mut h = HealthState::default();
        for i in 0..3 {
            h.record_bad(&p, i);
        }
        assert_eq!(h.state, SourceHealth::Degraded);
        for i in 3..6 {
            h.record_bad(&p, i);
        }
        assert_eq!(h.state, SourceHealth::Open);
        assert_eq!(h.open_attempts, 1);

        assert!(h.probe(&p));
        assert_eq!(h.state, SourceHealth::HalfOpen);
        // A bad line during the probe re-opens with attempt + 1.
        h.record_bad(&p, 7);
        assert_eq!(h.state, SourceHealth::Open);
        assert_eq!(h.open_attempts, 2);

        assert!(h.probe(&p));
        h.record_good(&p);
        h.record_good(&p);
        assert_eq!(h.state, SourceHealth::Healthy);
        assert_eq!(h.open_attempts, 0);
    }

    #[test]
    fn degraded_recovers_after_good_run() {
        let p = policy();
        let mut h = HealthState::default();
        for i in 0..4 {
            h.record_bad(&p, i);
        }
        assert_eq!(h.state, SourceHealth::Degraded);
        for _ in 0..4 {
            h.record_good(&p);
        }
        assert_eq!(h.state, SourceHealth::Healthy);
    }

    #[test]
    fn stall_degrades_and_clears() {
        let p = policy();
        let mut h = HealthState::default();
        h.mark_stalled();
        assert_eq!(h.state, SourceHealth::Degraded);
        // Good lines alone must not clear a stall-degraded source…
        for _ in 0..10 {
            h.record_good(&p);
        }
        assert_eq!(h.state, SourceHealth::Degraded);
        // …only the driver's recovery verdict does.
        h.mark_recovered(&p);
        assert_eq!(h.state, SourceHealth::Healthy);
    }

    #[test]
    fn sampling_applies_only_off_healthy() {
        let p = policy();
        let mut h = HealthState::default();
        assert!(h.record_bad(&p, 0));
        assert!(h.record_bad(&p, 1));
        // Third bad line crosses into Degraded: sampled (1 in 2).
        assert!(h.record_bad(&p, 2));
        assert!(!h.record_bad(&p, 3));
        assert!(h.record_bad(&p, 4));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = HealthPolicy::default();
        let b0 = p.backoff_ms(0, 0);
        let b3 = p.backoff_ms(0, 3);
        let b20 = p.backoff_ms(0, 20);
        assert!(b0 < b3, "{b0} vs {b3}");
        assert!(b20 <= p.backoff_max_ms + p.backoff_base_ms / 2);
        // Deterministic.
        assert_eq!(p.backoff_ms(2, 1), p.backoff_ms(2, 1));
        // Different sources jitter apart.
        assert_ne!(p.backoff_ms(0, 0), p.backoff_ms(1, 0));
    }

    #[test]
    fn probe_only_from_open() {
        let p = policy();
        let mut h = HealthState::default();
        assert!(!h.probe(&p));
        assert_eq!(h.state, SourceHealth::Healthy);
    }
}
