//! The pure delivery state machine.
//!
//! [`Session`] owns everything about *what to do next* — which line to push,
//! when to sleep, when to reconnect and re-`HELLO` — but performs no I/O and
//! reads no clocks. A driver loop asks for the next [`Action`], performs it
//! against a real (or chaos-injected) wire, and reports the outcome through
//! the `on_*` callbacks:
//!
//! ```text
//! loop {
//!     match session.action() {
//!         Action::Connect  => … then on_connected() / on_connect_failed()
//!         Action::Send(l)  => … then on_response(&resp) / on_wire_error()
//!         Action::Sleep(n) => … then on_slept(n)
//!         Action::Done     => break,
//!     }
//! }
//! ```
//!
//! The exactly-once invariant: every `PUSH` carries the explicit per-source
//! index the server expects next. After any reconnect the session re-sends
//! `HELLO`, adopts the server's `accepted=` cursors, and resumes from there;
//! lines the server already accepted answer `OK dup` and are counted as
//! duplicates, never as new deliveries. Shedding hints (`ERR code=overload`
//! / `code=draining` with `retry-ms=N`) are obeyed verbatim and retried
//! without limit — they are flow control. Hard errors and wire faults burn
//! bounded-backoff attempts and eventually fail the session.

use logdiver_types::protocol as codes;

use crate::backoff::{splitmix64, BackoffPolicy};
use crate::summary::DeliverySummary;

/// Source names in the server's cursor order (`Source::ALL`).
pub const SOURCES: [&str; 5] = ["syslog", "hwerr", "alps", "torque", "netwatch"];

/// What one session wants delivered: a tenant and up to five per-source
/// line vectors, indexed in [`SOURCES`] order.
#[derive(Debug, Clone, Default)]
pub struct PushPlan {
    /// Tenant to push under.
    pub tenant: String,
    /// Lines per source, in [`SOURCES`] order. Lines must not contain
    /// newlines (they are the wire framing).
    pub lines: [Vec<String>; 5],
}

impl PushPlan {
    /// Total lines across all sources.
    pub fn total_lines(&self) -> u64 {
        self.lines.iter().map(|v| v.len() as u64).sum()
    }
}

/// Knobs for retry behaviour.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Backoff schedule for connect failures, wire errors, and retryable
    /// hard errors.
    pub backoff: BackoffPolicy,
    /// Consecutive failed attempts (connect failures, wire errors,
    /// retryable hard errors) tolerated before the session fails. Shedding
    /// hints do not count.
    pub max_attempts: u32,
    /// Seed for backoff jitter; vary per client to de-synchronise a fleet.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            backoff: BackoffPolicy::default(),
            max_attempts: 8,
            seed: 0,
        }
    }
}

/// The next thing the driver must do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Open (or re-open) the connection, then call `on_connected` or
    /// `on_connect_failed`.
    Connect,
    /// Send this line (newline appended by the wire), read one response
    /// line, then call `on_response` or `on_wire_error`.
    Send(String),
    /// Sleep this many milliseconds, then call `on_slept`.
    Sleep(u64),
    /// The session is finished; consult [`Session::summary`].
    Done,
}

/// What to do after a sleep completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resume {
    /// Re-open the connection and re-`HELLO`.
    Reconnect,
    /// Re-send the current `PUSH`.
    Push,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    Connect,
    SendHello,
    SendPush,
    Sleep { ms: u64, then: Resume },
    Done,
    Failed,
}

/// Pure exactly-once delivery state machine. See the module docs for the
/// driver contract.
#[derive(Debug)]
pub struct Session {
    plan: PushPlan,
    config: SessionConfig,
    phase: Phase,
    /// Next index to push per source — advanced by `OK`/`OK dup`, rewound
    /// by `ERR code=gap expected=N`, adopted wholesale from `HELLO`.
    cursors: [u64; 5],
    /// Sources permanently abandoned after `ERR code=line-too-long`.
    dead: [bool; 5],
    /// Round-robin pointer into [`SOURCES`].
    current: usize,
    /// Consecutive failures since the last success.
    attempt: u32,
    /// Monotone counter salting each jittered delay.
    salt: u64,
    connected_once: bool,
    stats: DeliverySummary,
}

impl Session {
    /// Start a session for `plan`.
    pub fn new(plan: PushPlan, config: SessionConfig) -> Self {
        let stats = DeliverySummary {
            tenant: plan.tenant.clone(),
            total_lines: plan.total_lines(),
            ..DeliverySummary::default()
        };
        Session {
            plan,
            config,
            phase: Phase::Connect,
            cursors: [0; 5],
            dead: [false; 5],
            current: 0,
            attempt: 0,
            salt: config.seed,
            connected_once: false,
            stats,
        }
    }

    /// The next action the driver must perform. Idempotent: repeated calls
    /// without an intervening callback return the same action.
    pub fn action(&self) -> Action {
        match &self.phase {
            Phase::Connect => Action::Connect,
            Phase::SendHello => Action::Send(format!("HELLO {}", self.plan.tenant)),
            Phase::SendPush => match self.current_line() {
                Some((source, index, line)) => {
                    Action::Send(format!("PUSH {} {source} {index} {line}", self.plan.tenant))
                }
                // Scheduling always lands on a source with work before
                // entering SendPush; an empty schedule means done.
                None => Action::Done,
            },
            Phase::Sleep { ms, .. } => Action::Sleep(*ms),
            Phase::Done | Phase::Failed => Action::Done,
        }
    }

    /// True when the session has terminated (successfully or not).
    pub fn finished(&self) -> bool {
        matches!(self.phase, Phase::Done | Phase::Failed)
    }

    /// True when the session terminated with every line delivered.
    pub fn complete(&self) -> bool {
        matches!(self.phase, Phase::Done) && self.stats.rejected == 0
    }

    /// The connection opened: send `HELLO` next.
    pub fn on_connected(&mut self) {
        if self.phase != Phase::Connect {
            return;
        }
        if self.connected_once {
            self.stats.reconnects += 1;
        }
        self.connected_once = true;
        self.phase = Phase::SendHello;
    }

    /// The connection attempt failed (refused / timed out).
    pub fn on_connect_failed(&mut self) {
        if self.phase != Phase::Connect {
            return;
        }
        self.fault("connect failed", Resume::Reconnect);
    }

    /// A full response line arrived for the last `Send`.
    pub fn on_response(&mut self, response: &str) {
        match self.phase {
            Phase::SendHello => self.on_hello_response(response),
            Phase::SendPush => self.on_push_response(response),
            _ => {}
        }
    }

    /// The send or the response read failed mid-stream; the connection is
    /// unusable.
    pub fn on_wire_error(&mut self) {
        if !matches!(self.phase, Phase::SendHello | Phase::SendPush) {
            return;
        }
        self.fault("wire error", Resume::Reconnect);
    }

    /// The requested sleep completed.
    pub fn on_slept(&mut self, ms: u64) {
        let Phase::Sleep { then, .. } = self.phase else {
            return;
        };
        self.stats.slept_ms += ms;
        self.phase = match then {
            Resume::Reconnect => Phase::Connect,
            Resume::Push => Phase::SendPush,
        };
    }

    /// Delivery summary so far; terminal fields (`complete`, `error`) are
    /// meaningful once [`finished`](Self::finished) is true. `wall_ms` is
    /// left for the driver to stamp.
    pub fn summary(&self) -> DeliverySummary {
        let mut s = self.stats.clone();
        s.complete = self.complete();
        s.dead_sources = SOURCES
            .iter()
            .zip(self.dead)
            .filter(|(_, d)| *d)
            .map(|(n, _)| n.to_string())
            .collect();
        s
    }

    fn on_hello_response(&mut self, response: &str) {
        if response.starts_with("OK") {
            if let Some(cursors) = kv(response, "accepted").and_then(parse_cursors) {
                self.cursors = cursors;
            }
            self.attempt = 0;
            self.schedule();
        } else {
            // A rejected handshake (bad tenant name, protocol error) cannot
            // be retried into success.
            self.fail(format!("HELLO rejected: {response}"));
        }
    }

    fn on_push_response(&mut self, response: &str) {
        let Some((src_idx, _, _, _)) = self.current_slot() else {
            self.schedule();
            return;
        };
        if response.starts_with("OK") {
            if response.starts_with("OK dup") {
                self.stats.dups += 1;
            } else {
                self.stats.pushed += 1;
            }
            self.cursors[src_idx] += 1;
            self.attempt = 0;
            self.schedule();
            return;
        }
        match kv(response, "code") {
            Some(codes::OVERLOAD) | Some(codes::DRAINING) => {
                // Flow control, not failure: obey the hint and resend the
                // same line, without limit.
                if kv(response, "code") == Some(codes::OVERLOAD) {
                    self.stats.shed_overload += 1;
                } else {
                    self.stats.shed_draining += 1;
                }
                self.stats.retries += 1;
                let ms = kv(response, "retry-ms")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(100)
                    .max(1);
                self.phase = Phase::Sleep {
                    ms,
                    then: Resume::Push,
                };
            }
            Some(codes::GAP) => {
                // The server expects a different index — adopt it. This
                // heals both directions: behind (another pusher got ahead)
                // and ahead (a stale cursor after the server lost state).
                if let Some(expected) = kv(response, "expected").and_then(|v| v.parse().ok()) {
                    self.cursors[src_idx] = expected;
                    self.stats.gaps_healed += 1;
                    self.attempt = 0;
                    self.schedule();
                } else {
                    self.fail(format!("unparseable gap response: {response}"));
                }
            }
            Some(codes::LINE_TOO_LONG) => {
                // Skipping the line would leave a permanent index gap, so
                // the whole source is abandoned; the rest keep going.
                self.stats.rejected += 1;
                self.dead[src_idx] = true;
                self.attempt = 0;
                self.schedule();
            }
            Some(codes::OVER_QUOTA) | Some(codes::OVER_BUDGET) => {
                // Admission pressure that may clear as the window rolls —
                // worth bounded retries.
                self.stats.retries += 1;
                self.fault("quota rejection", Resume::Push);
            }
            Some(codes::SLOW_CLIENT) => {
                // The daemon's slowloris guard evicted this connection and
                // is about to close it; the session is fine. Reconnect,
                // re-HELLO, and resume from the server's cursors — burning
                // a bounded attempt so a persistently-too-slow link still
                // fails instead of thrashing.
                self.fault("evicted as slow client", Resume::Reconnect);
            }
            _ => {
                // bad-line, bad-source, … : a client-side bug; retrying the
                // identical frame cannot help.
                self.fail(format!("push rejected: {response}"));
            }
        }
    }

    /// Record a retryable failure: burn an attempt, back off, resume — or
    /// fail the session once the attempts are spent.
    fn fault(&mut self, what: &str, then: Resume) {
        self.attempt += 1;
        if self.attempt > self.config.max_attempts {
            self.fail(format!(
                "{what} after {} attempts",
                self.config.max_attempts
            ));
            return;
        }
        self.salt = self.salt.wrapping_add(1);
        let ms = self
            .config
            .backoff
            .delay_ms(self.attempt - 1, splitmix64(self.salt));
        self.stats.backoffs += 1;
        self.phase = Phase::Sleep { ms, then };
    }

    fn fail(&mut self, error: String) {
        self.stats.error = Some(error);
        self.phase = Phase::Failed;
    }

    /// Pick the next source with undelivered work (round-robin from
    /// `current`), or finish.
    fn schedule(&mut self) {
        for step in 0..SOURCES.len() {
            let idx = (self.current + step) % SOURCES.len();
            if !self.dead[idx] && self.cursors[idx] < self.plan.lines[idx].len() as u64 {
                self.current = idx;
                self.phase = Phase::SendPush;
                return;
            }
        }
        self.phase = Phase::Done;
    }

    /// The `(source index, name, line index, line)` currently being pushed.
    fn current_slot(&self) -> Option<(usize, &'static str, u64, &str)> {
        let idx = self.current;
        if self.dead[idx] {
            return None;
        }
        let cursor = self.cursors[idx];
        let line = self.plan.lines[idx].get(cursor as usize)?;
        Some((idx, SOURCES[idx], cursor, line))
    }

    fn current_line(&self) -> Option<(&'static str, u64, &str)> {
        self.current_slot().map(|(_, name, i, l)| (name, i, l))
    }
}

/// Find `key=value` in a whitespace-separated response and return `value`.
fn kv<'a>(response: &'a str, key: &str) -> Option<&'a str> {
    response
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('='))
}

/// Parse the `a,b,c,d,e` cursor vector from `HELLO`'s `accepted=` field.
fn parse_cursors(s: &str) -> Option<[u64; 5]> {
    let mut out = [0u64; 5];
    let mut parts = s.split(',');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    parts.next().is_none().then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(counts: [usize; 5]) -> PushPlan {
        let mut lines: [Vec<String>; 5] = Default::default();
        for (s, n) in counts.iter().enumerate() {
            lines[s] = (0..*n)
                .map(|i| format!("{} line {i}", SOURCES[s]))
                .collect();
        }
        PushPlan {
            tenant: "bw".to_string(),
            lines,
        }
    }

    /// Drive the session against a scripted server: each closure call gets
    /// the sent line and returns the response.
    fn drive(session: &mut Session, mut server: impl FnMut(&str) -> String, max_steps: usize) {
        for _ in 0..max_steps {
            match session.action() {
                Action::Connect => session.on_connected(),
                Action::Send(line) => {
                    let resp = server(&line);
                    session.on_response(&resp);
                }
                Action::Sleep(ms) => session.on_slept(ms),
                Action::Done => return,
            }
        }
        panic!("session did not finish in {max_steps} steps");
    }

    /// A minimal in-memory server honouring indexed idempotent pushes.
    struct FakeServer {
        accepted: [u64; 5],
    }

    impl FakeServer {
        fn new() -> Self {
            FakeServer { accepted: [0; 5] }
        }

        fn respond(&mut self, line: &str) -> String {
            let toks: Vec<&str> = line.splitn(5, ' ').collect();
            match toks.first() {
                Some(&"HELLO") => format!(
                    "OK tenant=bw accepted={}",
                    self.accepted.map(|c| c.to_string()).join(",")
                ),
                Some(&"PUSH") => {
                    let src = SOURCES
                        .iter()
                        .position(|s| Some(*s) == toks.get(2).copied());
                    let (Some(src), Some(Ok(index))) = (src, toks.get(3).map(|t| t.parse::<u64>()))
                    else {
                        return "ERR code=bad-line".to_string();
                    };
                    let expected = self.accepted[src];
                    if index < expected {
                        "OK dup".to_string()
                    } else if index > expected {
                        format!("ERR code=gap expected={expected}")
                    } else {
                        self.accepted[src] += 1;
                        "OK".to_string()
                    }
                }
                _ => "ERR code=bad-line".to_string(),
            }
        }
    }

    #[test]
    fn happy_path_delivers_everything_round_robin() {
        let mut server = FakeServer::new();
        let mut s = Session::new(plan([3, 2, 0, 1, 0]), SessionConfig::default());
        drive(&mut s, |l| server.respond(l), 100);
        assert!(s.complete());
        let sum = s.summary();
        assert_eq!(sum.pushed, 6);
        assert_eq!(sum.dups, 0);
        assert_eq!(sum.total_lines, 6);
        assert!(sum.complete);
        assert_eq!(server.accepted, [3, 2, 0, 1, 0]);
    }

    #[test]
    fn reconnect_replays_from_hello_cursors_exactly_once() {
        let mut server = FakeServer::new();
        let mut s = Session::new(plan([4, 0, 0, 0, 0]), SessionConfig::default());
        // Deliver lines until the third PUSH, which the server processes but
        // whose ack is lost on the wire — the worst case for exactly-once.
        let mut sent = 0;
        for _ in 0..50 {
            match s.action() {
                Action::Connect => s.on_connected(),
                Action::Send(line) => {
                    if line.starts_with("PUSH") {
                        sent += 1;
                        if sent == 3 {
                            server.respond(&line); // accepted server-side…
                            s.on_wire_error(); // …but the ack never arrived
                            break;
                        }
                    }
                    let resp = server.respond(&line);
                    s.on_response(&resp);
                }
                Action::Sleep(ms) => s.on_slept(ms),
                Action::Done => break,
            }
        }
        // Resume: sleep → reconnect → HELLO adopts accepted=3 → pushes 3.
        drive(&mut s, |l| server.respond(l), 100);
        assert!(s.complete());
        let sum = s.summary();
        // Line 2 was accepted server-side without a client ack; HELLO's
        // cursor (3) skips past it, so nothing is double-pushed.
        assert_eq!(sum.pushed + sum.dups, 3, "{sum:?}");
        assert_eq!(sum.reconnects, 1);
        assert_eq!(sum.backoffs, 1);
        assert!(sum.slept_ms > 0);
        assert_eq!(server.accepted, [4, 0, 0, 0, 0]);
    }

    #[test]
    fn shedding_hints_are_obeyed_and_unlimited() {
        let mut server = FakeServer::new();
        let mut sheds = 0;
        let mut s = Session::new(
            plan([2, 0, 0, 0, 0]),
            SessionConfig {
                max_attempts: 1, // hints must not burn attempts
                ..SessionConfig::default()
            },
        );
        let mut slept = Vec::new();
        for _ in 0..200 {
            match s.action() {
                Action::Connect => s.on_connected(),
                Action::Send(line) => {
                    if line.starts_with("PUSH") && sheds < 5 {
                        sheds += 1;
                        s.on_response("ERR code=overload retry-ms=123");
                    } else {
                        let resp = server.respond(&line);
                        s.on_response(&resp);
                    }
                }
                Action::Sleep(ms) => {
                    slept.push(ms);
                    s.on_slept(ms);
                }
                Action::Done => break,
            }
        }
        assert!(s.complete());
        let sum = s.summary();
        assert_eq!(sum.shed_overload, 5);
        assert_eq!(sum.retries, 5);
        assert_eq!(slept, vec![123; 5], "hint obeyed verbatim");
        assert_eq!(sum.slept_ms, 5 * 123);
        assert_eq!(sum.pushed, 2);
    }

    #[test]
    fn gap_response_rewinds_the_cursor() {
        let mut server = FakeServer::new();
        server.accepted[0] = 1; // server already has line 0
        let mut s = Session::new(plan([3, 0, 0, 0, 0]), SessionConfig::default());
        // Sabotage HELLO so the client starts from 0 and collides.
        drive(
            &mut s,
            |l| {
                if l.starts_with("HELLO") {
                    "OK tenant=bw".to_string() // no accepted= field
                } else {
                    server.respond(l)
                }
            },
            100,
        );
        assert!(s.complete());
        let sum = s.summary();
        assert_eq!(sum.dups, 1, "{sum:?}"); // push 0 answers OK dup
        assert_eq!(sum.pushed, 2);
        assert_eq!(server.accepted[0], 3);
    }

    #[test]
    fn line_too_long_kills_one_source_and_the_rest_finish() {
        let mut server = FakeServer::new();
        let mut s = Session::new(plan([2, 3, 0, 0, 0]), SessionConfig::default());
        drive(
            &mut s,
            |l| {
                if l.starts_with("PUSH bw hwerr 1 ") {
                    "ERR code=line-too-long limit=64".to_string()
                } else {
                    server.respond(l)
                }
            },
            100,
        );
        assert!(s.finished());
        assert!(!s.complete());
        let sum = s.summary();
        assert_eq!(sum.rejected, 1);
        assert_eq!(sum.dead_sources, vec!["hwerr".to_string()]);
        assert!(!sum.complete);
        // syslog still fully delivered, hwerr got line 0 only.
        assert_eq!(server.accepted[0], 2);
        assert_eq!(server.accepted[1], 1);
    }

    #[test]
    fn slow_client_eviction_reconnects_and_resumes() {
        let mut server = FakeServer::new();
        let mut evicted = false;
        let mut s = Session::new(plan([3, 0, 0, 0, 0]), SessionConfig::default());
        drive(
            &mut s,
            |l| {
                if l.starts_with("PUSH bw syslog 1 ") && !evicted {
                    evicted = true;
                    "ERR code=slow-client deadline-ms=2000".to_string()
                } else {
                    server.respond(l)
                }
            },
            100,
        );
        assert!(s.complete());
        let sum = s.summary();
        assert_eq!(sum.reconnects, 1, "{sum:?}");
        assert_eq!(sum.backoffs, 1);
        // Line 1 was never applied server-side, so after re-HELLO it is
        // pushed for real — nothing lost, nothing doubled.
        assert_eq!(sum.pushed, 3);
        assert_eq!(server.accepted, [3, 0, 0, 0, 0]);
    }

    #[test]
    fn connect_failures_back_off_then_fail_the_session() {
        let mut s = Session::new(
            plan([1, 0, 0, 0, 0]),
            SessionConfig {
                max_attempts: 3,
                ..SessionConfig::default()
            },
        );
        let mut sleeps = 0;
        for _ in 0..50 {
            match s.action() {
                Action::Connect => s.on_connect_failed(),
                Action::Sleep(ms) => {
                    sleeps += 1;
                    s.on_slept(ms);
                }
                Action::Send(_) => unreachable!("never connected"),
                Action::Done => break,
            }
        }
        assert!(s.finished());
        assert!(!s.complete());
        let sum = s.summary();
        assert_eq!(sleeps, 3);
        assert_eq!(sum.backoffs, 3);
        assert!(sum
            .error
            .as_deref()
            .unwrap_or("")
            .contains("connect failed"));
    }

    #[test]
    fn hello_rejection_fails_fast() {
        let mut s = Session::new(plan([1, 0, 0, 0, 0]), SessionConfig::default());
        s.on_connected();
        s.on_response("ERR code=bad-tenant tenant=../etc");
        assert!(s.finished());
        assert!(s
            .summary()
            .error
            .as_deref()
            .unwrap_or("")
            .contains("HELLO rejected"));
    }

    #[test]
    fn server_ahead_of_plan_counts_as_done() {
        // Another pusher already delivered more than this plan holds.
        let mut s = Session::new(plan([2, 0, 0, 0, 0]), SessionConfig::default());
        s.on_connected();
        s.on_response("OK tenant=bw accepted=5,0,0,0,0");
        assert!(s.finished());
        assert!(s.complete());
        assert_eq!(s.summary().pushed, 0);
    }

    #[test]
    fn kv_and_cursor_parsing() {
        assert_eq!(kv("ERR code=gap expected=7", "expected"), Some("7"));
        assert_eq!(kv("ERR code=gap expected=7", "code"), Some("gap"));
        assert_eq!(kv("OK", "code"), None);
        assert_eq!(parse_cursors("1,2,3,4,5"), Some([1, 2, 3, 4, 5]));
        assert_eq!(parse_cursors("1,2,3"), None);
        assert_eq!(parse_cursors("1,2,3,4,5,6"), None);
        assert_eq!(parse_cursors("1,x,3,4,5"), None);
    }
}
