//! Machine-readable delivery summary.
//!
//! One JSON object per `logdiver-push` run. Everything an operator (or a
//! rolling-restart script) needs to know: did every line land, how much
//! shedding and chaos the run absorbed, and which sources — if any — the
//! server permanently rejected.

use serde::Serialize;

/// Outcome of one delivery session, serialised with `--json`.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DeliverySummary {
    /// Tenant the lines were pushed under.
    pub tenant: String,
    /// Total lines the plan wanted delivered, across all five sources.
    pub total_lines: u64,
    /// Lines newly accepted by the server (`OK`).
    pub pushed: u64,
    /// Lines the server had already accepted (`OK dup`) — replay after a
    /// reconnect or a competing pusher; still exactly-once.
    pub dups: u64,
    /// `PUSH` resends caused by shedding hints or wire faults.
    pub retries: u64,
    /// Connections re-established after a wire error or refused connect.
    pub reconnects: u64,
    /// Backoff sleeps taken (connect failures and hard errors).
    pub backoffs: u64,
    /// Total milliseconds the session asked to sleep (hints + backoff).
    pub slept_ms: u64,
    /// Pushes answered `ERR code=overload retry-ms=N`.
    pub shed_overload: u64,
    /// Pushes answered `ERR code=draining retry-ms=N`.
    pub shed_draining: u64,
    /// Cursor gaps healed by rewinding to the server's `expected=` index.
    pub gaps_healed: u64,
    /// Lines the server permanently rejected (`ERR code=line-too-long`).
    pub rejected: u64,
    /// Sources abandoned after a permanent rejection (a skipped line would
    /// leave an unfillable index gap, so the whole source stops).
    pub dead_sources: Vec<String>,
    /// True iff every line of every source was delivered (`pushed + dups ==
    /// total_lines` and nothing was rejected).
    pub complete: bool,
    /// Wall-clock duration of the run in milliseconds (driver-measured; 0
    /// for pure in-memory drivers).
    pub wall_ms: u64,
    /// Terminal error, if the session failed before completing.
    pub error: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialises_the_full_outcome() {
        let s = DeliverySummary {
            tenant: "bw".to_string(),
            total_lines: 10,
            pushed: 9,
            dups: 1,
            complete: true,
            ..DeliverySummary::default()
        };
        let json = serde_json::to_string(&s).unwrap_or_default();
        assert!(json.contains("\"tenant\":\"bw\""), "{json}");
        assert!(json.contains("\"complete\":true"), "{json}");
        assert!(json.contains("\"error\":null"), "{json}");
    }
}
