//! Blocking TCP driver for [`Session`].
//!
//! This is the only impure module in the crate: it owns the socket, the
//! sleeps, and the wall clock. Everything decision-shaped stays in the
//! session; the driver mechanically performs [`Action`]s and reports
//! outcomes. Per-op timeouts come from the socket's read/write deadlines,
//! and `max_wall_ms` bounds the whole run — a session stuck in an
//! obey-the-hint loop against a daemon that never recovers eventually gives
//! up with a truthful summary instead of hanging a rolling restart forever.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::session::{Action, Session};
use crate::summary::DeliverySummary;

/// Wire-level knobs for [`deliver`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// `host:port` of the daemon.
    pub addr: String,
    /// Per-operation (connect / send / response-read) timeout in
    /// milliseconds; 0 disables.
    pub timeout_ms: u64,
    /// Overall wall-clock budget in milliseconds; 0 disables. When spent,
    /// the run stops and the summary reports the timeout as its error.
    pub max_wall_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:4815".to_string(),
            timeout_ms: 5_000,
            max_wall_ms: 0,
        }
    }
}

impl NetConfig {
    fn op_timeout(&self) -> Option<Duration> {
        (self.timeout_ms > 0).then(|| Duration::from_millis(self.timeout_ms))
    }
}

/// One live connection: the writer half plus a buffered reader on a clone.
#[derive(Debug)]
struct Wire {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Wire {
    fn open(config: &NetConfig) -> std::io::Result<Wire> {
        let stream = TcpStream::connect(&config.addr)?;
        // Lockstep request/response: Nagle would hold every request until
        // the previous segment's (possibly delayed) ACK, stalling each
        // round trip by tens of milliseconds.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.op_timeout())?;
        stream.set_write_timeout(config.op_timeout())?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Wire { stream, reader })
    }

    /// Send one line and read the one-line response (lockstep protocol).
    fn round_trip(&mut self, line: &str) -> std::io::Result<String> {
        // One write per request: splitting the newline into a second tiny
        // segment reintroduces the Nagle/delayed-ACK stall.
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.stream.write_all(&framed)?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Drive `session` to completion over TCP and return its summary with
/// `wall_ms` stamped.
pub fn deliver(mut session: Session, config: &NetConfig) -> DeliverySummary {
    // lint: allow(wall-clock) driver measures real elapsed time by design
    let started = Instant::now();
    let deadline = (config.max_wall_ms > 0).then(|| Duration::from_millis(config.max_wall_ms));
    let mut wire: Option<Wire> = None;
    let mut timed_out = false;

    while !session.finished() {
        if let Some(d) = deadline {
            if started.elapsed() >= d {
                timed_out = true;
                break;
            }
        }
        match session.action() {
            Action::Connect => match Wire::open(config) {
                Ok(w) => {
                    wire = Some(w);
                    session.on_connected();
                }
                Err(_) => {
                    wire = None;
                    session.on_connect_failed();
                }
            },
            Action::Send(line) => match wire.as_mut().map(|w| w.round_trip(&line)) {
                Some(Ok(resp)) => session.on_response(&resp),
                _ => {
                    wire = None;
                    session.on_wire_error();
                }
            },
            Action::Sleep(ms) => {
                // Never sleep past the overall deadline.
                let mut ms = ms;
                if let Some(d) = deadline {
                    let left = d.saturating_sub(started.elapsed());
                    ms = ms.min(left.as_millis() as u64);
                }
                std::thread::sleep(Duration::from_millis(ms));
                session.on_slept(ms);
            }
            Action::Done => break,
        }
    }

    let mut summary = session.summary();
    summary.wall_ms = started.elapsed().as_millis() as u64;
    if timed_out && summary.error.is_none() {
        summary.complete = false;
        summary.error = Some(format!(
            "wall-clock budget {}ms exhausted",
            config.max_wall_ms
        ));
    }
    summary
}
