//! Bounded exponential backoff with deterministic splitmix64 jitter.
//!
//! The policy is a pure function of `(attempt, salt)`: no clocks, no global
//! RNG state. Delays double per attempt from `base_ms` up to `cap_ms`, and
//! each delay is jittered into `[v/2, v]` so a fleet of clients retrying
//! after the same daemon restart spreads its reconnects instead of
//! stampeding — the same idiom `logdiver-serve` uses for its retry hints.

use serde::Serialize;

/// Exponential backoff schedule: `base · 2^attempt` capped at `cap_ms`,
/// jittered into `[v/2, v]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 50,
            cap_ms: 10_000,
        }
    }
}

impl BackoffPolicy {
    /// Delay before retry number `attempt` (0-based), jittered by `salt`.
    ///
    /// Deterministic: the same `(attempt, salt)` always yields the same
    /// delay. The exponent is clamped so large attempt counts cannot
    /// overflow; the result is clamped to `[1, cap_ms]` before jitter so a
    /// zero-base policy still makes progress.
    pub fn delay_ms(&self, attempt: u32, salt: u64) -> u64 {
        let exp = attempt.min(16);
        let raw = self.base_ms.max(1).saturating_mul(1u64 << exp);
        let v = raw.min(self.cap_ms.max(1));
        jittered(
            v,
            salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

/// Jitter `v` into `[v/2, v]` deterministically from `salt`.
pub(crate) fn jittered(v: u64, salt: u64) -> u64 {
    let half = v / 2;
    half + splitmix64(salt) % (v - half + 1)
}

/// The splitmix64 finalizer — cheap, stateless, well distributed.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_then_cap() {
        let p = BackoffPolicy {
            base_ms: 100,
            cap_ms: 1_000,
        };
        // Jitter keeps each delay within [v/2, v] of the un-jittered curve.
        for (attempt, v) in [(0u32, 100u64), (1, 200), (2, 400), (3, 800), (4, 1_000)] {
            for salt in 0..50 {
                let d = p.delay_ms(attempt, salt);
                assert!(
                    (v / 2..=v).contains(&d),
                    "attempt {attempt} salt {salt}: {d} outside [{}..={v}]",
                    v / 2
                );
            }
        }
        // Far past the cap the delay never exceeds it.
        assert!(p.delay_ms(60, 7) <= 1_000);
    }

    #[test]
    fn deterministic_and_spread() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(3, 42), p.delay_ms(3, 42));
        let distinct: std::collections::HashSet<u64> = (0..200).map(|s| p.delay_ms(5, s)).collect();
        assert!(
            distinct.len() > 50,
            "only {} distinct delays",
            distinct.len()
        );
    }

    #[test]
    fn degenerate_policies_still_progress() {
        let p = BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
        };
        let d = p.delay_ms(0, 9);
        assert!(d <= 1, "zero policy should clamp to at most 1ms, got {d}");
    }
}
