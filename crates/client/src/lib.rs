//! # logdiver-push
//!
//! Resilient push client for `logdiver-serve`. The daemon's wire contract
//! (see `crates/serve/src/proto.rs`) is deliberately minimal — newline-framed
//! verbs, indexed idempotent `PUSH`es, and a `HELLO` handshake that reports
//! the server's per-source cursors — so the hard part of exactly-once
//! delivery lives here, on the client side:
//!
//! * **Bounded exponential backoff** with splitmix64 jitter
//!   ([`BackoffPolicy`]): retries are deterministic under a seed, capped,
//!   and de-synchronised so a fleet of clients does not stampede a
//!   recovering daemon.
//! * **Cursor replay** ([`Session`]): after any reconnect the client
//!   re-`HELLO`s, adopts the server's `accepted=` cursors, and resumes from
//!   there. Lines the server already accepted answer `OK dup` and are never
//!   double-counted, so delivery is exactly-once across crashes of either
//!   side.
//! * **Retry-hint obedience**: `ERR code=overload retry-ms=N` and
//!   `ERR code=draining retry-ms=N` responses are honoured by sleeping the
//!   hinted interval and resending — shedding is flow control, not failure.
//! * **Machine-readable outcome** ([`DeliverySummary`]): one JSON object
//!   per run stating exactly what was delivered, retried, shed, and healed.
//!
//! The state machine in [`Session`] is pure (no sockets, no clocks): a
//! driver asks for the next [`Action`], performs it against the real world,
//! and reports what happened. The blocking TCP driver lives in [`net`];
//! tests drive the same machine through in-memory and chaos-injected wires.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod backoff;
pub mod net;
pub mod session;
pub mod summary;

pub use backoff::BackoffPolicy;
pub use net::{deliver, NetConfig};
pub use session::{Action, PushPlan, Session, SessionConfig, SOURCES};
pub use summary::DeliverySummary;
