//! `logdiver-push` — resilient delivery of a log directory to
//! `logdiver-serve`.
//!
//! Reads the five canonical Blue Waters log files from `--logs DIR`
//! (missing files are treated as empty), pushes every line under
//! `--tenant` with indexed exactly-once semantics, and prints a delivery
//! summary. Exit status: 0 when every line landed, 1 when delivery was
//! incomplete, 2 on usage errors.

use logdiver_push::{deliver, NetConfig, PushPlan, Session, SessionConfig};

const USAGE: &str = "\
logdiver-push — resilient push client for logdiver-serve

USAGE:
    logdiver-push --addr HOST:PORT --tenant NAME --logs DIR [OPTIONS]

OPTIONS:
    --addr HOST:PORT        daemon address (required)
    --tenant NAME           tenant to push under (required)
    --logs DIR              directory holding messages.log / hwerr.log /
                            apsys.log / torque.log / netwatch.log;
                            missing files count as empty (required)
    --timeout-ms N          per-op socket timeout, 0 disables [default: 5000]
    --max-wall-ms N         overall wall-clock budget, 0 disables [default: 0]
    --backoff-base-ms N     first retry delay [default: 50]
    --backoff-cap-ms N      retry delay ceiling [default: 10000]
    --max-attempts N        consecutive failures tolerated [default: 8]
    --seed N                jitter seed (vary per client) [default: 0]
    --json                  print the summary as JSON instead of prose
    --help                  show this help

EXIT STATUS:
    0  every line delivered (new or duplicate)
    1  delivery incomplete (see the summary's error / dead_sources)
    2  usage error
";

/// Log file per source, in `SOURCES` order.
const LOG_FILES: [&str; 5] = [
    "messages.log",
    "hwerr.log",
    "apsys.log",
    "torque.log",
    "netwatch.log",
];

#[derive(Debug)]
struct Cli {
    net: NetConfig,
    session: SessionConfig,
    tenant: String,
    logs: String,
    json: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut net = NetConfig::default();
    let mut session = SessionConfig::default();
    let mut addr = None;
    let mut tenant = None;
    let mut logs = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        if flag == "--json" {
            json = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} requires a value"))?;
        let num = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("{flag} wants a number, got {value:?}"))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value.clone()),
            "--tenant" => tenant = Some(value.clone()),
            "--logs" => logs = Some(value.clone()),
            "--timeout-ms" => net.timeout_ms = num()?,
            "--max-wall-ms" => net.max_wall_ms = num()?,
            "--backoff-base-ms" => session.backoff.base_ms = num()?,
            "--backoff-cap-ms" => session.backoff.cap_ms = num()?,
            "--max-attempts" => session.max_attempts = num()? as u32,
            "--seed" => session.seed = num()?,
            _ => return Err(format!("unknown flag {flag}")),
        }
    }

    net.addr = addr.ok_or("--addr is required")?;
    let tenant = tenant.ok_or("--tenant is required")?;
    let logs = logs.ok_or("--logs is required")?;
    Ok(Some(Cli {
        net,
        session,
        tenant,
        logs,
        json,
    }))
}

/// Read the five log files from `dir`; missing files are empty, unreadable
/// ones are an error.
fn load_plan(tenant: &str, dir: &str) -> Result<PushPlan, String> {
    let mut lines: [Vec<String>; 5] = Default::default();
    for (i, file) in LOG_FILES.iter().enumerate() {
        let path = std::path::Path::new(dir).join(file);
        match std::fs::read_to_string(&path) {
            Ok(text) => lines[i] = text.lines().map(|l| l.to_string()).collect(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!(
                    "logdiver-push: {} missing, treating as empty",
                    path.display()
                );
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    }
    Ok(PushPlan {
        tenant: tenant.to_string(),
        lines,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            println!("{USAGE}");
            return;
        }
        Err(e) => {
            eprintln!("logdiver-push: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let plan = match load_plan(&cli.tenant, &cli.logs) {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("logdiver-push: {e}");
            std::process::exit(2);
        }
    };

    let summary = deliver(Session::new(plan, cli.session), &cli.net);
    if cli.json {
        match serde_json::to_string_pretty(&summary) {
            Ok(json) => println!("{json}"),
            Err(e) => eprintln!("logdiver-push: summary serialisation failed: {e}"),
        }
    } else {
        println!(
            "logdiver-push: tenant={} pushed={} dups={} retries={} reconnects={} \
             shed={}+{} gaps={} rejected={} wall_ms={} complete={}",
            summary.tenant,
            summary.pushed,
            summary.dups,
            summary.retries,
            summary.reconnects,
            summary.shed_overload,
            summary.shed_draining,
            summary.gaps_healed,
            summary.rejected,
            summary.wall_ms,
            summary.complete,
        );
        if let Some(err) = &summary.error {
            eprintln!("logdiver-push: {err}");
        }
        for dead in &summary.dead_sources {
            eprintln!("logdiver-push: source {dead} abandoned (rejected line)");
        }
    }
    if !summary.complete {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_push::SOURCES;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_required_and_optional_flags() {
        let cli = parse_args(&argv(
            "--addr 127.0.0.1:9 --tenant bw --logs /tmp/x --timeout-ms 100 \
             --max-wall-ms 2000 --backoff-base-ms 10 --backoff-cap-ms 99 \
             --max-attempts 3 --seed 7 --json",
        ))
        .unwrap()
        .unwrap();
        assert_eq!(cli.net.addr, "127.0.0.1:9");
        assert_eq!(cli.net.timeout_ms, 100);
        assert_eq!(cli.net.max_wall_ms, 2000);
        assert_eq!(cli.session.backoff.base_ms, 10);
        assert_eq!(cli.session.backoff.cap_ms, 99);
        assert_eq!(cli.session.max_attempts, 3);
        assert_eq!(cli.session.seed, 7);
        assert_eq!(cli.tenant, "bw");
        assert_eq!(cli.logs, "/tmp/x");
        assert!(cli.json);
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(parse_args(&argv("--tenant bw --logs /x")).is_err());
        assert!(parse_args(&argv("--addr a:1 --logs /x")).is_err());
        assert!(parse_args(&argv("--addr a:1 --tenant bw")).is_err());
        assert!(parse_args(&argv("--addr a:1 --tenant bw --logs /x --bogus 1")).is_err());
        assert!(parse_args(&argv("--addr")).is_err());
        assert!(parse_args(&argv("--timeout-ms abc --addr a:1 --tenant t --logs /x")).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(parse_args(&argv("--help")).unwrap().is_none());
        assert!(parse_args(&argv("--addr a:1 -h")).unwrap().is_none());
    }

    #[test]
    fn load_plan_treats_missing_files_as_empty() {
        let dir = std::env::temp_dir().join("logdiver-push-test-plan");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("messages.log"), "a\nb\n").unwrap();
        std::fs::write(dir.join("torque.log"), "t0\n").unwrap();
        let plan = load_plan("bw", dir.to_str().unwrap()).unwrap();
        assert_eq!(plan.lines[0], vec!["a".to_string(), "b".to_string()]);
        assert!(plan.lines[1].is_empty());
        assert!(plan.lines[2].is_empty());
        assert_eq!(plan.lines[3], vec!["t0".to_string()]);
        assert_eq!(plan.total_lines(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn log_files_match_source_order() {
        assert_eq!(SOURCES.len(), LOG_FILES.len());
        assert_eq!(SOURCES[0], "syslog");
        assert_eq!(LOG_FILES[0], "messages.log");
        assert_eq!(SOURCES[2], "alps");
        assert_eq!(LOG_FILES[2], "apsys.log");
    }
}
