//! T4 — Error-detection coverage, XE vs XK (lesson iii: hybrid nodes lack
//! adequate detection, so their failures are disproportionately
//! unexplained).

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("T4", "detection coverage XE vs XK");
    let s = scenario();
    println!("{}", report::detection_table(&s.analysis.metrics));
    println!();
    println!("note: node-scoped GPU faults are rare per node-hour; on scaled\nmachines run the ablation bench (ablation_detection) for a dense\nmeasurement of the same mechanism.");
}
