//! P3 — multi-tenant serve-core throughput: a load generator driving
//! 10 → 500 concurrent tenants through `ServeCore`'s protocol path with
//! bursty arrivals and a mid-run daemon crash, recording lines/sec, p99
//! push latency, crash-recovery time (resume every tenant from its
//! checkpoint), and the saturation knee of the tenant sweep.
//!
//! Writes `BENCH_serve.json` for tracking (the CI `serve-smoke` job
//! uploads it as an artifact).

use std::time::Instant;

use bw_bench::banner;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver_serve::{BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::{Source, StreamConfig};
use logdiver_types::SimDuration;
use serde::Serialize;

/// Roughly how many pushes each sweep point spends, split across its
/// tenants — keeps every point comparable in total work.
const PUSH_BUDGET: usize = 240_000;

/// Burst sizes cycled per delivery round: clients arrive in clumps, not
/// a smooth drip.
const BURSTS: [usize; 4] = [1, 8, 64, 256];

#[derive(Serialize)]
struct SweepPoint {
    tenants: usize,
    pushes: usize,
    lines_per_sec: f64,
    p99_push_us: f64,
    recovery_secs: f64,
    resumed_tenants: usize,
}

#[derive(Serialize)]
struct ServeBench {
    bench: String,
    push_budget: usize,
    bursts: Vec<usize>,
    sweep: Vec<SweepPoint>,
    peak_lines_per_sec: f64,
    /// First tenant count from which throughput *stays* below 80% of the
    /// peak for the rest of the sweep (null when it never saturates) —
    /// "stays" so a single noisy dip is not mistaken for the knee.
    saturation_knee_tenants: Option<usize>,
}

/// One shared per-tenant line set: protocol command *suffixes*
/// (`<source> <index> <line>`), round-robin across sources so every
/// tenant exercises all five engines.
fn command_suffixes() -> Vec<String> {
    let mut config = SimConfig::scaled(64, 1)
        .with_seed(1201)
        .without_calibration();
    config.noise_lines_per_hour = 600.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let sources: [(Source, &Vec<String>); 5] = [
        (Source::Syslog, &raw.syslog),
        (Source::HwErr, &raw.hwerr),
        (Source::Alps, &raw.alps),
        (Source::Torque, &raw.torque),
        (Source::Netwatch, &raw.netwatch),
    ];
    let mut suffixes = Vec::new();
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            if let Some(line) = lines.get(offsets[i]) {
                suffixes.push(format!("{} {} {line}", source.name(), offsets[i]));
                offsets[i] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    suffixes
}

fn serve_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        tenants_dirs: vec![dir.to_path_buf()],
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 4,
        checkpoint_every: 0,
        stream: StreamConfig::default().with_lateness(SimDuration::from_secs(3_600)),
        ..ServeConfig::default()
    }
}

/// Pushes `commands[lo..hi]` for every tenant in bursty rounds, timing
/// each protocol call. Returns (elapsed secs, per-push latencies in ns).
fn drive(core: &mut ServeCore, commands: &[Vec<String>], lo: usize, hi: usize) -> (f64, Vec<u64>) {
    let mut latencies = Vec::with_capacity(commands.len() * (hi - lo));
    let mut errors = 0usize;
    let start = Instant::now();
    let mut cursor = lo;
    let mut burst_idx = 0;
    while cursor < hi {
        let burst = BURSTS[burst_idx % BURSTS.len()];
        burst_idx += 1;
        let end = (cursor + burst).min(hi);
        for tenant_cmds in commands {
            for command in &tenant_cmds[cursor..end] {
                let t0 = Instant::now();
                let resp = core.handle_line(command);
                latencies.push(t0.elapsed().as_nanos() as u64);
                if !resp.starts_with("OK") {
                    errors += 1;
                }
            }
        }
        cursor = end;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(errors, 0, "load generator saw rejected pushes");
    (secs, latencies)
}

fn p99_us(latencies: &mut [u64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let idx = (latencies.len() as f64 * 0.99) as usize;
    latencies[idx.min(latencies.len() - 1)] as f64 / 1_000.0
}

fn main() {
    banner(
        "P3",
        "multi-tenant serve-core throughput (10 -> 500 tenants)",
    );
    let suffixes = command_suffixes();
    println!(
        "corpus           : {} lines per tenant (max)",
        suffixes.len()
    );

    let dir = std::env::temp_dir().join("logdiver-perf-serve");
    let mut sweep = Vec::new();
    for tenants in [10usize, 50, 100, 250, 500] {
        let per_tenant = (PUSH_BUDGET / tenants).clamp(64, suffixes.len());
        let commands: Vec<Vec<String>> = (0..tenants)
            .map(|t| {
                suffixes[..per_tenant]
                    .iter()
                    .map(|s| format!("PUSH t{t:03} {s}"))
                    .collect()
            })
            .collect();
        let pushes = tenants * per_tenant;

        let _ = std::fs::remove_dir_all(&dir);
        let mut core = ServeCore::new(serve_config(&dir)).expect("serve core");

        // First half, then a hard crash: checkpoint, drop the core on the
        // floor, and time how long a cold start takes to resume the fleet.
        let half = per_tenant / 2;
        let (secs_a, mut lat_a) = drive(&mut core, &commands, 0, half);
        let persisted = core.checkpoint_all();
        assert_eq!(persisted, tenants, "every tenant must checkpoint");
        drop(core);
        let t0 = Instant::now();
        let mut core = ServeCore::new(serve_config(&dir)).expect("resume");
        let recovery = t0.elapsed().as_secs_f64();
        let resumed = core.tenant_names().len();
        assert_eq!(resumed, tenants, "every tenant must resume");

        // Second half against the resumed fleet, then drain the queues.
        let (secs_b, lat_b) = drive(&mut core, &commands, half, per_tenant);
        let t0 = Instant::now();
        core.pump();
        let pump_secs = t0.elapsed().as_secs_f64();

        lat_a.extend(lat_b);
        let secs = secs_a + secs_b + pump_secs;
        let rate = pushes as f64 / secs;
        let p99 = p99_us(&mut lat_a);
        println!(
            "{tenants:>4} tenants     : {rate:>10.0} lines/s  p99 {p99:>7.1} us  \
             recovery {:>6.1} ms ({resumed} resumed)",
            recovery * 1_000.0
        );
        sweep.push(SweepPoint {
            tenants,
            pushes,
            lines_per_sec: rate,
            p99_push_us: p99,
            recovery_secs: recovery,
            resumed_tenants: resumed,
        });
    }
    let _ = std::fs::remove_dir_all(&dir);

    let peak = sweep.iter().map(|p| p.lines_per_sec).fold(0.0f64, f64::max);
    let knee = (0..sweep.len())
        .find(|&i| sweep[i..].iter().all(|p| p.lines_per_sec < 0.8 * peak))
        .map(|i| sweep[i].tenants);
    match knee {
        Some(t) => println!("saturation knee  : {t} tenants (< 80% of peak)"),
        None => println!("saturation knee  : not reached in this sweep"),
    }

    let out = ServeBench {
        bench: "perf_serve".to_string(),
        push_budget: PUSH_BUDGET,
        bursts: BURSTS.to_vec(),
        sweep,
        peak_lines_per_sec: peak,
        saturation_knee_tenants: knee,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_serve.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
