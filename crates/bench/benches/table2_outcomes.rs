//! T2 — Application outcome breakdown. Anchors: 1.53 % of runs system-
//! failed; failed runs consume ~9 % of node-hours.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("T2", "application outcome breakdown");
    let s = scenario();
    println!("{}", report::outcome_table(&s.analysis.metrics));
    println!();
    println!(
        "paper anchors: 1.53% of runs; ~9% of node-hours → measured {:.3}% / {:.2}%",
        s.analysis.metrics.system_failure_fraction * 100.0,
        s.analysis.metrics.failed_node_hours_fraction * 100.0,
    );
    println!("(node-hour share analysis: see EXPERIMENTS.md — the count\n share matches; the hour share lands in the same regime)");

    // The job-level view: a job fails if any of its runs does.
    let jobs = logdiver::jobs::analyze_jobs(&s.analysis.runs);
    println!(
        "\njob-level view: {} jobs, {:.2} apps/job; system-failure fraction {:.3}% per job vs {:.3}% per run",
        jobs.jobs,
        jobs.apps_per_job,
        jobs.job_system_failure_fraction * 100.0,
        jobs.app_system_failure_fraction * 100.0,
    );
}
