//! A4 — Coalescing-window sensitivity: how the tupling gap changes event
//! counts and the verdicts downstream.
//!
//! Too small a gap shatters one incident into many events (inflating event
//! counts and weakening attribution); too large a gap welds unrelated
//! incidents together (misattributing causes). This ablation reruns the
//! *same logs* through LogDiver with different gaps and reports event
//! counts plus the stability of the headline metric.

use bw_bench::scenario;
use logdiver::{LogCollection, LogDiver, LogDiverConfig};
use logdiver_types::SimDuration;

fn main() {
    // Reuse the standard scenario's raw logs by re-simulating them (the
    // scenario keeps only the analysis; logs are cheap to regenerate).
    let s = scenario();
    let config = s.config.clone();
    let mut raw = bw_sim::MemoryOutput::new();
    bw_sim::Simulation::new(config)
        .expect("valid")
        .run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;

    println!("A4 — coalescing-gap sensitivity (same raw logs)");
    println!(
        "{:>8}  {:>8}  {:>8}  {:>10}  {:>12}",
        "gap s", "events", "lethal", "coalesce ×", "sys-fail %"
    );
    for gap_secs in [15i64, 60, 300, 900, 3_600] {
        let cfg = LogDiverConfig {
            coalesce_gap: SimDuration::from_secs(gap_secs),
            ..LogDiverConfig::default()
        };
        let analysis = LogDiver::new().with_config(cfg).analyze(&logs);
        println!(
            "{:>8}  {:>8}  {:>8}  {:>10.1}  {:>11.3}%",
            gap_secs,
            analysis.stats.events,
            analysis.stats.lethal_events,
            analysis.stats.coalescing_ratio(),
            analysis.metrics.system_failure_fraction * 100.0,
        );
    }
    println!("\n(the verdict metric should be flat across reasonable gaps —\n attribution must not hinge on the tupling constant)");
}
