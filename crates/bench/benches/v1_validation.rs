//! V1 — Tool validation: LogDiver's verdicts vs simulator ground truth
//! (our stand-in for the paper's manual cross-validation).

use std::collections::HashMap;

use bw_bench::{banner, scenario};

fn main() {
    banner("V1", "attribution validation against ground truth");
    let s = scenario();
    let truth_by_apid: HashMap<u64, _> = s.truths.iter().map(|t| (t.apid.value(), t)).collect();
    let (mut tp, mut fp, mut fnc, mut tn) = (0u64, 0u64, 0u64, 0u64);
    for run in &s.analysis.runs {
        let Some(truth) = truth_by_apid.get(&run.run.apid.value()) else {
            continue;
        };
        match (truth.outcome.is_system(), run.class.is_system_failure()) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fnc += 1,
            (false, false) => tn += 1,
        }
    }
    println!("true positives : {tp}");
    println!("false positives: {fp}");
    println!("false negatives: {fnc}");
    println!("true negatives : {tn}");
    println!(
        "precision      : {:.3}",
        tp as f64 / (tp + fp).max(1) as f64
    );
    println!(
        "recall         : {:.3}",
        tp as f64 / (tp + fnc).max(1) as f64
    );
}
