//! F5 — Workload characterization: CDFs of application sizes and durations
//! per node class.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("F5", "workload CDFs");
    let s = scenario();
    println!("{}", report::workload_summary(&s.analysis.metrics));
    for (ty, points) in &s.analysis.metrics.size_cdf {
        println!("\n{ty} size CDF points (nodes, F):");
        for (x, f) in points.iter().take(30) {
            println!("  {x:>9.0}  {f:.4}");
        }
    }
    for (ty, points) in &s.analysis.metrics.duration_cdf {
        println!("\n{ty} duration CDF points (hours, F):");
        for (x, f) in points.iter().take(30) {
            println!("  {x:>9.3}  {f:.4}");
        }
    }
}
