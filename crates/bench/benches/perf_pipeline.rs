//! Criterion performance benches of LogDiver's pipeline stages.
//!
//! These measure the *tool* (parse / filter / coalesce / end-to-end
//! analyze) on a fixed synthetic corpus — the throughput story that makes a
//! 5 M-run field study tractable on one machine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::coalesce::coalesce;
use logdiver::filter::{filter_logs, PatternTable};
use logdiver::parse::parse_collection;
use logdiver::{LogCollection, LogDiver};
use logdiver_types::SimDuration;

fn corpus() -> LogCollection {
    let config = SimConfig::scaled(48, 5).with_seed(77).without_calibration();
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    logs
}

fn bench_pipeline(c: &mut Criterion) {
    let logs = corpus();
    let total_lines = logs.total_lines() as u64;
    let parsed = parse_collection(&logs);
    let (entries, _) = filter_logs(&parsed, &PatternTable::curated());

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(total_lines));
    group.bench_function("parse", |b| {
        b.iter(|| black_box(parse_collection(black_box(&logs))))
    });
    group.throughput(Throughput::Elements(parsed.syslog.len() as u64));
    group.bench_function("filter", |b| {
        let table = PatternTable::curated();
        b.iter(|| black_box(filter_logs(black_box(&parsed), &table)))
    });
    group.throughput(Throughput::Elements(entries.len().max(1) as u64));
    group.bench_function("coalesce", |b| {
        b.iter(|| black_box(coalesce(black_box(&entries), SimDuration::from_secs(300))))
    });
    group.throughput(Throughput::Elements(total_lines));
    group.bench_function("analyze_end_to_end", |b| {
        let tool = LogDiver::new();
        b.iter(|| black_box(tool.analyze(black_box(&logs))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
