//! P1 — parallel batch-pipeline throughput: end-to-end `analyze` at 1 vs
//! 2/4/8 worker threads on a fixed synthetic corpus, with the per-stage
//! timing breakdown and peak RSS — the throughput story that makes a
//! 5 M-run field study tractable on one machine.
//!
//! Writes `BENCH_pipeline.json` for tracking. With `PIPELINE_BASELINE`
//! set to a committed copy of that file, exits nonzero if any thread
//! point drops below 0.8x the baseline lines/sec — the CI perf smoke
//! gate.

use std::time::Instant;

use bw_bench::banner;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{Analysis, LogCollection, LogDiver, StageTimings};
use serde::Serialize;

#[derive(Serialize)]
struct ThreadPoint {
    threads: usize,
    lines_per_sec: f64,
    speedup_vs_serial: f64,
    stage_secs: StageTimings,
    peak_rss_kb: u64,
}

#[derive(Serialize)]
struct PipelineBench {
    bench: String,
    total_lines: usize,
    reps: usize,
    /// Cores the host actually offers; speedup saturates here. A ~1.0x
    /// curve on a 1-core host is the hardware ceiling, not a pipeline bug.
    host_cpus: usize,
    /// Parse-stage throughput at the best point — what the zero-copy
    /// parser rewrite is measured by (CI gates it via
    /// `PARSE_THROUGHPUT_FLOOR`).
    parse_lines_per_sec: f64,
    points: Vec<ThreadPoint>,
}

fn corpus() -> LogCollection {
    // Heavy syslog chatter so parsing + filtering dominate — the stages the
    // worker pool fans out — with enough runs for classify to matter too.
    let mut config = SimConfig::scaled(48, 5).with_seed(77).without_calibration();
    config.noise_lines_per_hour = 3_600.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    logs
}

/// Peak resident set size of this process so far, in kB (`VmHWM`).
/// Monotone over the process lifetime, so later points include earlier
/// ones; 0 where `/proc` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// The parallel pipeline's whole contract: any thread count, same answer.
fn assert_identical(parallel: &Analysis, serial: &Analysis, threads: usize) {
    assert_eq!(parallel.runs, serial.runs, "{threads}-thread runs differ");
    assert_eq!(
        parallel.events, serial.events,
        "{threads}-thread events differ"
    );
    assert_eq!(
        parallel.metrics, serial.metrics,
        "{threads}-thread metrics differ"
    );
    assert_eq!(
        parallel.stats, serial.stats,
        "{threads}-thread stats differ"
    );
}

/// Best-of-`REPS` analyze at the given thread count. Returns the rate,
/// the best rep's stage breakdown, and the last analysis for identity
/// checking.
fn measure(logs: &LogCollection, threads: usize, reps: usize) -> (f64, StageTimings, Analysis) {
    let tool = LogDiver::new().with_threads(threads);
    let total = logs.total_lines() as f64;
    let mut best_rate = 0.0f64;
    let mut best_timings = StageTimings::default();
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (analysis, timings) = tool.analyze_timed(logs);
        let rate = total / start.elapsed().as_secs_f64();
        if rate > best_rate {
            best_rate = rate;
            best_timings = timings;
        }
        last = Some(analysis);
    }
    (best_rate, best_timings, last.expect("reps >= 1"))
}

/// Applies the `PIPELINE_BASELINE` regression gate; returns false on
/// regression below 0.8x the committed rate. Takes the baseline *text*,
/// snapshotted before the run overwrites `BENCH_pipeline.json` — the
/// baseline and the output are usually the same committed file.
fn baseline_gate(points: &[ThreadPoint], path: &str, text: &str) -> bool {
    let value = match serde_json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return false;
        }
    };
    let baseline_points = value
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "points"))
        .and_then(|(_, v)| v.as_array());
    let Some(baseline_points) = baseline_points else {
        eprintln!("baseline {path} has no points array");
        return false;
    };
    let mut ok = true;
    for bp in baseline_points {
        let Some(obj) = bp.as_object() else { continue };
        let field = |name: &str| {
            obj.iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.as_f64())
        };
        let (Some(threads), Some(base_rate)) = (field("threads"), field("lines_per_sec")) else {
            continue;
        };
        let Some(point) = points.iter().find(|p| p.threads as f64 == threads) else {
            continue;
        };
        let floor = 0.8 * base_rate;
        if point.lines_per_sec < floor {
            eprintln!(
                "REGRESSION: {threads} threads at {:.0} lines/s, below 0.8x baseline ({floor:.0})",
                point.lines_per_sec
            );
            ok = false;
        }
    }
    ok
}

fn main() {
    banner(
        "P1",
        "parallel batch-pipeline throughput (1 vs 2/4/8 threads)",
    );
    // Snapshot the baseline before the run overwrites the output file.
    let baseline = std::env::var("PIPELINE_BASELINE").ok().map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, text)
    });

    let logs = corpus();
    let total = logs.total_lines();
    let host_cpus = logdiver::exec::default_threads();
    println!("corpus           : {total} lines");
    println!("host cpus        : {host_cpus}");
    if host_cpus < 4 {
        println!("note             : speedup is capped by host parallelism");
    }

    const REPS: usize = 3;
    let (serial_rate, serial_timings, serial) = measure(&logs, 1, REPS);
    println!(
        "serial analyze   : {serial_rate:>10.0} lines/s  \
         (parse {:.2}s, filter {:.2}s, classify {:.2}s of {:.2}s total)",
        serial_timings.parse_secs,
        serial_timings.filter_secs,
        serial_timings.classify_secs,
        serial_timings.total_secs,
    );
    let mut points = vec![ThreadPoint {
        threads: 1,
        lines_per_sec: serial_rate,
        speedup_vs_serial: 1.0,
        stage_secs: serial_timings,
        peak_rss_kb: peak_rss_kb(),
    }];

    for threads in [2usize, 4, 8] {
        let (rate, timings, analysis) = measure(&logs, threads, REPS);
        assert_identical(&analysis, &serial, threads);
        let speedup = rate / serial_rate;
        println!("{threads} threads        : {rate:>10.0} lines/s  ({speedup:.2}x serial)");
        points.push(ThreadPoint {
            threads,
            lines_per_sec: rate,
            speedup_vs_serial: speedup,
            stage_secs: timings,
            peak_rss_kb: peak_rss_kb(),
        });
    }

    // Parse-stage throughput over the best point: the number the
    // zero-copy parser rewrite is accountable for, independent of the
    // filter/classify stages sharing the wall clock.
    let best_parse_secs = points
        .iter()
        .map(|p| p.stage_secs.parse_secs)
        .fold(f64::INFINITY, f64::min);
    let parse_lines_per_sec = total as f64 / best_parse_secs;
    println!("parse stage      : {parse_lines_per_sec:>10.0} lines/s (best point)");
    if let Ok(floor) = std::env::var("PARSE_THROUGHPUT_FLOOR") {
        let floor: f64 = floor
            .parse()
            .expect("PARSE_THROUGHPUT_FLOOR must be lines/s");
        if parse_lines_per_sec >= floor {
            println!("parse gate       : ok (>= {floor:.0} lines/s)");
        } else if host_cpus <= 1 {
            // 1-core containers time-share the measurement with the OS;
            // report but do not fail there.
            eprintln!(
                "parse gate       : WARNING {parse_lines_per_sec:.0} lines/s is below \
                 {floor:.0}, but host has 1 cpu — not failing"
            );
        } else {
            eprintln!("parse gate       : FAILED {parse_lines_per_sec:.0} < {floor:.0} lines/s");
            std::process::exit(1);
        }
    }

    let out = PipelineBench {
        bench: "perf_pipeline".to_string(),
        total_lines: total,
        reps: REPS,
        host_cpus,
        parse_lines_per_sec,
        points,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_pipeline.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }

    if let Some((path, baseline_text)) = baseline {
        if baseline_gate(&out.points, &path, &baseline_text) {
            println!("baseline gate    : ok (>= 0.8x {path})");
        } else {
            eprintln!("baseline gate    : FAILED vs {path}");
            std::process::exit(1);
        }
    }
}
