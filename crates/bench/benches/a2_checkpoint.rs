//! A2 — Checkpoint economics: what the measured MTTI (F3) implies for
//! optimal checkpoint intervals and resilience overhead at each scale —
//! the operational consequence of lessons (i) and (ii).

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("A2", "checkpoint economics from measured MTTI");
    let s = scenario();
    // A full-scale dump to Lustre: ~10 minutes; restart: ~15 minutes.
    println!(
        "{}",
        report::checkpoint_table(&s.analysis.metrics, 10.0 / 60.0, 15.0 / 60.0)
    );
    println!();
    // Sensitivity: a lighter incremental checkpoint.
    println!(
        "{}",
        report::checkpoint_table(&s.analysis.metrics, 2.0 / 60.0, 15.0 / 60.0)
    );
}
