//! P2 — streaming-engine throughput: lines/sec through `StreamEngine`
//! with 1 vs N syslog parse workers, against the batch pipeline baseline,
//! plus the cost of crash-safety (periodic quiescent checkpoints written
//! atomically to disk, as `stream --checkpoint` does).
//!
//! Writes `BENCH_stream.json` (shard sweep + baseline + checkpoint
//! overhead) for tracking.

use std::time::Instant;

use bw_bench::banner;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{LogCollection, LogDiver};
use logdiver_stream::{Source, StreamConfig, StreamEngine};
use logdiver_types::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct ShardPoint {
    syslog_shards: usize,
    lines_per_sec: f64,
    vs_batch: f64,
}

#[derive(Serialize)]
struct CheckpointPoint {
    every_lines: u64,
    checkpoints_written: u64,
    lines_per_sec: f64,
    overhead_vs_no_ckpt: f64,
}

#[derive(Serialize)]
struct StreamBench {
    bench: String,
    total_lines: usize,
    reps: usize,
    batch_lines_per_sec: f64,
    stream: Vec<ShardPoint>,
    checkpoint: Vec<CheckpointPoint>,
}

fn corpus() -> LogCollection {
    // Heavy syslog chatter: parsing + pattern-table filtering must dominate,
    // since that is the work the syslog shards parallelize.
    let mut config = SimConfig::scaled(48, 4).with_seed(77).without_calibration();
    config.noise_lines_per_hour = 3_600.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    logs
}

/// Streams the whole corpus in round-robin 1024-line chunks and drains.
/// With `ckpt = Some((path, every))`, takes a quiescent checkpoint and
/// writes it atomically each time `every` more lines have been pushed —
/// the crash-safety cost `stream --checkpoint` pays. Returns the rate and
/// how many checkpoints were written.
fn stream_once(logs: &LogCollection, shards: usize, ckpt: Option<(&str, u64)>) -> (f64, u64) {
    let config = StreamConfig::default()
        .with_lateness(SimDuration::from_secs(3_600))
        .with_syslog_shards(shards);
    let mut engine = StreamEngine::new(config);
    let sources = [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ];
    let start = Instant::now();
    let mut offsets = [0usize; 5];
    let mut since_ckpt = 0u64;
    let mut written = 0u64;
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            let lo = offsets[i];
            let hi = (lo + 1024).min(lines.len());
            if lo < hi {
                engine
                    .push_batch(*source, lines[lo..hi].iter().cloned())
                    .unwrap();
                offsets[i] = hi;
                since_ckpt += (hi - lo) as u64;
                moved = true;
            }
        }
        if let Some((path, every)) = ckpt {
            if since_ckpt >= every {
                engine
                    .checkpoint([0; 5])
                    .write_atomic(std::path::Path::new(path))
                    .expect("checkpoint write");
                since_ckpt = 0;
                written += 1;
            }
        }
        if !moved {
            break;
        }
    }
    let analysis = engine.drain();
    let secs = start.elapsed().as_secs_f64();
    assert!(!analysis.runs.is_empty(), "bench corpus must produce runs");
    (logs.total_lines() as f64 / secs, written)
}

fn main() {
    banner("P2", "streaming-engine throughput (1 vs N parse workers)");
    let logs = corpus();
    let total = logs.total_lines();
    println!("corpus           : {total} lines");

    let batch_rate = {
        let tool = LogDiver::new();
        let start = Instant::now();
        let analysis = tool.analyze(&logs);
        let secs = start.elapsed().as_secs_f64();
        assert!(!analysis.runs.is_empty());
        total as f64 / secs
    };
    println!("batch analyze    : {batch_rate:>10.0} lines/s");

    const REPS: usize = 3;
    let mut sweep = Vec::new();
    for shards in [1usize, 2, 4] {
        let best = (0..REPS)
            .map(|_| stream_once(&logs, shards, None).0)
            .fold(0.0f64, f64::max);
        println!(
            "stream, {shards} shard{s}: {best:>10.0} lines/s ({:.2}x batch)",
            best / batch_rate,
            s = if shards == 1 { " " } else { "s" },
        );
        sweep.push(ShardPoint {
            syslog_shards: shards,
            lines_per_sec: best,
            vs_batch: best / batch_rate,
        });
    }

    // Checkpoint overhead: the 2-shard run again, now paying a quiescent
    // snapshot + atomic file write every N lines.
    let no_ckpt = sweep[1].lines_per_sec;
    let ckpt_dir = std::env::temp_dir().join("logdiver-perf-ckpt");
    std::fs::create_dir_all(&ckpt_dir).expect("temp dir");
    let ckpt_path = ckpt_dir.join("bench.ckpt");
    let ckpt_path = ckpt_path.to_str().expect("utf-8 temp path");
    let mut ckpt_sweep = Vec::new();
    for every in [50_000u64, 10_000] {
        let (best, written) = (0..REPS)
            .map(|_| stream_once(&logs, 2, Some((ckpt_path, every))))
            .fold((0.0f64, 0u64), |acc, r| (acc.0.max(r.0), acc.1.max(r.1)));
        let overhead = 1.0 - best / no_ckpt;
        println!(
            "ckpt every {every:>6}: {best:>10.0} lines/s ({written} checkpoints, \
             {:+.1}% overhead)",
            overhead * 100.0
        );
        ckpt_sweep.push(CheckpointPoint {
            every_lines: every,
            checkpoints_written: written,
            lines_per_sec: best,
            overhead_vs_no_ckpt: overhead,
        });
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);

    let out = StreamBench {
        bench: "perf_stream".to_string(),
        total_lines: total,
        reps: REPS,
        batch_lines_per_sec: batch_rate,
        stream: sweep,
        checkpoint: ckpt_sweep,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_stream.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
