//! P2 — streaming-engine throughput: lines/sec through `StreamEngine`
//! with 1 vs N syslog parse workers, against the batch pipeline baseline.
//!
//! Writes `BENCH_stream.json` (shard sweep + baseline) for tracking.

use std::time::Instant;

use bw_bench::banner;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{LogCollection, LogDiver};
use logdiver_stream::{Source, StreamConfig, StreamEngine};
use logdiver_types::SimDuration;
use serde::Serialize;

#[derive(Serialize)]
struct ShardPoint {
    syslog_shards: usize,
    lines_per_sec: f64,
    vs_batch: f64,
}

#[derive(Serialize)]
struct StreamBench {
    bench: String,
    total_lines: usize,
    reps: usize,
    batch_lines_per_sec: f64,
    stream: Vec<ShardPoint>,
}

fn corpus() -> LogCollection {
    // Heavy syslog chatter: parsing + pattern-table filtering must dominate,
    // since that is the work the syslog shards parallelize.
    let mut config = SimConfig::scaled(48, 4).with_seed(77).without_calibration();
    config.noise_lines_per_hour = 3_600.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    logs
}

/// Streams the whole corpus in round-robin 1024-line chunks and drains.
fn stream_once(logs: &LogCollection, shards: usize) -> f64 {
    let config = StreamConfig::default()
        .with_lateness(SimDuration::from_secs(3_600))
        .with_syslog_shards(shards);
    let mut engine = StreamEngine::new(config);
    let sources = [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ];
    let start = Instant::now();
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            let lo = offsets[i];
            let hi = (lo + 1024).min(lines.len());
            if lo < hi {
                engine
                    .push_batch(*source, lines[lo..hi].iter().cloned())
                    .unwrap();
                offsets[i] = hi;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let analysis = engine.drain();
    let secs = start.elapsed().as_secs_f64();
    assert!(!analysis.runs.is_empty(), "bench corpus must produce runs");
    logs.total_lines() as f64 / secs
}

fn main() {
    banner("P2", "streaming-engine throughput (1 vs N parse workers)");
    let logs = corpus();
    let total = logs.total_lines();
    println!("corpus           : {total} lines");

    let batch_rate = {
        let tool = LogDiver::new();
        let start = Instant::now();
        let analysis = tool.analyze(&logs);
        let secs = start.elapsed().as_secs_f64();
        assert!(!analysis.runs.is_empty());
        total as f64 / secs
    };
    println!("batch analyze    : {batch_rate:>10.0} lines/s");

    const REPS: usize = 3;
    let mut sweep = Vec::new();
    for shards in [1usize, 2, 4] {
        let best = (0..REPS)
            .map(|_| stream_once(&logs, shards))
            .fold(0.0f64, f64::max);
        println!(
            "stream, {shards} shard{s}: {best:>10.0} lines/s ({:.2}x batch)",
            best / batch_rate,
            s = if shards == 1 { " " } else { "s" },
        );
        sweep.push(ShardPoint {
            syslog_shards: shards,
            lines_per_sec: best,
            vs_batch: best / batch_rate,
        });
    }

    let out = StreamBench {
        bench: "perf_stream".to_string(),
        total_lines: total,
        reps: REPS,
        batch_lines_per_sec: batch_rate,
        stream: sweep,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_stream.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
