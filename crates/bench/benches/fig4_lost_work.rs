//! F4 — Lost node-hours by failure cause, plus the distribution of
//! per-incident lost work (the energy-cost view of lesson i).

use bw_bench::{banner, scenario};
use hpc_stats::Ecdf;
use logdiver::report;

fn main() {
    banner("F4", "lost node-hours");
    let s = scenario();
    println!("{}", report::cause_table(&s.analysis.metrics));

    let lost: Vec<f64> = s
        .analysis
        .runs
        .iter()
        .filter(|r| r.class.is_system_failure() && r.run.node_hours() > 0.0)
        .map(|r| r.run.node_hours())
        .collect();
    if let Ok(ecdf) = Ecdf::from_sample(lost) {
        println!("\nper-incident lost node-hours (CDF):");
        println!("  p50  {:>12.1}", ecdf.quantile(0.5));
        println!("  p90  {:>12.1}", ecdf.quantile(0.9));
        println!("  p99  {:>12.1}", ecdf.quantile(0.99));
        println!("  max  {:>12.1}", ecdf.max());
        println!("  n =  {}", ecdf.len());
        println!("\n(x, F(x)) plot points:");
        for (x, f) in ecdf.plot_points(20) {
            println!("  {x:>12.1}  {f:.3}");
        }
    } else {
        println!("\nno system-failed runs with nonzero lost work in this window");
    }
}
