//! F2 — XK (GPU/hybrid) application failure probability vs scale.
//! Anchors: 0.02 at "2,000 nodes" → 0.129 at full scale (≈ 6×).

use bw_bench::{banner, scenario};
use logdiver::report;
use logdiver_types::NodeType;

fn main() {
    banner("F2", "XK failure probability vs scale");
    let s = scenario();
    let curve = s
        .analysis
        .metrics
        .scale_curves
        .iter()
        .find(|c| c.node_type == NodeType::Xk)
        .expect("XK curve");
    println!("{}", report::scale_table(curve));
    let buckets = &curve.buckets;
    if buckets.len() >= 3 {
        let mid = &buckets[buckets.len() - 3];
        let full = &buckets[buckets.len() - 1];
        println!(
            "\nmid-anchor bucket  ({}–{}): P = {:.4} over {} runs (paper: 0.02)",
            mid.lo, mid.hi, mid.probability, mid.runs
        );
        println!(
            "full-scale bucket  ({}–{}): P = {:.4} over {} runs (paper: 0.129)",
            full.lo, full.hi, full.probability, full.runs
        );
        if mid.probability > 0.0 {
            println!(
                "jump: {:.1}× (paper: ≈ 6×)",
                full.probability / mid.probability
            );
        }
    }
    println!("\nCSV:\n{}", report::scale_curve_csv(curve));
}
