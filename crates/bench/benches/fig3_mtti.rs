//! F3 — Mean time to (system) interrupt by application scale: the flip
//! side of F1/F2 — a full-scale application sees an interrupt within hours.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("F3", "MTTI by scale");
    let s = scenario();
    println!("{}", report::mtti_table(&s.analysis.metrics));
}
