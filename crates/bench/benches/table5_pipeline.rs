//! T5 — LogDiver pipeline effectiveness: raw lines → filtered entries →
//! coalesced events.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("T5", "pipeline effectiveness");
    let s = scenario();
    println!("{}", report::pipeline_table(&s.analysis.stats));
}
