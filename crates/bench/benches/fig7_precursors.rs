//! F7 — Failure precursors: how many lethal node failures were preceded by
//! warning events on the same blade, and with how much lead time (the
//! proactive-management budget the paper's detection discussion asks for).
//!
//! Node-scoped faults are per-node-hour processes; this bench runs the
//! boosted mechanism configuration (like the detection ablation) so the
//! precursor channel is densely sampled.

use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};
use logdiver_types::NodeType;

fn main() {
    let mut config = SimConfig::scaled(32, 20)
        .with_seed(77)
        .without_calibration();
    config.faults.ce_floods_per_hour = 2.0;
    config.faults.ce_flood_escalation_prob = 0.25;
    config.faults.gpu_page_retirements_per_hour = 0.8;
    config.faults.gpu_retirement_escalation_prob = 0.35;
    config.faults.xe_node_crash_per_node_hour = 2.0e-4;
    config.faults.xk_node_crash_per_node_hour = 2.0e-4;
    config.faults.gpu_fault_per_node_hour = 1.0e-3;
    for class in &mut config.workload.classes {
        if class.node_type == NodeType::Xk {
            class.jobs_per_hour *= 4.0;
        }
    }
    println!("F7 — precursor analysis (boosted mechanism scenario, 1/32 machine, 20 days)");
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    println!("{}", report::precursor_table(&analysis.metrics));
    let leads = &analysis.metrics.precursors.lead_times_hours;
    if !leads.is_empty() {
        let mut v = leads.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "\nlead-time distribution (hours): p10 {:.2}, p50 {:.2}, p90 {:.2}",
            v[v.len() / 10],
            v[v.len() / 2],
            v[v.len() * 9 / 10]
        );
    }
}
