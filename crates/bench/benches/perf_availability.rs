//! P4 — serve availability under replica failure: the durability study
//! for the replicated checkpoint store. Drives a multi-tenant fleet over
//! a seeded chaos filesystem and measures (a) ingest throughput with
//! 0 / 1 / N−1 of the N checkpoint replicas failed, (b) recovery when a
//! replica's at-rest checkpoints are corrupted mid-run, and (c) crash +
//! resume with one replica dead at restart.
//!
//! Writes `BENCH_availability.json` for tracking (the CI
//! `availability-smoke` job uploads it as an artifact).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bw_bench::banner;
use bw_faults::ChaosFs;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver_serve::{store, BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::{Source, StreamConfig};
use logdiver_types::SimDuration;
use serde::Serialize;

const TENANTS: usize = 24;
const REPLICAS: usize = 3;
/// Auto-checkpoint cadence: small enough that the store sits on the hot
/// ingest path of every sweep point.
const CHECKPOINT_EVERY: u64 = 2_000;

#[derive(Serialize)]
struct FailurePoint {
    replicas_failed: usize,
    durability: String,
    pushes: usize,
    lines_per_sec: f64,
    checkpoint_all_ms: f64,
    tenants_persisted: usize,
}

#[derive(Serialize)]
struct RecoveryPoint {
    scenario: String,
    recovery_ms: f64,
    resumed_tenants: usize,
    corrupt_preserved: u64,
    durability_after: String,
}

#[derive(Serialize)]
struct AvailabilityBench {
    bench: String,
    tenants: usize,
    replicas: usize,
    checkpoint_every: u64,
    failure_sweep: Vec<FailurePoint>,
    recovery: Vec<RecoveryPoint>,
}

/// Protocol command suffixes (`<source> <index> <line>`) shared by every
/// tenant, round-robin across sources.
fn command_suffixes() -> Vec<String> {
    let mut config = SimConfig::scaled(64, 1)
        .with_seed(1301)
        .without_calibration();
    config.noise_lines_per_hour = 400.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let sources: [(Source, &Vec<String>); 5] = [
        (Source::Syslog, &raw.syslog),
        (Source::HwErr, &raw.hwerr),
        (Source::Alps, &raw.alps),
        (Source::Torque, &raw.torque),
        (Source::Netwatch, &raw.netwatch),
    ];
    let mut suffixes = Vec::new();
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            if let Some(line) = lines.get(offsets[i]) {
                suffixes.push(format!("{} {} {line}", source.name(), offsets[i]));
                offsets[i] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    suffixes
}

fn replica_dirs() -> Vec<PathBuf> {
    (0..REPLICAS)
        .map(|i| PathBuf::from(format!("/r{i}")))
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig {
        tenants_dirs: replica_dirs(),
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 4,
        checkpoint_every: CHECKPOINT_EVERY,
        stream: StreamConfig::default().with_lateness(SimDuration::from_secs(3_600)),
        ..ServeConfig::default()
    }
}

/// Pushes `commands[lo..hi]` for every tenant; every response must be OK.
fn drive(core: &mut ServeCore, commands: &[Vec<String>], lo: usize, hi: usize) -> f64 {
    let start = Instant::now();
    let mut errors = 0usize;
    for tenant_cmds in commands {
        for command in &tenant_cmds[lo..hi] {
            if !core.handle_line(command).starts_with("OK") {
                errors += 1;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(errors, 0, "load generator saw rejected pushes");
    secs
}

fn tenant_commands(suffixes: &[String], per_tenant: usize) -> Vec<Vec<String>> {
    (0..TENANTS)
        .map(|t| {
            suffixes[..per_tenant]
                .iter()
                .map(|s| format!("PUSH t{t:03} {s}"))
                .collect()
        })
        .collect()
}

fn main() {
    banner(
        "P4",
        "serve availability under replica failure (3-way checkpoint store)",
    );
    let suffixes = command_suffixes();
    let per_tenant = suffixes.len().min(1_500);
    let commands = tenant_commands(&suffixes, per_tenant);
    let pushes = TENANTS * per_tenant;
    println!("corpus           : {per_tenant} lines x {TENANTS} tenants over {REPLICAS} replicas");

    // (a) Throughput with 0 / 1 / N-1 replicas failed: each point is a
    // fresh chaos disk with the first k replica subtrees down.
    let mut failure_sweep = Vec::new();
    for failed in [0usize, 1, REPLICAS - 1] {
        let fs = Arc::new(ChaosFs::clean());
        let mut core = ServeCore::with_fs(config(), fs.clone()).expect("serve core");
        for k in 0..failed {
            fs.set_down(&PathBuf::from(format!("/r{k}")), true);
        }
        let secs = drive(&mut core, &commands, 0, per_tenant);
        let t0 = Instant::now();
        let persisted = core.checkpoint_all();
        let ckpt_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(persisted, TENANTS, "a live replica must hold every tenant");
        let durability = core.durability().label().to_string();
        let rate = pushes as f64 / secs;
        println!(
            "{failed} replica(s) down : {rate:>10.0} lines/s  durability={durability}  \
             checkpoint-all {ckpt_ms:>6.1} ms"
        );
        failure_sweep.push(FailurePoint {
            replicas_failed: failed,
            durability,
            pushes,
            lines_per_sec: rate,
            checkpoint_all_ms: ckpt_ms,
            tenants_persisted: persisted,
        });
    }

    // (b) Corruption mid-run: checkpoint everywhere, rot every checkpoint
    // on replica 0 at rest, crash, and time a restart that must fall back
    // to the intact replicas (preserving the corrupt copies for autopsy).
    let mut recovery = Vec::new();
    {
        let fs = Arc::new(ChaosFs::clean());
        let half = per_tenant / 2;
        {
            let mut core = ServeCore::with_fs(config(), fs.clone()).expect("serve core");
            drive(&mut core, &commands, 0, half);
            assert_eq!(core.checkpoint_all(), TENANTS);
        }
        for t in 0..TENANTS {
            assert!(
                fs.corrupt(&store::ckpt_path(
                    &PathBuf::from("/r0"),
                    &format!("t{t:03}")
                )),
                "replica 0 must hold t{t:03} to rot it"
            );
        }
        let t0 = Instant::now();
        let mut core = ServeCore::with_fs(config(), fs.clone()).expect("resume");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let resumed = core.tenant_names().len();
        assert_eq!(resumed, TENANTS, "every tenant must resume past the rot");
        let snap = core.store_snapshot().expect("store is on");
        assert_eq!(snap.corrupt_preserved, TENANTS as u64);
        drive(&mut core, &commands, half, per_tenant);
        println!(
            "corruption-mid-run: recovery {recovery_ms:>6.1} ms  ({resumed} resumed, \
             {} corrupt preserved)",
            snap.corrupt_preserved
        );
        recovery.push(RecoveryPoint {
            scenario: "corrupt-one-replica-at-rest".to_string(),
            recovery_ms,
            resumed_tenants: resumed,
            corrupt_preserved: snap.corrupt_preserved,
            durability_after: core.durability().label().to_string(),
        });
    }

    // (c) Crash + resume with one replica dead at restart.
    {
        let fs = Arc::new(ChaosFs::clean());
        let half = per_tenant / 2;
        {
            let mut core = ServeCore::with_fs(config(), fs.clone()).expect("serve core");
            drive(&mut core, &commands, 0, half);
            assert_eq!(core.checkpoint_all(), TENANTS);
        }
        fs.remove_tree(&PathBuf::from("/r0"));
        fs.set_down(&PathBuf::from("/r0"), true);
        let t0 = Instant::now();
        let mut core = ServeCore::with_fs(config(), fs.clone()).expect("resume");
        let recovery_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let resumed = core.tenant_names().len();
        assert_eq!(resumed, TENANTS, "survivors must carry the fleet");
        drive(&mut core, &commands, half, per_tenant);
        let persisted = core.checkpoint_all();
        assert_eq!(persisted, TENANTS);
        let durability_after = core.durability().label().to_string();
        println!(
            "crash+replica-dead: recovery {recovery_ms:>6.1} ms  ({resumed} resumed, \
             durability={durability_after})"
        );
        recovery.push(RecoveryPoint {
            scenario: "crash-resume-one-replica-dead".to_string(),
            recovery_ms,
            resumed_tenants: resumed,
            corrupt_preserved: 0,
            durability_after,
        });
    }

    let out = AvailabilityBench {
        bench: "perf_availability".to_string(),
        tenants: TENANTS,
        replicas: REPLICAS,
        checkpoint_every: CHECKPOINT_EVERY,
        failure_sweep,
        recovery,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_availability.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
