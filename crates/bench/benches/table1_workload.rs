//! T1 — Workload summary: runs, node-hours, class split, distribution
//! summary (abstract anchor: the full period holds > 5 M application runs).

use bw_bench::{banner, scenario};
use logdiver::report;
use logdiver_types::NodeType;

fn main() {
    banner("T1", "workload summary");
    let s = scenario();
    let m = &s.analysis.metrics;
    println!("application runs : {}", m.total_runs);
    println!("node-hours       : {:.0}", m.total_node_hours);
    println!("measured days    : {:.1}", m.measured_days);
    for ty in [NodeType::Xe, NodeType::Xk] {
        let runs = s
            .analysis
            .runs
            .iter()
            .filter(|r| r.run.node_type == ty)
            .count();
        let nh: f64 = s
            .analysis
            .runs
            .iter()
            .filter(|r| r.run.node_type == ty)
            .map(|r| r.run.node_hours())
            .sum();
        println!("  {ty}: {runs} runs, {nh:.0} node-hours");
    }
    // Volume extrapolated to the paper's full period & machine.
    let scale = s.config.machine_divisor as f64 * 518.0 / m.measured_days.max(0.1);
    println!(
        "extrapolated to full machine × 518 days: ≈ {:.1} M runs (paper: > 5 M)",
        m.total_runs as f64 * scale / 1.0e6
    );
    println!();
    println!("{}", report::workload_summary(m));

    // Per-user concentration (the Zipf story behind the workload).
    let users = logdiver::users::analyze_users(&s.analysis.runs);
    println!("distinct users   : {}", users.distinct_users());
    println!(
        "top-5 users carry: {:.1}% of runs",
        users.top_k_share(5) * 100.0
    );
    println!(
        "top-20 users     : {:.1}% of runs",
        users.top_k_share(20) * 100.0
    );
    if let Some((p10, p50, p90)) = users.failure_rate_spread(50) {
        println!(
            "user-failure rate spread across users (≥50 runs): p10 {:.1}%, median {:.1}%, p90 {:.1}%",
            p10 * 100.0, p50 * 100.0, p90 * 100.0
        );
    }
}
