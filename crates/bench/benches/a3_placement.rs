//! A3 — Placement ablation: packed vs scattered allocations under
//! blade-correlated failures.
//!
//! A blade failure kills four nodes at once. Packing an application onto
//! few blades means one blade event rarely touches more than one
//! application; scattering every application across many blades lets a
//! single blade failure take out several at once. The simulator's blade
//! rate is boosted so the contrast is densely sampled.

use bw_sim::{MemoryOutput, SimConfig, Simulation, TrueOutcome};
use bw_topology::PlacementPolicy;
use logdiver_types::FailureCause;

fn run(policy: PlacementPolicy) -> (u64, u64, f64) {
    let mut config = SimConfig::scaled(32, 20)
        .with_seed(4040)
        .without_calibration();
    config.placement = policy;
    // Busy machine (placement only matters when blades are shared) and
    // blade failures dominating; other node-scoped faults quiet.
    for class in &mut config.workload.classes {
        class.jobs_per_hour *= 8.0;
    }
    config.faults.blade_failure_per_blade_hour = 1.0e-3;
    config.faults.xe_node_crash_per_node_hour = 1.0e-8;
    config.faults.xk_node_crash_per_node_hour = 1.0e-8;
    config.faults.gpu_fault_per_node_hour = 1.0e-8;
    config.faults.link_failures_per_hour = 0.0;
    config.faults.ost_failures_per_hour = 0.0;
    config.faults.mds_failovers_per_hour = 0.0;
    let mut raw = MemoryOutput::new();
    let report = Simulation::new(config).expect("valid").run(&mut raw);
    let hw_kills = raw
        .truths
        .iter()
        .filter(|t| {
            matches!(
                t.outcome,
                TrueOutcome::SystemFailure {
                    cause: FailureCause::NodeHardware,
                    ..
                }
            )
        })
        .count() as u64;
    let lost: f64 = raw
        .truths
        .iter()
        .filter(|t| t.outcome.is_system())
        .map(|t| t.node_hours())
        .sum();
    (report.lethal_faults, hw_kills, lost)
}

fn main() {
    println!("A3 — placement policy vs blade-correlated failures (same fault seed)");
    for (name, policy) in [
        ("packed   ", PlacementPolicy::Packed),
        ("scattered", PlacementPolicy::Scattered),
    ] {
        let (lethal, kills, lost) = run(policy);
        println!(
            "  {name}: {lethal} lethal faults → {kills} blade-caused app kills, {lost:.0} node-hours lost ({:.2} kills/fault)",
            kills as f64 / lethal.max(1) as f64
        );
    }
    println!("\n(packing bounds the blast radius of a blade event; scattering trades\n that for torus-bandwidth balance — the classic placement tension)");
}
