//! F8 — Temporal dispersion: are system failures steady or bursty over the
//! production period?

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("F8", "temporal dispersion of failures and events");
    let s = scenario();
    println!("{}", report::temporal_summary(&s.analysis.metrics));
    let t = &s.analysis.metrics.temporal;
    println!("\nsystem failures per day:");
    for (d, chunk) in t.system_failures.counts.chunks(15).enumerate() {
        let row: Vec<String> = chunk.iter().map(|c| format!("{c:>3}")).collect();
        println!("  day {:>3}+ {}", d * 15, row.join(" "));
    }
}
