//! P8 — serving resilience under hostile load: goodput vs offered load
//! with pressure-based admission control, p99 push latency while slowloris
//! clients dribble bytes, and graceful-drain latency across tenant-fleet
//! sizes.
//!
//! Three questions, one JSON artifact (`BENCH_overload.json`, uploaded by
//! the CI `overload-smoke` job):
//!
//! 1. **Does shedding protect goodput?** A backlog model converts excess
//!    accepted work into pump pressure (ms of sweep debt); the core sheds
//!    with `ERR code=overload retry-ms=N` once pressure passes the
//!    deadline. Offered load sweeps 0.5× → 4× capacity; goodput should
//!    plateau near capacity instead of collapsing.
//! 2. **Do slow clients hurt the fast ones?** Eight dribblers feed one
//!    byte of an oversized line per round while a well-behaved client
//!    pushes normally; its p99 is compared against an uncontended run, and
//!    the largest buffered partial line is reported (bounded by
//!    `max_line_bytes`).
//! 3. **How long does a drain take?** `DRAIN` flushes and checkpoints the
//!    whole fleet; latency is reported per fleet size.

use std::collections::VecDeque;
use std::time::Instant;

use bw_bench::banner;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver_serve::{BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::{Source, StreamConfig};
use logdiver_types::SimDuration;
use serde::Serialize;

/// Virtual tick the offered-load model advances per round.
const TICK_MS: u64 = 10;
/// Lines the "machine" can absorb per tick in the backlog model — the
/// work unit the offered-load multiples scale against.
const CAPACITY_PER_TICK: usize = 100;
/// Ticks per offered-load point (1.5 virtual seconds past the deadline).
const TICKS: usize = 150;
/// Load-generator tenants the offered stream round-robins across.
const LOAD_TENANTS: usize = 8;

#[derive(Serialize)]
struct GoodputPoint {
    offered_multiple: f64,
    offered_lines: usize,
    accepted_lines: usize,
    shed_lines: usize,
    goodput_fraction: f64,
    peak_pressure_ms: u64,
}

#[derive(Serialize)]
struct SlowClientPoint {
    dribblers: usize,
    pushes: usize,
    p99_push_us: f64,
    max_partial_line_bytes: usize,
}

#[derive(Serialize)]
struct DrainPoint {
    tenants: usize,
    lines_per_tenant: usize,
    drain_ms: f64,
}

#[derive(Serialize)]
struct OverloadBench {
    bench: String,
    tick_ms: u64,
    capacity_per_tick: usize,
    goodput: Vec<GoodputPoint>,
    slow_client: Vec<SlowClientPoint>,
    drain: Vec<DrainPoint>,
}

/// Protocol command suffixes (`<source> <index> <line>`), round-robin
/// across sources — same corpus recipe as `perf_serve`.
fn command_suffixes() -> Vec<String> {
    let mut config = SimConfig::scaled(64, 1)
        .with_seed(1201)
        .without_calibration();
    config.noise_lines_per_hour = 600.0;
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid config").run(&mut raw);
    let sources: [(Source, &Vec<String>); 5] = [
        (Source::Syslog, &raw.syslog),
        (Source::HwErr, &raw.hwerr),
        (Source::Alps, &raw.alps),
        (Source::Torque, &raw.torque),
        (Source::Netwatch, &raw.netwatch),
    ];
    let mut suffixes = Vec::new();
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            if let Some(line) = lines.get(offsets[i]) {
                suffixes.push(format!("{} {} {line}", source.name(), offsets[i]));
                offsets[i] += 1;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    suffixes
}

fn serve_config(dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        tenants_dirs: vec![dir.to_path_buf()],
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 4,
        checkpoint_every: 0,
        stream: StreamConfig::default().with_lateness(SimDuration::from_secs(3_600)),
        ..ServeConfig::default()
    }
}

/// One offered-load point: a lockstep client stream retries shed pushes
/// (head-of-line, like the real `logdiver-push`), the backlog model turns
/// surplus accepted work into pump pressure, and the core's admission
/// control does the rest.
fn goodput_point(suffixes: &[String], multiple: f64) -> GoodputPoint {
    let dir = std::env::temp_dir().join("logdiver-perf-overload-goodput");
    let _ = std::fs::remove_dir_all(&dir);
    let config = serve_config(&dir);
    let deadline_ms = config.overload.deadline_ms;
    let mut core = ServeCore::new(config).expect("serve core");

    // Per-tenant command queues; shed commands are retried before new ones.
    let tag = (multiple * 10.0) as usize;
    let mut queues: Vec<VecDeque<String>> = (0..LOAD_TENANTS)
        .map(|t| {
            suffixes
                .iter()
                .map(|s| format!("PUSH ld{tag}t{t:02} {s}"))
                .collect()
        })
        .collect();

    let mut offered = 0usize;
    let mut accepted = 0usize;
    let mut shed = 0usize;
    let mut backlog_lines = 0usize;
    let mut peak_pressure = 0u64;
    let per_tick = ((CAPACITY_PER_TICK as f64) * multiple) as usize;

    for _ in 0..TICKS {
        // Pressure = backlog expressed as milliseconds of sweep debt.
        let pressure_ms = (backlog_lines as u64) * TICK_MS / CAPACITY_PER_TICK as u64;
        peak_pressure = peak_pressure.max(pressure_ms);
        core.set_pressure(pressure_ms);
        let mut tick_accepted = 0usize;
        for slot in 0..per_tick {
            let queue = &mut queues[slot % LOAD_TENANTS];
            let Some(command) = queue.front() else {
                continue;
            };
            offered += 1;
            let resp = core.handle_line(command);
            if resp.starts_with("OK") {
                queue.pop_front();
                accepted += 1;
                tick_accepted += 1;
            } else {
                assert!(
                    resp.starts_with("ERR code=overload retry-ms="),
                    "unexpected rejection: {resp}"
                );
                shed += 1;
            }
        }
        backlog_lines += tick_accepted;
        backlog_lines = backlog_lines.saturating_sub(CAPACITY_PER_TICK);
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        peak_pressure <= deadline_ms + (2.0 * multiple * TICK_MS as f64) as u64 + TICK_MS,
        "admission control let pressure run away: {peak_pressure}ms"
    );

    GoodputPoint {
        offered_multiple: multiple,
        offered_lines: offered,
        accepted_lines: accepted,
        shed_lines: shed,
        goodput_fraction: if offered == 0 {
            0.0
        } else {
            accepted as f64 / offered as f64
        },
        peak_pressure_ms: peak_pressure,
    }
}

/// p99 push latency for a well-behaved client while `dribblers` stalled
/// connections trickle one byte of an oversized line per round.
fn slow_client_point(suffixes: &[String], dribblers: usize) -> SlowClientPoint {
    let dir = std::env::temp_dir().join("logdiver-perf-overload-slow");
    let _ = std::fs::remove_dir_all(&dir);
    let config = serve_config(&dir);
    let max_line = config.max_line_bytes;
    let mut core = ServeCore::new(config).expect("serve core");

    let slow_ids: Vec<u64> = (0..dribblers).map(|_| core.open_conn()).collect();
    let good = core.open_conn();
    let pushes = suffixes.len().min(20_000);

    let mut latencies = Vec::with_capacity(pushes);
    let mut max_partial = 0usize;
    for suffix in &suffixes[..pushes] {
        for &slow in &slow_ids {
            // One byte of a line that will never complete.
            let responses = core.feed(slow, b"x");
            assert!(responses.is_empty(), "a dribbled byte completed a line");
            max_partial = max_partial.max(core.pending_fragment(slow));
        }
        let command = format!("PUSH slowbench {suffix}\n");
        let t0 = Instant::now();
        let responses = core.feed(good, command.as_bytes());
        latencies.push(t0.elapsed().as_nanos() as u64);
        assert!(
            responses.len() == 1 && responses[0].starts_with("OK"),
            "push rejected: {responses:?}"
        );
    }
    for slow in slow_ids {
        core.close_conn(slow);
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        max_partial <= max_line,
        "partial-line buffer exceeded the max-line bound: {max_partial} > {max_line}"
    );

    SlowClientPoint {
        dribblers,
        pushes,
        p99_push_us: p99_us(&mut latencies),
        max_partial_line_bytes: max_partial,
    }
}

/// Time one `DRAIN` (flush + checkpoint every tenant) for a fleet.
fn drain_point(suffixes: &[String], tenants: usize) -> DrainPoint {
    let dir = std::env::temp_dir().join("logdiver-perf-overload-drain");
    let _ = std::fs::remove_dir_all(&dir);
    let mut core = ServeCore::new(serve_config(&dir)).expect("serve core");
    let lines_per_tenant = suffixes.len().min(500);
    for t in 0..tenants {
        for suffix in &suffixes[..lines_per_tenant] {
            let resp = core.handle_line(&format!("PUSH dr{t:03} {suffix}"));
            assert!(resp.starts_with("OK"), "push rejected: {resp}");
        }
    }
    let t0 = Instant::now();
    let resp = core.handle_line("DRAIN");
    let drain_ms = t0.elapsed().as_secs_f64() * 1_000.0;
    assert!(
        resp.starts_with(&format!("OK draining tenants={tenants}")),
        "drain response: {resp}"
    );
    let _ = std::fs::remove_dir_all(&dir);
    DrainPoint {
        tenants,
        lines_per_tenant,
        drain_ms,
    }
}

fn p99_us(latencies: &mut [u64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let idx = (latencies.len() as f64 * 0.99) as usize;
    latencies[idx.min(latencies.len() - 1)] as f64 / 1_000.0
}

fn main() {
    banner(
        "P8",
        "overload resilience: goodput under shedding, slowloris p99, drain latency",
    );
    let suffixes = command_suffixes();
    println!(
        "corpus           : {} lines per tenant (max)",
        suffixes.len()
    );

    let mut goodput = Vec::new();
    for multiple in [0.5, 1.0, 2.0, 4.0] {
        let point = goodput_point(&suffixes, multiple);
        println!(
            "offered {multiple:>3.1}x     : accepted {:>6} / {:>6}  \
             (goodput {:>5.1}%, shed {:>6}, peak pressure {:>5} ms)",
            point.accepted_lines,
            point.offered_lines,
            point.goodput_fraction * 100.0,
            point.shed_lines,
            point.peak_pressure_ms,
        );
        goodput.push(point);
    }

    let mut slow_client = Vec::new();
    for dribblers in [0usize, 8] {
        let point = slow_client_point(&suffixes, dribblers);
        println!(
            "{dribblers} dribblers      : p99 {:>7.1} us over {} pushes  \
             (max partial {} bytes)",
            point.p99_push_us, point.pushes, point.max_partial_line_bytes,
        );
        slow_client.push(point);
    }

    let mut drain = Vec::new();
    for tenants in [8usize, 32] {
        let point = drain_point(&suffixes, tenants);
        println!(
            "drain {tenants:>3} tenants : {:>8.1} ms ({} lines each)",
            point.drain_ms, point.lines_per_tenant,
        );
        drain.push(point);
    }

    let out = OverloadBench {
        bench: "perf_overload".to_string(),
        tick_ms: TICK_MS,
        capacity_per_tick: CAPACITY_PER_TICK,
        goodput,
        slow_client,
        drain,
    };
    let text = serde_json::to_string_pretty(&out).expect("serializable");
    let path = "BENCH_overload.json";
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
