//! A5 — Burn-in: early-life failure rates vs steady state.
//!
//! Every field study of a young machine reports maturation: the failure
//! rate starts high and decays as weak parts are replaced and software
//! stabilizes. This bench enables the optional burn-in profile (which the
//! calibrated runs keep off — it trades anchor fidelity for early-life
//! realism) and shows the measured monthly failure trend through LogDiver.

use bw_faults::BurnIn;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{LogCollection, LogDiver};

fn main() {
    let mut config = SimConfig::scaled(16, 120).with_seed(88);
    for class in &mut config.workload.classes {
        class.capability_fraction *= 8.0;
    }
    config.faults.burn_in = Some(BurnIn {
        initial_multiplier: 3.0,
        decay_days: 25.0,
    });
    println!("A5 — burn-in (3× initial lethal-fault rate, 25-day decay), 120 days, 1/16 machine");
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    let analysis = LogDiver::new().analyze(&logs);
    let t = &analysis.metrics.temporal;
    println!("\nmachine-scope lethal events per 30-day month (the fault processes):");
    for (month, chunk) in t.wide_events.counts.chunks(30).enumerate() {
        let total: u64 = chunk.iter().sum();
        println!(
            "  month {:>2}: {total:>5}  {}",
            month + 1,
            "#".repeat((total / 20) as usize)
        );
    }
    println!("\napplication system failures per month (diluted by the scale-\nindependent launch-failure floor — lesson: count metrics hide maturation):");
    for (month, chunk) in t.system_failures.counts.chunks(30).enumerate() {
        let total: u64 = chunk.iter().sum();
        println!(
            "  month {:>2}: {total:>5}  {}",
            month + 1,
            "#".repeat((total / 20) as usize)
        );
    }
}
