//! T3 — Breakdown of system-caused application failures by subsystem.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("T3", "system-failure cause breakdown");
    let s = scenario();
    println!("{}", report::cause_table(&s.analysis.metrics));
    println!();
    println!("{}", report::interarrival_summary(&s.analysis.metrics));
}
