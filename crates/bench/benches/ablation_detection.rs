//! Ablation — how much of the hybrid-resilience gap is pure detection?
//! Reruns the scenario's fault world under the measured-period detection
//! model and a hardened-GPU model, at boosted node-fault rates so the
//! mechanism is densely sampled (DESIGN.md §7: mechanism tests).

use bw_faults::DetectionModel;
use bw_sim::{MemoryOutput, SimConfig, Simulation};
use logdiver::{report, LogCollection, LogDiver};
use logdiver_types::NodeType;

fn run(detection: DetectionModel) -> logdiver::MetricSet {
    let mut config = SimConfig::scaled(32, 14)
        .with_seed(4224)
        .without_calibration();
    config.detection = detection;
    config.faults.gpu_fault_per_node_hour = 2.0e-2;
    config.faults.xk_node_crash_per_node_hour = 1.0e-3;
    config.faults.xe_node_crash_per_node_hour = 1.0e-3;
    for class in &mut config.workload.classes {
        if class.node_type == NodeType::Xk {
            class.jobs_per_hour *= 4.0;
        }
    }
    let mut raw = MemoryOutput::new();
    Simulation::new(config).expect("valid").run(&mut raw);
    let mut logs = LogCollection::new();
    logs.syslog = raw.syslog;
    logs.hwerr = raw.hwerr;
    logs.alps = raw.alps;
    logs.torque = raw.torque;
    logs.netwatch = raw.netwatch;
    LogDiver::new().analyze(&logs).metrics
}

fn main() {
    println!("ablation — detection coverage (same seed, same fault world)");
    println!("\n— measured-period coverage —");
    let base = run(DetectionModel::blue_waters());
    println!("{}", report::detection_table(&base));
    println!("\n— hardened GPU instrumentation —");
    let hard = run(DetectionModel::hardened_gpu());
    println!("{}", report::detection_table(&hard));
}
