//! F6 — Interarrival of machine-scope lethal error events, with
//! exponential and Weibull fits.

use bw_bench::{banner, scenario};
use logdiver::report;

fn main() {
    banner("F6", "system-event interarrival fit");
    let s = scenario();
    println!("{}", report::interarrival_summary(&s.analysis.metrics));
    let wide = s
        .analysis
        .events
        .iter()
        .filter(|e| e.system_scope && e.is_lethal())
        .count();
    println!("\nmachine-scope lethal events in window: {wide}");
}
