//! # bw-bench
//!
//! Regeneration harnesses: one `cargo bench` target per table and figure of
//! the field study (DESIGN.md §4), plus Criterion performance benches of
//! LogDiver's pipeline stages.
//!
//! Every experiment target runs the same standard scenario — simulate a
//! production period, analyze the raw logs with LogDiver — and prints the
//! table/figure it owns. Scenario scale is controlled by environment
//! variables so the identical binaries serve both CI and the full
//! reproduction:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `BW_DIVISOR` | 16 | machine scale divisor (1 = full Blue Waters) |
//! | `BW_DAYS` | 60 | simulated production days (the paper: 518) |
//! | `BW_SEED` | 2013 | RNG seed |
//! | `BW_BOOST_CAPABILITY` | 1 | multiply capability-job frequency ×8 |
//!
//! `BW_DIVISOR=1 BW_DAYS=518 BW_BOOST_CAPABILITY=0 cargo bench` is the
//! paper-faithful configuration (hours of wall-clock on one core).

use std::sync::OnceLock;

use bw_sim::{MemoryOutput, SimConfig, SimReport, Simulation};
use logdiver::{Analysis, LogCollection, LogDiver};

/// The standard scenario's outcome, shared by every experiment target.
#[derive(Debug)]
pub struct Scenario {
    /// The configuration that ran (after calibration).
    pub config: SimConfig,
    /// Simulator ground truth + counters.
    pub truths: Vec<bw_sim::AppTruth>,
    /// Simulator report.
    pub report: SimReport,
    /// LogDiver's analysis of the raw logs.
    pub analysis: Analysis,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the scenario configuration from the environment.
pub fn scenario_config() -> SimConfig {
    let divisor = env_u64("BW_DIVISOR", 16) as u32;
    let days = env_u64("BW_DAYS", 60) as u32;
    let seed = env_u64("BW_SEED", 2013);
    let mut config = if divisor <= 1 {
        SimConfig::blue_waters(days)
    } else {
        SimConfig::scaled(divisor, days)
    }
    .with_seed(seed);
    if env_u64("BW_BOOST_CAPABILITY", 1) == 1 {
        for class in &mut config.workload.classes {
            class.capability_fraction *= 8.0;
        }
    }
    config
}

/// Runs (once per process) and returns the standard scenario.
pub fn scenario() -> &'static Scenario {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    SCENARIO.get_or_init(|| {
        let config = scenario_config();
        eprintln!(
            "[scenario] divisor={} days={} seed={} — simulating…",
            config.machine_divisor, config.days, config.seed
        );
        let sim = Simulation::new(config).expect("valid scenario config");
        let config = sim.config().clone();
        let mut raw = MemoryOutput::new();
        let report = sim.run(&mut raw);
        eprintln!(
            "[scenario] {} jobs / {} apps / {:.0} node-hours; analyzing…",
            report.jobs_submitted, report.apps_completed, report.node_hours
        );
        let mut logs = LogCollection::new();
        logs.syslog = std::mem::take(&mut raw.syslog);
        logs.hwerr = std::mem::take(&mut raw.hwerr);
        logs.alps = std::mem::take(&mut raw.alps);
        logs.torque = std::mem::take(&mut raw.torque);
        logs.netwatch = std::mem::take(&mut raw.netwatch);
        let analysis = LogDiver::new().analyze(&logs);
        Scenario {
            config,
            truths: raw.truths,
            report,
            analysis,
        }
    })
}

/// Prints the standard experiment header.
pub fn banner(id: &str, what: &str) {
    let s = scenario();
    println!("==================================================================");
    println!("{id} — {what}");
    println!(
        "scenario: 1/{} machine, {} days, seed {} (paper period: full machine, 518 days)",
        s.config.machine_divisor, s.config.days, s.config.seed
    );
    println!("==================================================================");
}
