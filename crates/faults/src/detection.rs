//! The detection-coverage model.
//!
//! Whether a fault leaves evidence in the logs depends on the instrumenting
//! subsystem. CPU-side machinery (MCA banks, EDAC, heartbeat sweeps) is
//! mature; the GPU side of hybrid nodes is not — in the measured period a
//! large fraction of GPU failures produced no actionable error record,
//! which the paper singles out as the main impairment of hybrid-application
//! resiliency (lesson iii).

use logdiver_types::{NodeType, SimDuration};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::kinds::{FaultKind, GpuFaultKind};

/// How observable a fault kind is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detectability {
    /// Probability that the fault writes error-log evidence at all.
    pub log_probability: f64,
    /// When evidence exists, how long after the fault it lands in the logs.
    pub reporting_latency: SimDuration,
}

/// Detection-coverage model, parameterized per fault family and node class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionModel {
    /// Coverage of CPU-side node crashes on XE nodes.
    pub xe_node_crash: f64,
    /// Coverage of CPU-side node crashes on XK nodes.
    pub xk_node_crash: f64,
    /// Coverage of GPU double-bit ECC errors.
    pub gpu_dbe: f64,
    /// Coverage of GPU bus-off events.
    pub gpu_bus_off: f64,
    /// Coverage of blade-controller failures (supervisory network).
    pub blade: f64,
    /// Coverage of interconnect events (netwatch sees the fabric).
    pub interconnect: f64,
    /// Coverage of filesystem events (server-side logging).
    pub filesystem: f64,
    /// Probability that an *undetected* lethal node fault is still flagged
    /// by the launcher as a node failure (health sweep catches the corpse
    /// even though no error record explains it).
    pub undetected_node_flag: f64,
}

impl Default for DetectionModel {
    fn default() -> Self {
        Self::blue_waters()
    }
}

impl DetectionModel {
    /// The measured-period model: strong CPU-side coverage, weak GPU-side.
    pub fn blue_waters() -> Self {
        DetectionModel {
            xe_node_crash: 0.96,
            xk_node_crash: 0.94,
            gpu_dbe: 0.45,
            gpu_bus_off: 0.30,
            blade: 0.98,
            interconnect: 0.99,
            filesystem: 0.97,
            undetected_node_flag: 0.75,
        }
    }

    /// A hypothetical model with hardened GPU instrumentation — used by the
    /// ablation bench to quantify how much of the hybrid-resilience gap is
    /// pure detection.
    pub fn hardened_gpu() -> Self {
        DetectionModel {
            gpu_dbe: 0.95,
            gpu_bus_off: 0.92,
            ..Self::blue_waters()
        }
    }

    /// Probability that `kind` leaves log evidence.
    pub fn log_probability(&self, kind: &FaultKind) -> f64 {
        match kind {
            FaultKind::NodeCrash { nid, .. } => {
                // The class of the nid is not known here; callers that care
                // use `log_probability_for_class`. Default to XE coverage.
                let _ = nid;
                self.xe_node_crash
            }
            FaultKind::GpuFault { kind, .. } => match kind {
                GpuFaultKind::DoubleBitEcc => self.gpu_dbe,
                GpuFaultKind::BusOff => self.gpu_bus_off,
            },
            FaultKind::BladeFailure { .. } => self.blade,
            FaultKind::GeminiLinkFailure { .. } => self.interconnect,
            FaultKind::LustreOstFailure { .. } | FaultKind::LustreMdsFailover { .. } => {
                self.filesystem
            }
            // Warnings/notices are log entries by definition.
            FaultKind::MemoryCeFlood { .. }
            | FaultKind::GpuPageRetirement { .. }
            | FaultKind::Maintenance { .. } => 1.0,
        }
    }

    /// Probability that `kind` on a node of class `ty` leaves log evidence.
    pub fn log_probability_for_class(&self, kind: &FaultKind, ty: NodeType) -> f64 {
        match kind {
            FaultKind::NodeCrash { .. } => match ty {
                NodeType::Xk => self.xk_node_crash,
                _ => self.xe_node_crash,
            },
            _ => self.log_probability(kind),
        }
    }

    /// Samples whether a fault is detected.
    pub fn sample_detected<R: Rng>(&self, kind: &FaultKind, ty: NodeType, rng: &mut R) -> bool {
        rng.random::<f64>() < self.log_probability_for_class(kind, ty)
    }

    /// Reporting latency for a detected fault (deterministic per family;
    /// jitter is added by the emitter).
    pub fn reporting_latency(&self, kind: &FaultKind) -> SimDuration {
        match kind {
            // Heartbeat-based declarations take a sweep interval.
            FaultKind::NodeCrash { .. } | FaultKind::BladeFailure { .. } => {
                SimDuration::from_secs(30)
            }
            FaultKind::GpuFault { .. } => SimDuration::from_secs(5),
            FaultKind::GeminiLinkFailure { .. } => SimDuration::from_secs(2),
            FaultKind::LustreOstFailure { .. } | FaultKind::LustreMdsFailover { .. } => {
                SimDuration::from_secs(10)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Validation for configuration plumbing.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("xe_node_crash", self.xe_node_crash),
            ("xk_node_crash", self.xk_node_crash),
            ("gpu_dbe", self.gpu_dbe),
            ("gpu_bus_off", self.gpu_bus_off),
            ("blade", self.blade),
            ("interconnect", self.interconnect),
            ("filesystem", self.filesystem),
            ("undetected_node_flag", self.undetected_node_flag),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("coverage {name} out of [0,1]: {p}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::NodeCrashCause;
    use logdiver_types::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gpu_coverage_is_much_weaker() {
        let m = DetectionModel::blue_waters();
        m.validate().unwrap();
        let gpu = FaultKind::GpuFault {
            nid: NodeId::new(0),
            kind: GpuFaultKind::BusOff,
        };
        let cpu = FaultKind::NodeCrash {
            nid: NodeId::new(0),
            cause: NodeCrashCause::MachineCheck,
        };
        assert!(
            m.log_probability_for_class(&gpu, NodeType::Xk)
                < 0.5 * m.log_probability_for_class(&cpu, NodeType::Xe)
        );
    }

    #[test]
    fn hardened_model_closes_the_gap() {
        let m = DetectionModel::hardened_gpu();
        assert!(m.gpu_dbe > 0.9 && m.gpu_bus_off > 0.9);
        assert_eq!(m.xe_node_crash, DetectionModel::blue_waters().xe_node_crash);
    }

    #[test]
    fn warnings_are_always_logged() {
        let m = DetectionModel::blue_waters();
        assert_eq!(
            m.log_probability(&FaultKind::MemoryCeFlood {
                nid: NodeId::new(0)
            }),
            1.0
        );
    }

    #[test]
    fn sampling_matches_probability() {
        let m = DetectionModel::blue_waters();
        let gpu = FaultKind::GpuFault {
            nid: NodeId::new(0),
            kind: GpuFaultKind::DoubleBitEcc,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| m.sample_detected(&gpu, NodeType::Xk, &mut rng))
            .count() as f64;
        assert!((hits / n as f64 - m.gpu_dbe).abs() < 0.02);
    }

    #[test]
    fn latencies_are_reasonable() {
        let m = DetectionModel::blue_waters();
        let crash = FaultKind::NodeCrash {
            nid: NodeId::new(0),
            cause: NodeCrashCause::Hang,
        };
        assert!(m.reporting_latency(&crash).as_secs() >= 1);
        let flood = FaultKind::MemoryCeFlood {
            nid: NodeId::new(0),
        };
        assert_eq!(m.reporting_latency(&flood), SimDuration::ZERO);
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let mut m = DetectionModel::blue_waters();
        m.gpu_dbe = 1.5;
        assert!(m.validate().is_err());
    }
}
