//! The fault injector: a streaming, time-ordered source of fault events.
//!
//! Nine independent Poisson processes (per-class node crashes, GPU faults,
//! blade failures, link failures, OST/MDS failovers, and two warning-only
//! noise processes) are merged into one ordered stream, exactly like the
//! workload generator's arrival merge. The simulator consumes events one at
//! a time, so a 518-day injection never materializes in memory.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bw_topology::Machine;
use hpc_stats::dist::Distribution;
use hpc_stats::{Exponential, LogNormal};
use logdiver_types::{NodeId, NodeType, SimDuration, Timestamp};
use rand::Rng;

use crate::config::FaultConfig;
use crate::detection::DetectionModel;
use crate::kinds::{FaultEvent, FaultKind, GpuFaultKind, NodeCrashCause};

/// Identifies one of the merged processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Process {
    XeCrash,
    XkCrash,
    Gpu,
    Blade,
    Link,
    Ost,
    Mds,
    CeFlood,
    GpuPageRetire,
    Maintenance,
}

const PROCESSES: [Process; 10] = [
    Process::XeCrash,
    Process::XkCrash,
    Process::Gpu,
    Process::Blade,
    Process::Link,
    Process::Ost,
    Process::Mds,
    Process::CeFlood,
    Process::GpuPageRetire,
    Process::Maintenance,
];

struct Stream {
    process: Process,
    interarrival: Option<Exponential>, // None = process disabled (rate 0)
    next: Timestamp,
}

/// A scheduled escalation: a warning that will become a lethal fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PendingEscalation {
    time: Timestamp,
    seq: u64,
    nid: u32,
    gpu: bool,
}

/// Streaming fault-event source over a machine.
pub struct FaultInjector {
    machine: Machine,
    start: Timestamp,
    config: FaultConfig,
    detection: DetectionModel,
    streams: Vec<Stream>,
    pending: BinaryHeap<Reverse<PendingEscalation>>,
    pending_seq: u64,
    escalations_scheduled: u64,
    node_repair: LogNormal,
    blade_repair: LogNormal,
    reroute_stall: Exponential,
    xe_range: (u32, u32),
    xk_range: (u32, u32),
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("machine", &self.machine.name())
            .field("streams", &self.streams.len())
            .finish()
    }
}

/// Builds a log-normal with a target mean and log-space sigma.
fn lognormal_with_mean(mean: f64, sigma: f64) -> LogNormal {
    let mu = mean.ln() - sigma * sigma / 2.0;
    LogNormal::new(mu, sigma).expect("positive parameters")
}

impl FaultInjector {
    /// Creates an injector starting at `start`.
    ///
    /// # Errors
    ///
    /// Returns the validation message for an inconsistent configuration.
    pub fn new<R: Rng>(
        machine: &Machine,
        config: FaultConfig,
        detection: DetectionModel,
        start: Timestamp,
        rng: &mut R,
    ) -> Result<Self, String> {
        config.validate()?;
        detection.validate()?;
        let n_xe = machine.count_of(NodeType::Xe) as f64;
        let n_xk = machine.count_of(NodeType::Xk) as f64;
        let n_blades = machine.total_nodes() as f64 / 4.0;
        let rates = |p: Process| -> f64 {
            match p {
                Process::XeCrash => config.xe_node_crash_per_node_hour * n_xe,
                Process::XkCrash => config.xk_node_crash_per_node_hour * n_xk,
                Process::Gpu => config.gpu_fault_per_node_hour * n_xk,
                Process::Blade => config.blade_failure_per_blade_hour * n_blades,
                Process::Link => config.link_failures_per_hour,
                Process::Ost => config.ost_failures_per_hour,
                Process::Mds => config.mds_failovers_per_hour,
                Process::CeFlood => config.ce_floods_per_hour,
                Process::GpuPageRetire => {
                    if n_xk > 0.0 {
                        config.gpu_page_retirements_per_hour
                    } else {
                        0.0
                    }
                }
                Process::Maintenance => config.maintenance_per_hour,
            }
        };
        // With a burn-in profile, lethal processes run at the *peak* rate
        // and events are thinned back to the instantaneous rate (Lewis
        // thinning for a non-homogeneous Poisson process).
        let peak = config.burn_in.map(|b| b.initial_multiplier).unwrap_or(1.0);
        let mut streams = Vec::with_capacity(PROCESSES.len());
        for p in PROCESSES {
            let lethal_scaling = match p {
                Process::CeFlood | Process::GpuPageRetire | Process::Maintenance => 1.0,
                _ => peak,
            };
            let rate = rates(p) * lethal_scaling;
            let interarrival = if rate > 0.0 {
                Some(Exponential::new(rate / 3_600.0).map_err(|e| e.to_string())?)
            } else {
                None
            };
            let mut s = Stream {
                process: p,
                interarrival,
                next: start,
            };
            s.advance(rng);
            streams.push(s);
        }
        // Contiguous class layout (see bw-topology docs) lets us draw a
        // uniform class member with one random index.
        let xe_first = machine
            .nodes_of_type(NodeType::Xe)
            .next()
            .map(|n| n.value())
            .unwrap_or(0);
        let xk_first = machine
            .nodes_of_type(NodeType::Xk)
            .next()
            .map(|n| n.value())
            .unwrap_or(0);
        let xe_range = (xe_first, xe_first + machine.count_of(NodeType::Xe).max(1));
        let xk_range = (xk_first, xk_first + machine.count_of(NodeType::Xk).max(1));
        Ok(FaultInjector {
            machine: machine.clone(),
            start,
            node_repair: lognormal_with_mean(config.node_repair_mean_hours, 0.8),
            blade_repair: lognormal_with_mean(config.blade_repair_mean_hours, 0.8),
            reroute_stall: Exponential::from_mean(config.reroute_stall_mean_secs)
                .map_err(|e| e.to_string())?,
            config,
            detection,
            streams,
            pending: BinaryHeap::new(),
            pending_seq: 0,
            escalations_scheduled: 0,
            xe_range,
            xk_range,
        })
    }

    /// How many precursor escalations have been scheduled so far.
    pub fn escalations_scheduled(&self) -> u64 {
        self.escalations_scheduled
    }

    /// The detection model in effect.
    pub fn detection(&self) -> &DetectionModel {
        &self.detection
    }

    /// The fault configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Time of the soonest pending event without consuming it.
    pub fn peek_time(&self) -> Timestamp {
        let stream_t = self
            .streams
            .iter()
            .filter(|s| s.interarrival.is_some())
            .map(|s| s.next)
            .min()
            .unwrap_or(Timestamp::from_unix(i64::MAX / 2));
        match self.pending.peek() {
            Some(Reverse(p)) if p.time < stream_t => p.time,
            _ => stream_t,
        }
    }

    /// Produces the next fault event in time order.
    pub fn next_fault<R: Rng>(&mut self, rng: &mut R) -> FaultEvent {
        let stream_idx = self
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.interarrival.is_some())
            .min_by_key(|(_, s)| s.next)
            .map(|(i, _)| i)
            .expect("at least one enabled process");
        // Scheduled escalations interleave with the Poisson streams.
        if let Some(Reverse(p)) = self.pending.peek().copied() {
            if p.time < self.streams[stream_idx].next {
                self.pending.pop();
                return self.make_escalation(p, rng);
            }
        }
        let time = self.streams[stream_idx].next;
        let process = self.streams[stream_idx].process;
        self.streams[stream_idx].advance(rng);
        // Burn-in thinning: keep the event with probability m(t)/m_peak
        // (warning/noise processes stay stationary).
        if let Some(b) = self.config.burn_in {
            let lethal = !matches!(
                process,
                Process::CeFlood | Process::GpuPageRetire | Process::Maintenance
            );
            if lethal {
                let age_days = (time - self.start).as_days_f64().max(0.0);
                let keep = b.multiplier_at(age_days) / b.initial_multiplier;
                if rng.random::<f64>() >= keep {
                    return self.next_fault(rng);
                }
            }
        }
        self.make_event(process, time, rng)
    }

    /// Turns a scheduled escalation into the lethal follow-up fault.
    fn make_escalation<R: Rng>(&mut self, p: PendingEscalation, rng: &mut R) -> FaultEvent {
        let nid = NodeId::new(p.nid);
        let (kind, repair, class) = if p.gpu {
            let repair =
                SimDuration::from_hours_f64((self.node_repair.sample(rng) * 0.15).clamp(0.1, 12.0));
            (
                FaultKind::GpuFault {
                    nid,
                    kind: GpuFaultKind::DoubleBitEcc,
                },
                repair,
                NodeType::Xk,
            )
        } else {
            let repair =
                SimDuration::from_hours_f64(self.node_repair.sample(rng).clamp(0.25, 72.0));
            let ty = self.machine.node_type(nid).unwrap_or(NodeType::Xe);
            (
                FaultKind::NodeCrash {
                    nid,
                    cause: NodeCrashCause::MemoryUncorrectable,
                },
                repair,
                ty,
            )
        };
        let detected = self.detection.sample_detected(&kind, class, rng);
        FaultEvent {
            time: p.time,
            kind,
            repair,
            detected,
        }
    }

    /// Possibly schedules the lethal follow-up to a warning event.
    fn maybe_escalate<R: Rng>(&mut self, time: Timestamp, nid: NodeId, gpu: bool, rng: &mut R) {
        let prob = if gpu {
            self.config.gpu_retirement_escalation_prob
        } else {
            self.config.ce_flood_escalation_prob
        };
        if rng.random::<f64>() >= prob {
            return;
        }
        let lead = rng.random_range(
            self.config.escalation_lead_min_secs..=self.config.escalation_lead_max_secs,
        );
        self.pending_seq += 1;
        self.escalations_scheduled += 1;
        self.pending.push(Reverse(PendingEscalation {
            time: time + SimDuration::from_secs(lead),
            seq: self.pending_seq,
            nid: nid.value(),
            gpu,
        }));
    }

    fn pick_node<R: Rng>(&self, range: (u32, u32), rng: &mut R) -> NodeId {
        NodeId::new(rng.random_range(range.0..range.1))
    }

    fn make_event<R: Rng>(&mut self, process: Process, time: Timestamp, rng: &mut R) -> FaultEvent {
        let (kind, repair, class) = match process {
            Process::XeCrash | Process::XkCrash => {
                let (range, ty) = if process == Process::XeCrash {
                    (self.xe_range, NodeType::Xe)
                } else {
                    (self.xk_range, NodeType::Xk)
                };
                let nid = self.pick_node(range, rng);
                let cause = sample_crash_cause(rng);
                let repair =
                    SimDuration::from_hours_f64(self.node_repair.sample(rng).clamp(0.25, 72.0));
                (FaultKind::NodeCrash { nid, cause }, repair, ty)
            }
            Process::Gpu => {
                let nid = self.pick_node(self.xk_range, rng);
                let kind = if rng.random::<f64>() < 0.6 {
                    GpuFaultKind::DoubleBitEcc
                } else {
                    GpuFaultKind::BusOff
                };
                // GPU faults usually clear with a reboot.
                let repair = SimDuration::from_hours_f64(
                    (self.node_repair.sample(rng) * 0.15).clamp(0.1, 12.0),
                );
                (FaultKind::GpuFault { nid, kind }, repair, NodeType::Xk)
            }
            Process::Blade => {
                let blade = rng.random_range(0..self.machine.total_nodes() / 4);
                let repair =
                    SimDuration::from_hours_f64(self.blade_repair.sample(rng).clamp(1.0, 168.0));
                let ty = self
                    .machine
                    .node_type(NodeId::new(blade * 4))
                    .unwrap_or(NodeType::Xe);
                (FaultKind::BladeFailure { blade }, repair, ty)
            }
            Process::Link => {
                let torus = self.machine.torus();
                let link = torus.link_by_index(rng.random_range(0..torus.link_count()));
                let stall =
                    SimDuration::from_secs((self.reroute_stall.sample(rng) as i64).clamp(10, 600));
                (
                    FaultKind::GeminiLinkFailure { link, stall },
                    SimDuration::ZERO,
                    NodeType::Xe,
                )
            }
            Process::Ost => {
                let ost =
                    bw_topology::OstId::new(rng.random_range(0..self.machine.lustre().ost_count()));
                (
                    FaultKind::LustreOstFailure { ost },
                    SimDuration::ZERO,
                    NodeType::Xe,
                )
            }
            Process::Mds => {
                let mds =
                    bw_topology::MdsId::new(rng.random_range(0..self.machine.lustre().mds_count()));
                (
                    FaultKind::LustreMdsFailover { mds },
                    SimDuration::ZERO,
                    NodeType::Xe,
                )
            }
            Process::CeFlood => {
                // Any compute node can flood; weight by class population.
                let total =
                    (self.xe_range.1 - self.xe_range.0) + (self.xk_range.1 - self.xk_range.0);
                let pick = rng.random_range(0..total.max(1));
                let nid = if pick < self.xe_range.1 - self.xe_range.0 {
                    NodeId::new(self.xe_range.0 + pick)
                } else {
                    NodeId::new(self.xk_range.0 + (pick - (self.xe_range.1 - self.xe_range.0)))
                };
                self.maybe_escalate(time, nid, false, rng);
                (
                    FaultKind::MemoryCeFlood { nid },
                    SimDuration::ZERO,
                    NodeType::Xe,
                )
            }
            Process::GpuPageRetire => {
                let nid = self.pick_node(self.xk_range, rng);
                self.maybe_escalate(time, nid, true, rng);
                (
                    FaultKind::GpuPageRetirement { nid },
                    SimDuration::ZERO,
                    NodeType::Xk,
                )
            }
            Process::Maintenance => {
                let blade = rng.random_range(0..self.machine.total_nodes() / 4);
                (
                    FaultKind::Maintenance { blade },
                    SimDuration::ZERO,
                    NodeType::Xe,
                )
            }
        };
        let detected = self.detection.sample_detected(&kind, class, rng);
        FaultEvent {
            time,
            kind,
            repair,
            detected,
        }
    }
}

impl Stream {
    fn advance<R: Rng>(&mut self, rng: &mut R) {
        if let Some(d) = &self.interarrival {
            let gap = d.sample(rng).max(0.5);
            self.next += SimDuration::from_secs(gap as i64 + 1);
        }
    }
}

fn sample_crash_cause<R: Rng>(rng: &mut R) -> NodeCrashCause {
    match (rng.random::<f64>() * 100.0) as u32 {
        0..=29 => NodeCrashCause::MachineCheck,
        30..=54 => NodeCrashCause::MemoryUncorrectable,
        55..=74 => NodeCrashCause::KernelPanic,
        75..=87 => NodeCrashCause::VoltageFault,
        _ => NodeCrashCause::Hang,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn injector(seed: u64) -> (FaultInjector, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let machine = Machine::blue_waters_scaled(16);
        let inj = FaultInjector::new(
            &machine,
            FaultConfig::scaled(16),
            DetectionModel::blue_waters(),
            Timestamp::PRODUCTION_EPOCH,
            &mut rng,
        )
        .unwrap();
        (inj, rng)
    }

    #[test]
    fn events_come_in_time_order() {
        let (mut inj, mut rng) = injector(1);
        let mut prev = Timestamp::from_unix(0);
        for _ in 0..2_000 {
            let e = inj.next_fault(&mut rng);
            assert!(e.time >= prev, "events out of order");
            prev = e.time;
        }
    }

    #[test]
    fn node_events_target_the_right_class() {
        let (mut inj, mut rng) = injector(2);
        let machine = Machine::blue_waters_scaled(16);
        for _ in 0..3_000 {
            let e = inj.next_fault(&mut rng);
            match e.kind {
                FaultKind::GpuFault { nid, .. } | FaultKind::GpuPageRetirement { nid } => {
                    assert_eq!(machine.node_type(nid), Some(NodeType::Xk), "{nid}");
                }
                FaultKind::NodeCrash { nid, .. } => {
                    assert!(machine.node_type(nid).is_some_and(|t| t.is_compute()));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn lethal_node_faults_carry_repair_times() {
        let (mut inj, mut rng) = injector(3);
        for _ in 0..3_000 {
            let e = inj.next_fault(&mut rng);
            match e.kind {
                FaultKind::NodeCrash { .. } | FaultKind::BladeFailure { .. } => {
                    assert!(e.repair > SimDuration::ZERO);
                    assert!(e.repair <= SimDuration::from_hours(168));
                }
                FaultKind::MemoryCeFlood { .. } => assert_eq!(e.repair, SimDuration::ZERO),
                _ => {}
            }
        }
    }

    #[test]
    fn gpu_faults_are_often_undetected() {
        let (mut inj, mut rng) = injector(4);
        let mut gpu = 0u32;
        let mut gpu_detected = 0u32;
        let mut crash = 0u32;
        let mut crash_detected = 0u32;
        for _ in 0..300_000 {
            let e = inj.next_fault(&mut rng);
            match e.kind {
                FaultKind::GpuFault { .. } => {
                    gpu += 1;
                    gpu_detected += e.detected as u32;
                }
                FaultKind::NodeCrash { .. } => {
                    crash += 1;
                    crash_detected += e.detected as u32;
                }
                _ => {}
            }
        }
        assert!(gpu > 50, "too few GPU faults sampled: {gpu}");
        let gpu_rate = gpu_detected as f64 / gpu as f64;
        let crash_rate = crash_detected as f64 / crash as f64;
        assert!(gpu_rate < 0.6, "gpu detection {gpu_rate}");
        assert!(crash_rate > 0.9, "crash detection {crash_rate}");
    }

    #[test]
    fn event_mix_includes_wide_events() {
        let (mut inj, mut rng) = injector(5);
        let mut wide = 0;
        for _ in 0..50_000 {
            if inj.next_fault(&mut rng).kind.is_wide() {
                wide += 1;
            }
        }
        assert!(wide > 0, "no wide events in 50k draws");
    }

    #[test]
    fn escalations_follow_their_warnings() {
        let mut rng = StdRng::seed_from_u64(9);
        let machine = Machine::blue_waters_scaled(16);
        let mut cfg = FaultConfig::scaled(16);
        // Force the escalation path to fire often.
        cfg.ce_flood_escalation_prob = 0.9;
        cfg.gpu_retirement_escalation_prob = 0.9;
        let mut inj = FaultInjector::new(
            &machine,
            cfg.clone(),
            DetectionModel::blue_waters(),
            Timestamp::PRODUCTION_EPOCH,
            &mut rng,
        )
        .unwrap();
        let mut warnings: std::collections::HashMap<u32, Timestamp> = Default::default();
        let mut matched = 0u32;
        let mut prev = Timestamp::from_unix(0);
        for _ in 0..5_000 {
            let e = inj.next_fault(&mut rng);
            assert!(e.time >= prev, "escalations must preserve time order");
            prev = e.time;
            match e.kind {
                FaultKind::MemoryCeFlood { nid } | FaultKind::GpuPageRetirement { nid } => {
                    warnings.insert(nid.value(), e.time);
                }
                FaultKind::NodeCrash {
                    nid,
                    cause: NodeCrashCause::MemoryUncorrectable,
                }
                | FaultKind::GpuFault {
                    nid,
                    kind: GpuFaultKind::DoubleBitEcc,
                } => {
                    if let Some(&warn_t) = warnings.get(&nid.value()) {
                        let lead = (e.time - warn_t).as_secs();
                        if (cfg.escalation_lead_min_secs..=cfg.escalation_lead_max_secs)
                            .contains(&lead)
                        {
                            matched += 1;
                        }
                    }
                }
                _ => {}
            }
        }
        assert!(
            inj.escalations_scheduled() > 100,
            "{}",
            inj.escalations_scheduled()
        );
        assert!(
            matched > 50,
            "only {matched} escalations landed on their precursor node"
        );
    }

    #[test]
    fn burn_in_concentrates_lethal_faults_early() {
        use crate::config::BurnIn;
        let mut rng = StdRng::seed_from_u64(11);
        let machine = Machine::blue_waters_scaled(16);
        let mut cfg = FaultConfig::scaled(16);
        cfg.burn_in = Some(BurnIn {
            initial_multiplier: 4.0,
            decay_days: 20.0,
        });
        let mut inj = FaultInjector::new(
            &machine,
            cfg,
            DetectionModel::blue_waters(),
            Timestamp::PRODUCTION_EPOCH,
            &mut rng,
        )
        .unwrap();
        let horizon = Timestamp::PRODUCTION_EPOCH + SimDuration::from_days(120);
        let mut early = 0u32;
        let mut late = 0u32;
        loop {
            let e = inj.next_fault(&mut rng);
            if e.time >= horizon {
                break;
            }
            if e.kind.is_lethal() {
                if e.time < Timestamp::PRODUCTION_EPOCH + SimDuration::from_days(60) {
                    early += 1;
                } else {
                    late += 1;
                }
            }
        }
        assert!(
            early + late > 200,
            "too few lethal faults: {}",
            early + late
        );
        // With 4× initial rate decaying over 20 days, the first half of the
        // window must carry well over half the lethal faults.
        assert!(
            early as f64 > 1.5 * late as f64,
            "burn-in invisible: early {early} vs late {late}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, mut ra) = injector(42);
        let (mut b, mut rb) = injector(42);
        for _ in 0..500 {
            assert_eq!(a.next_fault(&mut ra), b.next_fault(&mut rb));
        }
    }
}
