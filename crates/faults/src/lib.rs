//! # bw-faults
//!
//! Stochastic fault model of a Cray XE/XK hybrid machine: what breaks, how
//! often, what it takes down, how long repair takes, and — crucially for the
//! paper's lesson (iii) — whether the failure leaves *log evidence*.
//!
//! ## Mechanisms
//!
//! Three kinds of processes generate the system problems that kill
//! applications:
//!
//! 1. **Node-scoped faults** ([`FaultKind::NodeCrash`],
//!    [`FaultKind::GpuFault`], [`FaultKind::BladeFailure`]): Poisson per
//!    node/blade; they take the node(s) out of service and kill whatever
//!    application occupies them. Exposure grows linearly with `nodes ×
//!    hours`, giving the baseline component of the scale curve.
//! 2. **Machine-wide events** ([`FaultKind::GeminiLinkFailure`],
//!    [`FaultKind::LustreOstFailure`], [`FaultKind::LustreMdsFailover`]):
//!    Poisson over the whole fabric/filesystem. Each event kills a running
//!    application of width `w` and class `τ` with probability
//!    `q_max(τ) · (w / N_τ)^γ(τ)` — wide applications are dramatically more
//!    exposed (they span more of the fabric, have more in-flight I/O and
//!    cannot ride out a quiesce), which produces the super-linear jump the
//!    abstract reports (20× from 10 k → 22 k nodes). The exponents are
//!    solved by `bw-sim`'s calibration module against the abstract's
//!    anchors.
//! 3. **Launch infrastructure failures**: a scale-independent per-run
//!    Bernoulli (ALPS placement/teardown), dominating the failure mass of
//!    the millions of small runs.
//!
//! Warning-only processes (correctable-memory floods, GPU page
//! retirements) produce log noise and leading indicators without killing
//! anything — fodder for LogDiver's filtering stage.
//!
//! ## Detection
//!
//! [`DetectionModel`] assigns each lethal fault a probability of leaving log
//! evidence. CPU-side faults on XE nodes are well instrumented (MCA, EDAC,
//! heartbeats); GPU faults on XK hybrid nodes are not — a large fraction
//! kill the application with nothing in the error logs, which is exactly
//! the paper's "inadequate error detection in hybrid nodes".

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod conn;
pub mod detection;
pub mod injector;
pub mod io;
pub mod kinds;
pub mod perturb;

pub use config::{BurnIn, FaultConfig};
pub use conn::{
    chaos_transcripts, ChaosStream, ConnChaosConfig, Connection, NetChaosConfig, NetFaultPlan,
    RecvOutcome, SendOutcome,
};
pub use detection::{Detectability, DetectionModel};
pub use injector::FaultInjector;
pub use io::{ChaosFs, ChaosFsConfig, ChaosWriter, IoFault, SimulatedLog};
pub use kinds::{FaultEvent, FaultKind, GpuFaultKind, NodeCrashCause, WideKillModel};
pub use perturb::{
    Mutation, PerturbSource, Perturbation, PerturbationPipeline, PerturbationTruth, RawLogs,
    StreamPerturber,
};
