//! Fault-process configuration.

use logdiver_types::NodeType;
use serde::{Deserialize, Serialize};

use crate::kinds::WideKillModel;

/// Non-stationary "burn-in" rate profile: young systems fail more, and the
/// rate decays toward the steady state as weak components are weeded out
/// and software stabilizes (the maturation effect every field study of a
/// new machine reports).
///
/// The multiplier applied to every lethal fault process at age `t` days is
/// `1 + (initial_multiplier − 1) · exp(−t / decay_days)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurnIn {
    /// Rate multiplier at day 0 (≥ 1).
    pub initial_multiplier: f64,
    /// e-folding time of the decay, in days.
    pub decay_days: f64,
}

impl BurnIn {
    /// The multiplier at machine age `days`.
    pub fn multiplier_at(&self, days: f64) -> f64 {
        1.0 + (self.initial_multiplier - 1.0) * (-days / self.decay_days).exp()
    }

    /// Validation.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.initial_multiplier >= 1.0 && self.initial_multiplier.is_finite()) {
            return Err(format!(
                "burn-in initial multiplier invalid: {}",
                self.initial_multiplier
            ));
        }
        if !(self.decay_days > 0.0 && self.decay_days.is_finite()) {
            return Err(format!("burn-in decay invalid: {}", self.decay_days));
        }
        Ok(())
    }
}

/// Rates and models for every fault process.
///
/// All rates are *per hour*; per-node rates are per node-hour. The defaults
/// are engineering priors in the range reported for petascale Cray systems;
/// the wide-kill laws and the launch-failure probability are then solved by
/// `bw-sim::calibration` so the end-to-end measured curves hit the
/// abstract's anchored numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// XE node crash rate per node-hour (MCE, UE, panic, VRM, hang).
    pub xe_node_crash_per_node_hour: f64,
    /// XK node crash rate per node-hour (CPU-side causes only).
    pub xk_node_crash_per_node_hour: f64,
    /// GPU fault rate per XK-node-hour (DBE, bus-off).
    pub gpu_fault_per_node_hour: f64,
    /// Blade-controller failure rate per blade-hour.
    pub blade_failure_per_blade_hour: f64,
    /// Gemini link failures per hour over the whole fabric.
    pub link_failures_per_hour: f64,
    /// Lustre OST failures per hour over the whole filesystem.
    pub ost_failures_per_hour: f64,
    /// MDS failovers per hour.
    pub mds_failovers_per_hour: f64,
    /// Correctable-memory flood episodes per hour (machine-wide, warnings).
    pub ce_floods_per_hour: f64,
    /// GPU page-retirement episodes per hour (XK region, warnings).
    pub gpu_page_retirements_per_hour: f64,
    /// Scheduled blade warm-swap notices per hour (informational).
    pub maintenance_per_hour: f64,
    /// Probability an application run dies at launch to infrastructure
    /// problems (ALPS placement/teardown) — scale-independent.
    pub launch_failure_prob: f64,
    /// Kill law applied to XE applications by machine-wide events.
    pub wide_kill_xe: WideKillModel,
    /// Kill law applied to XK applications by machine-wide events.
    pub wide_kill_xk: WideKillModel,
    /// Probability that a correctable-memory flood escalates into an
    /// uncorrectable error (node crash) on the same node shortly after —
    /// the error-propagation channel the paper's detection discussion
    /// targets (precursors that a proactive system could act on).
    pub ce_flood_escalation_prob: f64,
    /// Probability that GPU page-retirement pressure escalates into a GPU
    /// double-bit error on the same node.
    pub gpu_retirement_escalation_prob: f64,
    /// Shortest precursor lead time in seconds.
    pub escalation_lead_min_secs: i64,
    /// Longest precursor lead time in seconds.
    pub escalation_lead_max_secs: i64,
    /// Mean node repair time in hours (log-normal, σ = 0.8).
    pub node_repair_mean_hours: f64,
    /// Mean blade repair time in hours (log-normal, σ = 0.8).
    pub blade_repair_mean_hours: f64,
    /// Mean Gemini reroute stall in seconds.
    pub reroute_stall_mean_secs: f64,
    /// Optional non-stationary burn-in profile. `None` (the default and the
    /// calibrated mode) keeps every process stationary; enabling it trades
    /// anchor fidelity for early-life realism (see the a5 bench).
    pub burn_in: Option<BurnIn>,
}

impl FaultConfig {
    /// Defaults for the full Blue Waters-scale machine.
    ///
    /// The wide-kill parameters here are placeholders overwritten by the
    /// calibration solve; the node-scoped rates are the priors the solve
    /// keeps fixed.
    pub fn blue_waters() -> Self {
        FaultConfig {
            xe_node_crash_per_node_hour: 2.0e-7,
            xk_node_crash_per_node_hour: 2.5e-7,
            gpu_fault_per_node_hour: 3.5e-6,
            blade_failure_per_blade_hour: 4.0e-8,
            link_failures_per_hour: 0.20,
            ost_failures_per_hour: 0.03,
            mds_failovers_per_hour: 0.005,
            ce_floods_per_hour: 1.5,
            gpu_page_retirements_per_hour: 0.4,
            maintenance_per_hour: 0.08,
            launch_failure_prob: 0.012,
            ce_flood_escalation_prob: 0.003,
            gpu_retirement_escalation_prob: 0.02,
            escalation_lead_min_secs: 600,
            escalation_lead_max_secs: 7_200,
            wide_kill_xe: WideKillModel {
                q_max: 0.75,
                gamma: 4.5,
            },
            wide_kill_xk: WideKillModel {
                q_max: 0.35,
                gamma: 2.8,
            },
            node_repair_mean_hours: 4.0,
            blade_repair_mean_hours: 12.0,
            reroute_stall_mean_secs: 45.0,
            burn_in: None,
        }
    }

    /// Scaled configuration for [`bw_topology::Machine::blue_waters_scaled`].
    ///
    /// Per-node rates are intensive and stay put. The machine-wide lethal
    /// event rate *also* stays put — it is the hazard an application feels
    /// per hour regardless of machine size, and keeping it intensive is
    /// what preserves the anchored `p(w/N)` failure curves on scaled
    /// machines (a real quarter-size Cray would see fewer link failures,
    /// but then its full-scale failure probability would genuinely differ
    /// from Blue Waters'; for reproduction we preserve behaviour, not link
    /// counts). Only the warning/noise volumes shrink with the machine.
    pub fn scaled(divisor: u32) -> Self {
        let mut cfg = Self::blue_waters();
        let d = divisor.max(1) as f64;
        cfg.ce_floods_per_hour /= d;
        cfg.gpu_page_retirements_per_hour /= d;
        cfg.maintenance_per_hour /= d;
        cfg
    }

    /// The node-crash rate for a class.
    pub fn node_crash_rate(&self, ty: NodeType) -> f64 {
        match ty {
            NodeType::Xe => self.xe_node_crash_per_node_hour,
            NodeType::Xk => self.xk_node_crash_per_node_hour,
            NodeType::Service => 0.0,
        }
    }

    /// The wide-kill law for a class.
    pub fn wide_kill(&self, ty: NodeType) -> WideKillModel {
        match ty {
            NodeType::Xk => self.wide_kill_xk,
            _ => self.wide_kill_xe,
        }
    }

    /// Total rate of machine-wide lethal events per hour.
    pub fn wide_event_rate(&self) -> f64 {
        self.link_failures_per_hour + self.ost_failures_per_hour + self.mds_failovers_per_hour
    }

    /// Validation used by the injector.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("xe_node_crash", self.xe_node_crash_per_node_hour),
            ("xk_node_crash", self.xk_node_crash_per_node_hour),
            ("gpu_fault", self.gpu_fault_per_node_hour),
            ("blade_failure", self.blade_failure_per_blade_hour),
            ("link_failures", self.link_failures_per_hour),
            ("ost_failures", self.ost_failures_per_hour),
            ("mds_failovers", self.mds_failovers_per_hour),
            ("ce_floods", self.ce_floods_per_hour),
            ("gpu_page_retirements", self.gpu_page_retirements_per_hour),
            ("maintenance", self.maintenance_per_hour),
        ];
        for (name, r) in rates {
            if !(r.is_finite() && r >= 0.0) {
                return Err(format!("rate {name} invalid: {r}"));
            }
        }
        if !(0.0..1.0).contains(&self.launch_failure_prob) {
            return Err(format!(
                "launch_failure_prob invalid: {}",
                self.launch_failure_prob
            ));
        }
        for (name, p) in [
            ("ce_flood_escalation_prob", self.ce_flood_escalation_prob),
            (
                "gpu_retirement_escalation_prob",
                self.gpu_retirement_escalation_prob,
            ),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} invalid: {p}"));
            }
        }
        if self.escalation_lead_min_secs <= 0
            || self.escalation_lead_max_secs < self.escalation_lead_min_secs
        {
            return Err("escalation lead window invalid".into());
        }
        for (name, m) in [
            ("wide_kill_xe", self.wide_kill_xe),
            ("wide_kill_xk", self.wide_kill_xk),
        ] {
            if !(0.0..=1.0).contains(&m.q_max) || !m.gamma.is_finite() || m.gamma <= 0.0 {
                return Err(format!("{name} invalid: {m:?}"));
            }
        }
        if self.node_repair_mean_hours <= 0.0 || self.blade_repair_mean_hours <= 0.0 {
            return Err("repair means must be positive".into());
        }
        if self.reroute_stall_mean_secs <= 0.0 {
            return Err("reroute stall mean must be positive".into());
        }
        if let Some(b) = &self.burn_in {
            b.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        FaultConfig::blue_waters().validate().unwrap();
        FaultConfig::scaled(16).validate().unwrap();
    }

    #[test]
    fn scaling_shrinks_noise_rates_only() {
        let full = FaultConfig::blue_waters();
        let small = FaultConfig::scaled(10);
        assert!((small.ce_floods_per_hour - full.ce_floods_per_hour / 10.0).abs() < 1e-12);
        // Lethal hazards are intensive: they preserve the anchored curves.
        assert_eq!(small.link_failures_per_hour, full.link_failures_per_hour);
        assert_eq!(
            small.xe_node_crash_per_node_hour,
            full.xe_node_crash_per_node_hour
        );
        assert_eq!(small.launch_failure_prob, full.launch_failure_prob);
    }

    #[test]
    fn per_class_accessors() {
        let cfg = FaultConfig::blue_waters();
        assert!(cfg.node_crash_rate(NodeType::Xk) >= cfg.node_crash_rate(NodeType::Xe));
        assert_eq!(cfg.node_crash_rate(NodeType::Service), 0.0);
        assert!(cfg.wide_kill(NodeType::Xe).gamma > cfg.wide_kill(NodeType::Xk).gamma);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut cfg = FaultConfig::blue_waters();
        cfg.link_failures_per_hour = -1.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::blue_waters();
        cfg.launch_failure_prob = 1.5;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::blue_waters();
        cfg.wide_kill_xe.gamma = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = FaultConfig::blue_waters();
        cfg.node_repair_mean_hours = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn escalation_defaults_are_sane() {
        let cfg = FaultConfig::blue_waters();
        // Escalations must stay a modest addition to the base crash hazard
        // (the calibration includes them; runaway values would starve the
        // wide-kill budget).
        let esc_per_node_hour = cfg.ce_floods_per_hour * cfg.ce_flood_escalation_prob / 26_864.0;
        assert!(
            esc_per_node_hour < 2.0 * cfg.xe_node_crash_per_node_hour,
            "escalation hazard {esc_per_node_hour} dwarfs the base rate"
        );
        let mut bad = cfg.clone();
        bad.ce_flood_escalation_prob = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = cfg.clone();
        bad.escalation_lead_max_secs = 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn burn_in_profile_decays_to_one() {
        let b = BurnIn {
            initial_multiplier: 3.0,
            decay_days: 30.0,
        };
        b.validate().unwrap();
        assert!((b.multiplier_at(0.0) - 3.0).abs() < 1e-12);
        assert!((b.multiplier_at(30.0) - (1.0 + 2.0 / std::f64::consts::E)).abs() < 1e-12);
        assert!(b.multiplier_at(300.0) < 1.01);
        assert!(BurnIn {
            initial_multiplier: 0.5,
            decay_days: 30.0
        }
        .validate()
        .is_err());
        assert!(BurnIn {
            initial_multiplier: 2.0,
            decay_days: 0.0
        }
        .validate()
        .is_err());
        let mut cfg = FaultConfig::blue_waters();
        cfg.burn_in = Some(BurnIn {
            initial_multiplier: 2.0,
            decay_days: -1.0,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn expected_node_failures_are_plausible() {
        // Over 518 days the full machine should lose on the order of
        // hundreds to a few thousand nodes — not zero, not tens of thousands.
        let cfg = FaultConfig::blue_waters();
        let hours = 518.0 * 24.0;
        let expected = cfg.xe_node_crash_per_node_hour * 22_640.0 * hours
            + (cfg.xk_node_crash_per_node_hour + cfg.gpu_fault_per_node_hour) * 4_224.0 * hours;
        assert!(
            expected > 50.0 && expected < 20_000.0,
            "expected {expected}"
        );
    }
}
