//! Fault kinds and their mapping to error categories / spatial scopes.

use bw_topology::torus::Link;
use bw_topology::{MdsId, OstId};
use logdiver_types::{ErrorCategory, NodeId, NodeType, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

/// Root cause of a node crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeCrashCause {
    /// Machine-check exception.
    MachineCheck,
    /// Uncorrectable memory error.
    MemoryUncorrectable,
    /// Kernel panic.
    KernelPanic,
    /// Voltage-regulator fault.
    VoltageFault,
    /// Software wedge — node hangs and is power-cycled.
    Hang,
}

impl NodeCrashCause {
    /// All causes, in sampling order.
    pub const ALL: [NodeCrashCause; 5] = [
        NodeCrashCause::MachineCheck,
        NodeCrashCause::MemoryUncorrectable,
        NodeCrashCause::KernelPanic,
        NodeCrashCause::VoltageFault,
        NodeCrashCause::Hang,
    ];

    /// The error category this cause logs as (when detected).
    pub const fn category(self) -> ErrorCategory {
        match self {
            NodeCrashCause::MachineCheck => ErrorCategory::MachineCheckException,
            NodeCrashCause::MemoryUncorrectable => ErrorCategory::MemoryUncorrectable,
            NodeCrashCause::KernelPanic => ErrorCategory::KernelPanic,
            NodeCrashCause::VoltageFault => ErrorCategory::VoltageFault,
            NodeCrashCause::Hang => ErrorCategory::NodeHang,
        }
    }
}

/// Kind of GPU fault on a hybrid node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuFaultKind {
    /// Double-bit ECC error in device memory.
    DoubleBitEcc,
    /// GPU dropped off the PCIe bus.
    BusOff,
}

impl GpuFaultKind {
    /// The error category this fault logs as (when detected).
    pub const fn category(self) -> ErrorCategory {
        match self {
            GpuFaultKind::DoubleBitEcc => ErrorCategory::GpuDoubleBitError,
            GpuFaultKind::BusOff => ErrorCategory::GpuBusError,
        }
    }
}

/// What broke.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A single node crashed; it needs repair before returning to service.
    NodeCrash {
        /// Victim node.
        nid: NodeId,
        /// Root cause.
        cause: NodeCrashCause,
    },
    /// A GPU failed on a hybrid node; the node reboots.
    GpuFault {
        /// Victim node (must be XK).
        nid: NodeId,
        /// Kind of GPU failure.
        kind: GpuFaultKind,
    },
    /// A blade controller failed: all four nodes of the blade go down.
    BladeFailure {
        /// Blade ordinal (nid / 4).
        blade: u32,
    },
    /// A Gemini link failed: the owning blade wobbles and the whole fabric
    /// reroutes (quiesce), threatening wide applications machine-wide.
    GeminiLinkFailure {
        /// The failed link.
        link: Link,
        /// Duration of the routing quiesce.
        stall: SimDuration,
    },
    /// An object storage target failed over; in-flight I/O errors out.
    LustreOstFailure {
        /// The failed OST.
        ost: OstId,
    },
    /// Metadata server failover; namespace operations stall.
    LustreMdsFailover {
        /// The failing-over MDS.
        mds: MdsId,
    },
    /// Correctable-memory error flood on a node (warning only).
    MemoryCeFlood {
        /// Reporting node.
        nid: NodeId,
    },
    /// GPU page-retirement pressure on a hybrid node (warning only).
    GpuPageRetirement {
        /// Reporting node.
        nid: NodeId,
    },
    /// Scheduled blade warm-swap notice (informational only).
    Maintenance {
        /// Blade ordinal being serviced.
        blade: u32,
    },
}

impl FaultKind {
    /// True when the fault can kill applications.
    pub const fn is_lethal(&self) -> bool {
        !matches!(
            self,
            FaultKind::MemoryCeFlood { .. }
                | FaultKind::GpuPageRetirement { .. }
                | FaultKind::Maintenance { .. }
        )
    }

    /// True when the fault is machine-wide (kills by the width-fraction
    /// law rather than by node intersection).
    pub const fn is_wide(&self) -> bool {
        matches!(
            self,
            FaultKind::GeminiLinkFailure { .. }
                | FaultKind::LustreOstFailure { .. }
                | FaultKind::LustreMdsFailover { .. }
        )
    }

    /// The error category the fault logs under when detected.
    pub const fn category(&self) -> ErrorCategory {
        match self {
            FaultKind::NodeCrash { cause, .. } => cause.category(),
            FaultKind::GpuFault { kind, .. } => kind.category(),
            FaultKind::BladeFailure { .. } => ErrorCategory::BladeControllerFailure,
            FaultKind::GeminiLinkFailure { .. } => ErrorCategory::GeminiLinkFailure,
            FaultKind::LustreOstFailure { .. } => ErrorCategory::LustreOstFailure,
            FaultKind::LustreMdsFailover { .. } => ErrorCategory::LustreMdsFailover,
            FaultKind::MemoryCeFlood { .. } => ErrorCategory::MemoryCorrectable,
            FaultKind::GpuPageRetirement { .. } => ErrorCategory::GpuPageRetirement,
            FaultKind::Maintenance { .. } => ErrorCategory::MaintenanceNotice,
        }
    }
}

/// One sampled fault occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When it strikes.
    pub time: Timestamp,
    /// What broke.
    pub kind: FaultKind,
    /// How long the broken component stays out of service (zero for
    /// warning-only and wide events that down nothing).
    pub repair: SimDuration,
    /// Whether the fault leaves evidence in the error logs (sampled from
    /// the [`crate::DetectionModel`] at injection time).
    pub detected: bool,
}

/// The width-fraction kill law for machine-wide events.
///
/// A wide event kills a running application of width `w` (class size `n`)
/// with probability `q_max · (w / n)^gamma`. Calibrated per node class by
/// `bw-sim` against the abstract's anchors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WideKillModel {
    /// Kill probability at full class width.
    pub q_max: f64,
    /// Super-linearity exponent (> 1 ⇒ wide apps disproportionately hit).
    pub gamma: f64,
}

impl WideKillModel {
    /// Kill probability for an application of `width` nodes out of a class
    /// of `class_size`.
    pub fn kill_probability(&self, width: u32, class_size: u32) -> f64 {
        if class_size == 0 || width == 0 {
            return 0.0;
        }
        let frac = (width.min(class_size) as f64) / class_size as f64;
        (self.q_max * frac.powf(self.gamma)).clamp(0.0, 1.0)
    }
}

/// Which node class a wide event's kill law applies to (`None` = both with
/// the same law).
pub fn wide_kill_class(kind: &FaultKind) -> Option<NodeType> {
    match kind {
        // Interconnect quiesce threatens everything on the torus.
        FaultKind::GeminiLinkFailure { .. } => None,
        // Filesystem events likewise hit both classes.
        FaultKind::LustreOstFailure { .. } | FaultKind::LustreMdsFailover { .. } => None,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_topology::torus::{Dim, Link};
    use bw_topology::TorusCoord;

    #[test]
    fn lethality_classification() {
        let crash = FaultKind::NodeCrash {
            nid: NodeId::new(1),
            cause: NodeCrashCause::KernelPanic,
        };
        assert!(crash.is_lethal());
        assert!(!crash.is_wide());
        let flood = FaultKind::MemoryCeFlood {
            nid: NodeId::new(1),
        };
        assert!(!flood.is_lethal());
        let link = FaultKind::GeminiLinkFailure {
            link: Link {
                coord: TorusCoord { x: 0, y: 0, z: 0 },
                dim: Dim::X,
            },
            stall: SimDuration::from_secs(45),
        };
        assert!(link.is_lethal());
        assert!(link.is_wide());
    }

    #[test]
    fn categories_match_causes() {
        for cause in NodeCrashCause::ALL {
            let k = FaultKind::NodeCrash {
                nid: NodeId::new(0),
                cause,
            };
            assert_eq!(k.category(), cause.category());
        }
        assert_eq!(
            FaultKind::GpuFault {
                nid: NodeId::new(0),
                kind: GpuFaultKind::BusOff
            }
            .category(),
            ErrorCategory::GpuBusError
        );
        assert_eq!(
            FaultKind::LustreOstFailure { ost: OstId::new(3) }.category(),
            ErrorCategory::LustreOstFailure
        );
    }

    #[test]
    fn wide_kill_law_is_superlinear() {
        let m = WideKillModel {
            q_max: 0.8,
            gamma: 4.0,
        };
        let full = m.kill_probability(22_640, 22_640);
        let half = m.kill_probability(11_320, 22_640);
        assert!((full - 0.8).abs() < 1e-12);
        assert!((half - 0.05).abs() < 1e-12, "half width: {half}"); // 0.8 / 16
        assert_eq!(m.kill_probability(0, 22_640), 0.0);
        assert_eq!(m.kill_probability(10, 0), 0.0);
        // Clamped at 1 even for pathological parameters.
        let wild = WideKillModel {
            q_max: 5.0,
            gamma: 0.1,
        };
        assert_eq!(wild.kill_probability(22_640, 22_640), 1.0);
    }

    #[test]
    fn width_is_clamped_to_class() {
        let m = WideKillModel {
            q_max: 0.5,
            gamma: 2.0,
        };
        assert_eq!(m.kill_probability(30_000, 22_640), 0.5);
    }
}
