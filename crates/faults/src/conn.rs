//! Deterministic *connection* chaos for a line-protocol push server.
//!
//! [`io`](crate::io) breaks log files; this module breaks the **network
//! sessions** that carry them to `logdiver-serve` — the failure modes a
//! fleet of pushing clients actually produces:
//!
//! - **mid-line disconnects**: a connection dies with half a command on
//!   the wire; the server must discard the fragment and the client
//!   replays the whole command on its next connection;
//! - **duplicate pushes**: after a reconnect the client replays from its
//!   last acknowledged cursor, re-sending commands the server already
//!   accepted (syslog relays do exactly this);
//! - **interleaved tenant streams**: one connection can carry several
//!   tenants' pushes, and several connections carry one tenant's, in any
//!   shuffle;
//! - **half-open sockets**: the peer vanishes without a FIN — the
//!   connection is never cleanly closed, its buffered fragment never
//!   completes.
//!
//! The generator is pure and caller-seeded: the same streams + config +
//! seed produce byte-identical transcripts, so a failing chaos case
//! replays exactly. The delivery invariant — every command is eventually
//! sent *to completion* at least once, in per-stream order, with any
//! number of duplicates and fragments around it — is what an idempotent
//! (indexed) push protocol needs to reach exactly-once intake; the serve
//! equivalence proptests drive [`chaos_transcripts`] straight into the
//! server core and require the final analyses to match batch.

use rand::Rng;

/// One client's ordered command stream (e.g. all of one tenant's `PUSH`
/// lines). Commands carry no trailing newline; the generator adds
/// framing.
#[derive(Debug, Clone)]
pub struct ChaosStream {
    /// Label for diagnostics (tenant name, tenant/source pair, …).
    pub key: String,
    /// The commands to deliver, in order.
    pub commands: Vec<String>,
}

/// One generated connection: the bytes the server's reader sees, and
/// whether the peer closed cleanly. A half-open connection (`closed ==
/// false`) is never `close_conn`ed by the driver — its trailing fragment
/// sits in the server's buffer forever, which must not block other
/// connections or leak into their streams.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Raw bytes, possibly ending mid-command.
    pub bytes: Vec<u8>,
    /// `false` models a peer that vanished without closing.
    pub closed: bool,
}

/// Probabilities and shape knobs for [`chaos_transcripts`].
#[derive(Debug, Clone, Copy)]
pub struct ConnChaosConfig {
    /// Chance that a command is torn mid-line, killing the connection.
    pub disconnect_prob: f64,
    /// Chance that a delivered command is immediately delivered again.
    pub duplicate_prob: f64,
    /// Chance that, before a command, an already-acknowledged earlier
    /// command from the same stream is replayed (stale-cursor retry).
    pub replay_prob: f64,
    /// Chance that a connection ends half-open instead of closing.
    pub half_open_prob: f64,
    /// Most commands a single connection carries before reconnecting.
    pub max_burst: usize,
    /// Most streams interleaved on one connection.
    pub max_interleave: usize,
}

impl Default for ConnChaosConfig {
    fn default() -> Self {
        ConnChaosConfig {
            disconnect_prob: 0.05,
            duplicate_prob: 0.05,
            replay_prob: 0.05,
            half_open_prob: 0.1,
            max_burst: 32,
            max_interleave: 3,
        }
    }
}

impl ConnChaosConfig {
    /// A calmer profile for large corpora: same failure modes, lower
    /// rates, bigger bursts (keeps transcript blowup bounded).
    pub fn mild() -> Self {
        ConnChaosConfig {
            disconnect_prob: 0.01,
            duplicate_prob: 0.01,
            replay_prob: 0.01,
            half_open_prob: 0.05,
            max_burst: 256,
            max_interleave: 3,
        }
    }
}

/// Turns per-stream command lists into a chaotic but *complete* sequence
/// of connection transcripts: every command appears newline-terminated at
/// least once, streams stay internally ordered (modulo injected replays
/// of already-delivered commands), and the failure modes in the module
/// docs are sprinkled per the config. Deterministic for a given `rng`
/// state.
pub fn chaos_transcripts<R: Rng>(
    streams: &[ChaosStream],
    config: &ConnChaosConfig,
    rng: &mut R,
) -> Vec<Connection> {
    let mut cursors = vec![0usize; streams.len()];
    let mut connections = Vec::new();
    loop {
        let active: Vec<usize> = (0..streams.len())
            .filter(|&s| cursors[s] < streams[s].commands.len())
            .collect();
        if active.is_empty() {
            break;
        }
        // Pick which streams this connection interleaves.
        let take = rng
            .random_range(1..=config.max_interleave.max(1))
            .min(active.len());
        let mut chosen = active.clone();
        // Partial shuffle: the first `take` entries become this
        // connection's streams.
        for i in 0..take {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        chosen.truncate(take);

        let mut bytes = Vec::new();
        let mut torn = false;
        let burst = rng.random_range(1..=config.max_burst.max(1));
        'conn: for n in 0..burst {
            // Round-robin over the chosen streams that still have work.
            let s = chosen[n % chosen.len()];
            let cursor = cursors[s];
            let commands = &streams[s].commands;
            if cursor >= commands.len() {
                if chosen
                    .iter()
                    .all(|&c| cursors[c] >= streams[c].commands.len())
                {
                    break 'conn;
                }
                continue;
            }
            // Stale-cursor replay of something already acknowledged.
            if cursor > 0 && rng.random::<f64>() < config.replay_prob {
                let old = rng.random_range(0..cursor);
                bytes.extend_from_slice(commands[old].as_bytes());
                bytes.push(b'\n');
            }
            let command = &commands[cursor];
            if rng.random::<f64>() < config.disconnect_prob {
                // Torn mid-line: a prefix with no newline, then the
                // connection dies. The cursor does NOT advance — the
                // client replays this command on its next connection.
                let cut = rng.random_range(0..command.len().max(1));
                bytes.extend_from_slice(&command.as_bytes()[..cut]);
                torn = true;
                break 'conn;
            }
            bytes.extend_from_slice(command.as_bytes());
            bytes.push(b'\n');
            cursors[s] = cursor + 1;
            if rng.random::<f64>() < config.duplicate_prob {
                bytes.extend_from_slice(command.as_bytes());
                bytes.push(b'\n');
            }
        }
        // A torn connection is by definition not cleanly closed; an
        // intact one may still go half-open.
        let closed = !torn && rng.random::<f64>() >= config.half_open_prob;
        connections.push(Connection { bytes, closed });
    }
    connections
}

/// Knobs for [`NetFaultPlan`]: per-operation network faults between a
/// resilient client and the serve daemon. Where [`chaos_transcripts`]
/// generates *what the server reads*, this plan decides *what happens to
/// each wire operation* a live client attempts — so a client state
/// machine can be driven through latency, slowloris dribble, stalls,
/// resets, and refused connections, deterministically.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosConfig {
    /// Baseline one-way latency attached to delivered operations, ms.
    pub latency_ms: u64,
    /// Extra jitter on top of the baseline, ms (uniform in `0..=jitter`).
    pub jitter_ms: u64,
    /// Chance a send is dribbled byte-wise (slowloris) instead of
    /// arriving in one piece.
    pub dribble_prob: f64,
    /// Largest chunk of a dribbled send, bytes (≥ 1).
    pub max_dribble_chunk: usize,
    /// Chance a send stalls: the bytes vanish into a half-open socket
    /// and the client's next receive times out.
    pub stall_prob: f64,
    /// Chance an operation dies with a connection reset.
    pub reset_prob: f64,
    /// Chance a connection attempt is refused outright.
    pub connect_fail_prob: f64,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            latency_ms: 2,
            jitter_ms: 8,
            dribble_prob: 0.05,
            max_dribble_chunk: 7,
            stall_prob: 0.03,
            reset_prob: 0.05,
            connect_fail_prob: 0.1,
        }
    }
}

impl NetChaosConfig {
    /// A fault-free profile: everything delivers with bounded latency.
    pub fn calm() -> Self {
        NetChaosConfig {
            dribble_prob: 0.0,
            stall_prob: 0.0,
            reset_prob: 0.0,
            connect_fail_prob: 0.0,
            ..NetChaosConfig::default()
        }
    }
}

/// The fate of one client send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendOutcome {
    /// The bytes arrive, split into these chunk sizes (one entry = one
    /// piece the server's reader sees; `[len]` means a single write),
    /// after `delay_ms` of network time.
    Delivered {
        /// Simulated one-way delay.
        delay_ms: u64,
        /// Chunk sizes summing to the sent length (empty for a
        /// zero-length send).
        chunks: Vec<usize>,
    },
    /// The bytes vanish into a half-open socket: the peer never sees
    /// them and the client's next receive times out.
    Stalled,
    /// The connection dies mid-send (ECONNRESET).
    Reset,
}

/// The fate of one client receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvOutcome {
    /// The response arrives after `delay_ms`.
    Delivered {
        /// Simulated one-way delay.
        delay_ms: u64,
    },
    /// The connection dies before the response (mid-response reset).
    Reset,
}

/// A seeded, self-contained stream of network-fault decisions (splitmix64
/// inside — no external RNG needed, so the client crate does not have to
/// depend on `rand` to be tested under chaos). Two plans with the same
/// seed and config produce identical outcome sequences.
#[derive(Debug, Clone)]
pub struct NetFaultPlan {
    state: u64,
    config: NetChaosConfig,
}

impl NetFaultPlan {
    /// A plan drawing from `seed`.
    pub fn new(seed: u64, config: NetChaosConfig) -> Self {
        NetFaultPlan {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D,
            config,
        }
    }

    /// The next raw splitmix64 draw.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Latency + jitter for one delivered operation.
    fn delay_ms(&mut self) -> u64 {
        let jitter = if self.config.jitter_ms == 0 {
            0
        } else {
            self.next_u64() % (self.config.jitter_ms + 1)
        };
        self.config.latency_ms + jitter
    }

    /// Whether a connection attempt succeeds.
    pub fn connect_ok(&mut self) -> bool {
        !self.chance(self.config.connect_fail_prob)
    }

    /// Decides the fate of a `len`-byte send.
    pub fn send(&mut self, len: usize) -> SendOutcome {
        if self.chance(self.config.reset_prob) {
            return SendOutcome::Reset;
        }
        if self.chance(self.config.stall_prob) {
            return SendOutcome::Stalled;
        }
        let delay_ms = self.delay_ms();
        let chunks = if len > 0 && self.chance(self.config.dribble_prob) {
            let mut chunks = Vec::new();
            let mut left = len;
            while left > 0 {
                let take = 1 + (self.next_u64() as usize) % self.config.max_dribble_chunk.max(1);
                let take = take.min(left);
                chunks.push(take);
                left -= take;
            }
            chunks
        } else if len > 0 {
            vec![len]
        } else {
            Vec::new()
        };
        SendOutcome::Delivered { delay_ms, chunks }
    }

    /// Decides the fate of one receive (the response to a send that was
    /// delivered).
    pub fn recv(&mut self) -> RecvOutcome {
        if self.chance(self.config.reset_prob) {
            RecvOutcome::Reset
        } else {
            RecvOutcome::Delivered {
                delay_ms: self.delay_ms(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn streams() -> Vec<ChaosStream> {
        (0..3)
            .map(|t| ChaosStream {
                key: format!("tenant{t}"),
                commands: (0..40)
                    .map(|i| format!("PUSH tenant{t} syslog {i} line-{i}"))
                    .collect(),
            })
            .collect()
    }

    /// Reassembles what a server would apply: complete lines only,
    /// fragments discarded at connection end.
    fn delivered_complete(connections: &[Connection]) -> Vec<String> {
        let mut lines = Vec::new();
        for conn in connections {
            let mut buf: &[u8] = &conn.bytes;
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                lines.push(String::from_utf8_lossy(&buf[..pos]).into_owned());
                buf = &buf[pos + 1..];
            }
            // Remainder: a torn fragment, dropped with the connection.
        }
        lines
    }

    #[test]
    fn every_command_is_delivered_in_order_per_stream() {
        let streams = streams();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let conns = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut rng);
            let lines = delivered_complete(&conns);
            for stream in &streams {
                // First-delivery order must match command order.
                let mut expect = stream.commands.iter();
                let mut seen = std::collections::HashSet::new();
                for line in lines.iter().filter(|l| stream.commands.contains(l)) {
                    if seen.contains(line.as_str()) {
                        continue; // duplicate or replay — allowed anywhere after first
                    }
                    assert_eq!(
                        Some(line.as_str()),
                        expect.next().map(String::as_str),
                        "seed {seed}: stream {} out of order",
                        stream.key
                    );
                    seen.insert(line.as_str());
                }
                assert_eq!(
                    seen.len(),
                    stream.commands.len(),
                    "seed {seed}: stream {} incomplete",
                    stream.key
                );
            }
        }
    }

    #[test]
    fn transcripts_are_deterministic_under_a_seed() {
        let streams = streams();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ca = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut a);
        let cb = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut b);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.closed, y.closed);
        }
    }

    #[test]
    fn chaos_actually_happens() {
        let streams = streams();
        let mut rng = StdRng::seed_from_u64(3);
        let config = ConnChaosConfig {
            disconnect_prob: 0.2,
            duplicate_prob: 0.2,
            replay_prob: 0.2,
            half_open_prob: 0.3,
            max_burst: 8,
            max_interleave: 3,
        };
        let conns = chaos_transcripts(&streams, &config, &mut rng);
        assert!(conns.iter().any(|c| !c.closed), "some half-open/torn");
        assert!(
            conns
                .iter()
                .any(|c| !c.bytes.is_empty() && c.bytes.last() != Some(&b'\n')),
            "some torn fragment"
        );
        let lines = delivered_complete(&conns);
        let unique: std::collections::HashSet<&String> = lines.iter().collect();
        assert!(lines.len() > unique.len(), "some duplicates were injected");
        assert!(conns.len() > 10, "many reconnects");
    }

    #[test]
    fn interleaving_mixes_streams_within_one_connection() {
        let streams = streams();
        let mut rng = StdRng::seed_from_u64(11);
        let config = ConnChaosConfig {
            disconnect_prob: 0.0,
            duplicate_prob: 0.0,
            replay_prob: 0.0,
            half_open_prob: 0.0,
            max_burst: 64,
            max_interleave: 3,
        };
        let conns = chaos_transcripts(&streams, &config, &mut rng);
        let mixed = conns.iter().any(|c| {
            let text = String::from_utf8_lossy(&c.bytes);
            let mut tenants: Vec<&str> = text
                .lines()
                .filter_map(|l| l.split_whitespace().nth(1))
                .collect();
            tenants.dedup();
            tenants.len() > 1
        });
        assert!(mixed, "at least one connection carries several tenants");
    }

    #[test]
    fn empty_streams_produce_no_connections() {
        let mut rng = StdRng::seed_from_u64(1);
        let conns = chaos_transcripts(&[], &ConnChaosConfig::default(), &mut rng);
        assert!(conns.is_empty());
    }

    #[test]
    fn net_plan_is_deterministic_under_a_seed() {
        let config = NetChaosConfig::default();
        let mut a = NetFaultPlan::new(42, config);
        let mut b = NetFaultPlan::new(42, config);
        for len in [0usize, 1, 17, 300, 4096] {
            assert_eq!(a.connect_ok(), b.connect_ok());
            assert_eq!(a.send(len), b.send(len));
            assert_eq!(a.recv(), b.recv());
        }
        let mut c = NetFaultPlan::new(43, config);
        let seq_a: Vec<SendOutcome> = (0..50).map(|_| NetFaultPlan::send(&mut a, 100)).collect();
        let seq_c: Vec<SendOutcome> = (0..50).map(|_| c.send(100)).collect();
        assert_ne!(seq_a, seq_c, "different seeds diverge");
    }

    #[test]
    fn dribble_chunks_sum_to_the_sent_length() {
        let config = NetChaosConfig {
            dribble_prob: 1.0,
            stall_prob: 0.0,
            reset_prob: 0.0,
            max_dribble_chunk: 5,
            ..NetChaosConfig::default()
        };
        let mut plan = NetFaultPlan::new(9, config);
        for len in [1usize, 2, 64, 999] {
            match plan.send(len) {
                SendOutcome::Delivered { chunks, .. } => {
                    assert_eq!(chunks.iter().sum::<usize>(), len);
                    assert!(chunks.iter().all(|&c| (1..=5).contains(&c)), "{chunks:?}");
                    // Chunks are ≤ 5 bytes, so anything longer must split.
                    assert!(chunks.len() > 1 || len <= 5, "len {len} not dribbled");
                }
                other => panic!("expected delivery, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_fault_kind_occurs_and_calm_never_faults() {
        let mut plan = NetFaultPlan::new(5, NetChaosConfig::default());
        let mut stalls = 0;
        let mut resets = 0;
        let mut dribbles = 0;
        let mut refused = 0;
        for _ in 0..2_000 {
            if !plan.connect_ok() {
                refused += 1;
            }
            match plan.send(100) {
                SendOutcome::Stalled => stalls += 1,
                SendOutcome::Reset => resets += 1,
                SendOutcome::Delivered { chunks, delay_ms } => {
                    assert!(delay_ms <= 10);
                    if chunks.len() > 1 {
                        dribbles += 1;
                    }
                }
            }
            if plan.recv() == RecvOutcome::Reset {
                resets += 1;
            }
        }
        assert!(stalls > 0, "no stalls");
        assert!(resets > 0, "no resets");
        assert!(dribbles > 0, "no dribbles");
        assert!(refused > 0, "no refused connects");

        let mut calm = NetFaultPlan::new(5, NetChaosConfig::calm());
        for _ in 0..500 {
            assert!(calm.connect_ok());
            assert!(
                matches!(calm.send(64), SendOutcome::Delivered { chunks, .. } if chunks == vec![64])
            );
            assert!(matches!(calm.recv(), RecvOutcome::Delivered { .. }));
        }
    }
}
