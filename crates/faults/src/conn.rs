//! Deterministic *connection* chaos for a line-protocol push server.
//!
//! [`io`](crate::io) breaks log files; this module breaks the **network
//! sessions** that carry them to `logdiver-serve` — the failure modes a
//! fleet of pushing clients actually produces:
//!
//! - **mid-line disconnects**: a connection dies with half a command on
//!   the wire; the server must discard the fragment and the client
//!   replays the whole command on its next connection;
//! - **duplicate pushes**: after a reconnect the client replays from its
//!   last acknowledged cursor, re-sending commands the server already
//!   accepted (syslog relays do exactly this);
//! - **interleaved tenant streams**: one connection can carry several
//!   tenants' pushes, and several connections carry one tenant's, in any
//!   shuffle;
//! - **half-open sockets**: the peer vanishes without a FIN — the
//!   connection is never cleanly closed, its buffered fragment never
//!   completes.
//!
//! The generator is pure and caller-seeded: the same streams + config +
//! seed produce byte-identical transcripts, so a failing chaos case
//! replays exactly. The delivery invariant — every command is eventually
//! sent *to completion* at least once, in per-stream order, with any
//! number of duplicates and fragments around it — is what an idempotent
//! (indexed) push protocol needs to reach exactly-once intake; the serve
//! equivalence proptests drive [`chaos_transcripts`] straight into the
//! server core and require the final analyses to match batch.

use rand::Rng;

/// One client's ordered command stream (e.g. all of one tenant's `PUSH`
/// lines). Commands carry no trailing newline; the generator adds
/// framing.
#[derive(Debug, Clone)]
pub struct ChaosStream {
    /// Label for diagnostics (tenant name, tenant/source pair, …).
    pub key: String,
    /// The commands to deliver, in order.
    pub commands: Vec<String>,
}

/// One generated connection: the bytes the server's reader sees, and
/// whether the peer closed cleanly. A half-open connection (`closed ==
/// false`) is never `close_conn`ed by the driver — its trailing fragment
/// sits in the server's buffer forever, which must not block other
/// connections or leak into their streams.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Raw bytes, possibly ending mid-command.
    pub bytes: Vec<u8>,
    /// `false` models a peer that vanished without closing.
    pub closed: bool,
}

/// Probabilities and shape knobs for [`chaos_transcripts`].
#[derive(Debug, Clone, Copy)]
pub struct ConnChaosConfig {
    /// Chance that a command is torn mid-line, killing the connection.
    pub disconnect_prob: f64,
    /// Chance that a delivered command is immediately delivered again.
    pub duplicate_prob: f64,
    /// Chance that, before a command, an already-acknowledged earlier
    /// command from the same stream is replayed (stale-cursor retry).
    pub replay_prob: f64,
    /// Chance that a connection ends half-open instead of closing.
    pub half_open_prob: f64,
    /// Most commands a single connection carries before reconnecting.
    pub max_burst: usize,
    /// Most streams interleaved on one connection.
    pub max_interleave: usize,
}

impl Default for ConnChaosConfig {
    fn default() -> Self {
        ConnChaosConfig {
            disconnect_prob: 0.05,
            duplicate_prob: 0.05,
            replay_prob: 0.05,
            half_open_prob: 0.1,
            max_burst: 32,
            max_interleave: 3,
        }
    }
}

impl ConnChaosConfig {
    /// A calmer profile for large corpora: same failure modes, lower
    /// rates, bigger bursts (keeps transcript blowup bounded).
    pub fn mild() -> Self {
        ConnChaosConfig {
            disconnect_prob: 0.01,
            duplicate_prob: 0.01,
            replay_prob: 0.01,
            half_open_prob: 0.05,
            max_burst: 256,
            max_interleave: 3,
        }
    }
}

/// Turns per-stream command lists into a chaotic but *complete* sequence
/// of connection transcripts: every command appears newline-terminated at
/// least once, streams stay internally ordered (modulo injected replays
/// of already-delivered commands), and the failure modes in the module
/// docs are sprinkled per the config. Deterministic for a given `rng`
/// state.
pub fn chaos_transcripts<R: Rng>(
    streams: &[ChaosStream],
    config: &ConnChaosConfig,
    rng: &mut R,
) -> Vec<Connection> {
    let mut cursors = vec![0usize; streams.len()];
    let mut connections = Vec::new();
    loop {
        let active: Vec<usize> = (0..streams.len())
            .filter(|&s| cursors[s] < streams[s].commands.len())
            .collect();
        if active.is_empty() {
            break;
        }
        // Pick which streams this connection interleaves.
        let take = rng
            .random_range(1..=config.max_interleave.max(1))
            .min(active.len());
        let mut chosen = active.clone();
        // Partial shuffle: the first `take` entries become this
        // connection's streams.
        for i in 0..take {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        chosen.truncate(take);

        let mut bytes = Vec::new();
        let mut torn = false;
        let burst = rng.random_range(1..=config.max_burst.max(1));
        'conn: for n in 0..burst {
            // Round-robin over the chosen streams that still have work.
            let s = chosen[n % chosen.len()];
            let cursor = cursors[s];
            let commands = &streams[s].commands;
            if cursor >= commands.len() {
                if chosen
                    .iter()
                    .all(|&c| cursors[c] >= streams[c].commands.len())
                {
                    break 'conn;
                }
                continue;
            }
            // Stale-cursor replay of something already acknowledged.
            if cursor > 0 && rng.random::<f64>() < config.replay_prob {
                let old = rng.random_range(0..cursor);
                bytes.extend_from_slice(commands[old].as_bytes());
                bytes.push(b'\n');
            }
            let command = &commands[cursor];
            if rng.random::<f64>() < config.disconnect_prob {
                // Torn mid-line: a prefix with no newline, then the
                // connection dies. The cursor does NOT advance — the
                // client replays this command on its next connection.
                let cut = rng.random_range(0..command.len().max(1));
                bytes.extend_from_slice(&command.as_bytes()[..cut]);
                torn = true;
                break 'conn;
            }
            bytes.extend_from_slice(command.as_bytes());
            bytes.push(b'\n');
            cursors[s] = cursor + 1;
            if rng.random::<f64>() < config.duplicate_prob {
                bytes.extend_from_slice(command.as_bytes());
                bytes.push(b'\n');
            }
        }
        // A torn connection is by definition not cleanly closed; an
        // intact one may still go half-open.
        let closed = !torn && rng.random::<f64>() >= config.half_open_prob;
        connections.push(Connection { bytes, closed });
    }
    connections
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn streams() -> Vec<ChaosStream> {
        (0..3)
            .map(|t| ChaosStream {
                key: format!("tenant{t}"),
                commands: (0..40)
                    .map(|i| format!("PUSH tenant{t} syslog {i} line-{i}"))
                    .collect(),
            })
            .collect()
    }

    /// Reassembles what a server would apply: complete lines only,
    /// fragments discarded at connection end.
    fn delivered_complete(connections: &[Connection]) -> Vec<String> {
        let mut lines = Vec::new();
        for conn in connections {
            let mut buf: &[u8] = &conn.bytes;
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                lines.push(String::from_utf8_lossy(&buf[..pos]).into_owned());
                buf = &buf[pos + 1..];
            }
            // Remainder: a torn fragment, dropped with the connection.
        }
        lines
    }

    #[test]
    fn every_command_is_delivered_in_order_per_stream() {
        let streams = streams();
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let conns = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut rng);
            let lines = delivered_complete(&conns);
            for stream in &streams {
                // First-delivery order must match command order.
                let mut expect = stream.commands.iter();
                let mut seen = std::collections::HashSet::new();
                for line in lines.iter().filter(|l| stream.commands.contains(l)) {
                    if seen.contains(line.as_str()) {
                        continue; // duplicate or replay — allowed anywhere after first
                    }
                    assert_eq!(
                        Some(line.as_str()),
                        expect.next().map(String::as_str),
                        "seed {seed}: stream {} out of order",
                        stream.key
                    );
                    seen.insert(line.as_str());
                }
                assert_eq!(
                    seen.len(),
                    stream.commands.len(),
                    "seed {seed}: stream {} incomplete",
                    stream.key
                );
            }
        }
    }

    #[test]
    fn transcripts_are_deterministic_under_a_seed() {
        let streams = streams();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let ca = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut a);
        let cb = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut b);
        assert_eq!(ca.len(), cb.len());
        for (x, y) in ca.iter().zip(&cb) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.closed, y.closed);
        }
    }

    #[test]
    fn chaos_actually_happens() {
        let streams = streams();
        let mut rng = StdRng::seed_from_u64(3);
        let config = ConnChaosConfig {
            disconnect_prob: 0.2,
            duplicate_prob: 0.2,
            replay_prob: 0.2,
            half_open_prob: 0.3,
            max_burst: 8,
            max_interleave: 3,
        };
        let conns = chaos_transcripts(&streams, &config, &mut rng);
        assert!(conns.iter().any(|c| !c.closed), "some half-open/torn");
        assert!(
            conns
                .iter()
                .any(|c| !c.bytes.is_empty() && c.bytes.last() != Some(&b'\n')),
            "some torn fragment"
        );
        let lines = delivered_complete(&conns);
        let unique: std::collections::HashSet<&String> = lines.iter().collect();
        assert!(lines.len() > unique.len(), "some duplicates were injected");
        assert!(conns.len() > 10, "many reconnects");
    }

    #[test]
    fn interleaving_mixes_streams_within_one_connection() {
        let streams = streams();
        let mut rng = StdRng::seed_from_u64(11);
        let config = ConnChaosConfig {
            disconnect_prob: 0.0,
            duplicate_prob: 0.0,
            replay_prob: 0.0,
            half_open_prob: 0.0,
            max_burst: 64,
            max_interleave: 3,
        };
        let conns = chaos_transcripts(&streams, &config, &mut rng);
        let mixed = conns.iter().any(|c| {
            let text = String::from_utf8_lossy(&c.bytes);
            let mut tenants: Vec<&str> = text
                .lines()
                .filter_map(|l| l.split_whitespace().nth(1))
                .collect();
            tenants.dedup();
            tenants.len() > 1
        });
        assert!(mixed, "at least one connection carries several tenants");
    }

    #[test]
    fn empty_streams_produce_no_connections() {
        let mut rng = StdRng::seed_from_u64(1);
        let conns = chaos_transcripts(&[], &ConnChaosConfig::default(), &mut rng);
        assert!(conns.is_empty());
    }
}
