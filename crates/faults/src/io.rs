//! Deterministic I/O fault injection for the ingestion path.
//!
//! The rest of this crate breaks the *machine*; this module breaks the
//! *log files themselves* — the failure modes a long-running collector
//! actually meets on shared filesystems:
//!
//! - **torn writes**: the writer flushes half a line, the rest arrives
//!   (much) later or never;
//! - **truncation**: bytes vanish off the end (a crashed writer, a
//!   copy-truncate racing the reader);
//! - **rotation**: the file is replaced wholesale and restarts short;
//! - **duplicate replay**: a line is delivered twice (syslog relays love
//!   doing this after reconnects).
//!
//! Everything is driven by a caller-seeded [`rand::Rng`], so a failing
//! chaos case replays exactly from its seed. [`SimulatedLog`] is a plain
//! in-memory byte file; the stream crate's tailer reads it through its own
//! `LogFile` abstraction, exercising the identical consumption code that
//! runs against the filesystem.

use rand::Rng;

/// An in-memory log file whose content evolves under fault injection.
#[derive(Debug, Clone, Default)]
pub struct SimulatedLog {
    data: Vec<u8>,
    /// Unflushed second half of a torn write; the next append flushes it
    /// first (the writer finally got scheduled again).
    pending: Vec<u8>,
    rotations: u64,
}

impl SimulatedLog {
    /// An empty log.
    pub fn new() -> Self {
        SimulatedLog::default()
    }

    /// Current visible length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when nothing is visible yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads up to `max` bytes at `offset` — the tailer's view.
    pub fn read_at(&self, offset: u64, max: usize) -> Vec<u8> {
        let lo = (offset as usize).min(self.data.len());
        let hi = lo.saturating_add(max).min(self.data.len());
        self.data[lo..hi].to_vec()
    }

    /// Times the file has been rotated (content replaced).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// True when a torn write's tail has not been flushed yet.
    pub fn has_torn_tail(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Which fault (if any) one [`ChaosWriter::append_line`] call injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The line was written cleanly.
    None,
    /// Only a prefix of the line reached the file; the rest flushes on the
    /// next append.
    TornWrite,
    /// Bytes were chopped off the end of the file after the write.
    Truncated,
    /// The file was rotated: visible content cleared before the write.
    Rotated,
    /// The line was delivered twice.
    Duplicated,
}

/// Per-append fault probabilities (each checked independently, torn
/// first; at most one fault fires per append).
#[derive(Debug, Clone, Copy)]
pub struct ChaosWriter {
    /// Probability a write is torn mid-line.
    pub torn_prob: f64,
    /// Probability trailing bytes are truncated after the write.
    pub truncate_prob: f64,
    /// Probability the file rotates before the write.
    pub rotate_prob: f64,
    /// Probability the line is replayed (written twice).
    pub duplicate_prob: f64,
}

impl Default for ChaosWriter {
    fn default() -> Self {
        ChaosWriter {
            torn_prob: 0.03,
            truncate_prob: 0.01,
            rotate_prob: 0.005,
            duplicate_prob: 0.02,
        }
    }
}

impl ChaosWriter {
    /// A writer that never misbehaves (control runs).
    pub fn clean() -> Self {
        ChaosWriter {
            torn_prob: 0.0,
            truncate_prob: 0.0,
            rotate_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }

    /// Appends `line` (a newline is added) to `log`, possibly injecting
    /// one fault. Any torn tail left by a previous append is flushed
    /// first. Returns what happened.
    pub fn append_line<R: Rng>(&self, log: &mut SimulatedLog, line: &str, rng: &mut R) -> IoFault {
        // The wedged writer from last time finally flushes.
        if !log.pending.is_empty() {
            let tail = std::mem::take(&mut log.pending);
            log.data.extend_from_slice(&tail);
        }
        let mut full = line.as_bytes().to_vec();
        full.push(b'\n');

        if self.torn_prob > 0.0 && rng.random::<f64>() < self.torn_prob && full.len() > 1 {
            // Split anywhere, including mid-UTF-8-sequence: the visible
            // prefix may be an invalid-UTF-8 fragment with no newline.
            let split = rng.random_range(1..full.len());
            log.data.extend_from_slice(&full[..split]);
            log.pending = full[split..].to_vec();
            return IoFault::TornWrite;
        }
        if self.rotate_prob > 0.0 && rng.random::<f64>() < self.rotate_prob {
            log.data.clear();
            log.rotations += 1;
            log.data.extend_from_slice(&full);
            return IoFault::Rotated;
        }
        if self.duplicate_prob > 0.0 && rng.random::<f64>() < self.duplicate_prob {
            log.data.extend_from_slice(&full);
            log.data.extend_from_slice(&full);
            return IoFault::Duplicated;
        }
        log.data.extend_from_slice(&full);
        if self.truncate_prob > 0.0 && rng.random::<f64>() < self.truncate_prob {
            let chop = rng.random_range(1..=full.len().min(24));
            let keep = log.data.len().saturating_sub(chop);
            log.data.truncate(keep);
            return IoFault::Truncated;
        }
        IoFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn lines(log: &SimulatedLog) -> Vec<String> {
        String::from_utf8_lossy(&log.data)
            .split('\n')
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn clean_writer_is_faithful() {
        let w = ChaosWriter::clean();
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..50 {
            assert_eq!(
                w.append_line(&mut log, &format!("line {i}"), &mut rng),
                IoFault::None
            );
        }
        let got = lines(&log);
        assert_eq!(got.len(), 51); // trailing empty after final newline
        assert_eq!(got[0], "line 0");
        assert_eq!(got[49], "line 49");
        assert!(!log.has_torn_tail());
    }

    #[test]
    fn torn_write_heals_on_next_append() {
        let w = ChaosWriter {
            torn_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            w.append_line(&mut log, "abcdefgh", &mut rng),
            IoFault::TornWrite
        );
        assert!(log.has_torn_tail());
        let visible_before = log.len();
        assert!(visible_before < 9);
        // Next append flushes the old tail before (tearing) the new line.
        w.append_line(&mut log, "second", &mut rng);
        let text = String::from_utf8_lossy(&log.data).into_owned();
        assert!(text.starts_with("abcdefgh\n"), "{text:?}");
    }

    #[test]
    fn rotation_resets_and_counts() {
        let w = ChaosWriter {
            rotate_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(3);
        w.append_line(&mut log, "first", &mut rng);
        w.append_line(&mut log, "second", &mut rng);
        assert_eq!(log.rotations(), 2);
        assert_eq!(String::from_utf8_lossy(&log.data), "second\n");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let w = ChaosWriter::default();
        let run = |seed: u64| {
            let mut log = SimulatedLog::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let faults: Vec<IoFault> = (0..200)
                .map(|i| w.append_line(&mut log, &format!("entry {i}"), &mut rng))
                .collect();
            (log.data.clone(), faults)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn duplicate_writes_line_twice() {
        let w = ChaosWriter {
            duplicate_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            w.append_line(&mut log, "dup", &mut rng),
            IoFault::Duplicated
        );
        assert_eq!(String::from_utf8_lossy(&log.data), "dup\ndup\n");
    }
}
