//! Deterministic I/O fault injection for the ingestion path.
//!
//! The rest of this crate breaks the *machine*; this module breaks the
//! *log files themselves* — the failure modes a long-running collector
//! actually meets on shared filesystems:
//!
//! - **torn writes**: the writer flushes half a line, the rest arrives
//!   (much) later or never;
//! - **truncation**: bytes vanish off the end (a crashed writer, a
//!   copy-truncate racing the reader);
//! - **rotation**: the file is replaced wholesale and restarts short;
//! - **duplicate replay**: a line is delivered twice (syslog relays love
//!   doing this after reconnects).
//!
//! Everything is driven by a caller-seeded [`rand::Rng`], so a failing
//! chaos case replays exactly from its seed. [`SimulatedLog`] is a plain
//! in-memory byte file; the stream crate's tailer reads it through its own
//! `LogFile` abstraction, exercising the identical consumption code that
//! runs against the filesystem.

use rand::Rng;

/// An in-memory log file whose content evolves under fault injection.
#[derive(Debug, Clone, Default)]
pub struct SimulatedLog {
    data: Vec<u8>,
    /// Unflushed second half of a torn write; the next append flushes it
    /// first (the writer finally got scheduled again).
    pending: Vec<u8>,
    rotations: u64,
}

impl SimulatedLog {
    /// An empty log.
    pub fn new() -> Self {
        SimulatedLog::default()
    }

    /// Current visible length in bytes.
    pub fn len(&self) -> u64 {
        self.data.len() as u64
    }

    /// True when nothing is visible yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads up to `max` bytes at `offset` — the tailer's view.
    pub fn read_at(&self, offset: u64, max: usize) -> Vec<u8> {
        let lo = (offset as usize).min(self.data.len());
        let hi = lo.saturating_add(max).min(self.data.len());
        self.data[lo..hi].to_vec()
    }

    /// Times the file has been rotated (content replaced).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// True when a torn write's tail has not been flushed yet.
    pub fn has_torn_tail(&self) -> bool {
        !self.pending.is_empty()
    }
}

/// Which fault (if any) one [`ChaosWriter::append_line`] call injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The line was written cleanly.
    None,
    /// Only a prefix of the line reached the file; the rest flushes on the
    /// next append.
    TornWrite,
    /// Bytes were chopped off the end of the file after the write.
    Truncated,
    /// The file was rotated: visible content cleared before the write.
    Rotated,
    /// The line was delivered twice.
    Duplicated,
}

/// Per-append fault probabilities (each checked independently, torn
/// first; at most one fault fires per append).
#[derive(Debug, Clone, Copy)]
pub struct ChaosWriter {
    /// Probability a write is torn mid-line.
    pub torn_prob: f64,
    /// Probability trailing bytes are truncated after the write.
    pub truncate_prob: f64,
    /// Probability the file rotates before the write.
    pub rotate_prob: f64,
    /// Probability the line is replayed (written twice).
    pub duplicate_prob: f64,
}

impl Default for ChaosWriter {
    fn default() -> Self {
        ChaosWriter {
            torn_prob: 0.03,
            truncate_prob: 0.01,
            rotate_prob: 0.005,
            duplicate_prob: 0.02,
        }
    }
}

impl ChaosWriter {
    /// A writer that never misbehaves (control runs).
    pub fn clean() -> Self {
        ChaosWriter {
            torn_prob: 0.0,
            truncate_prob: 0.0,
            rotate_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }

    /// Appends `line` (a newline is added) to `log`, possibly injecting
    /// one fault. Any torn tail left by a previous append is flushed
    /// first. Returns what happened.
    pub fn append_line<R: Rng>(&self, log: &mut SimulatedLog, line: &str, rng: &mut R) -> IoFault {
        // The wedged writer from last time finally flushes.
        if !log.pending.is_empty() {
            let tail = std::mem::take(&mut log.pending);
            log.data.extend_from_slice(&tail);
        }
        let mut full = line.as_bytes().to_vec();
        full.push(b'\n');

        if self.torn_prob > 0.0 && rng.random::<f64>() < self.torn_prob && full.len() > 1 {
            // Split anywhere, including mid-UTF-8-sequence: the visible
            // prefix may be an invalid-UTF-8 fragment with no newline.
            let split = rng.random_range(1..full.len());
            log.data.extend_from_slice(&full[..split]);
            log.pending = full[split..].to_vec();
            return IoFault::TornWrite;
        }
        if self.rotate_prob > 0.0 && rng.random::<f64>() < self.rotate_prob {
            log.data.clear();
            log.rotations += 1;
            log.data.extend_from_slice(&full);
            return IoFault::Rotated;
        }
        if self.duplicate_prob > 0.0 && rng.random::<f64>() < self.duplicate_prob {
            log.data.extend_from_slice(&full);
            log.data.extend_from_slice(&full);
            return IoFault::Duplicated;
        }
        log.data.extend_from_slice(&full);
        if self.truncate_prob > 0.0 && rng.random::<f64>() < self.truncate_prob {
            let chop = rng.random_range(1..=full.len().min(24));
            let keep = log.data.len().saturating_sub(chop);
            log.data.truncate(keep);
            return IoFault::Truncated;
        }
        IoFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn lines(log: &SimulatedLog) -> Vec<String> {
        String::from_utf8_lossy(&log.data)
            .split('\n')
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn clean_writer_is_faithful() {
        let w = ChaosWriter::clean();
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..50 {
            assert_eq!(
                w.append_line(&mut log, &format!("line {i}"), &mut rng),
                IoFault::None
            );
        }
        let got = lines(&log);
        assert_eq!(got.len(), 51); // trailing empty after final newline
        assert_eq!(got[0], "line 0");
        assert_eq!(got[49], "line 49");
        assert!(!log.has_torn_tail());
    }

    #[test]
    fn torn_write_heals_on_next_append() {
        let w = ChaosWriter {
            torn_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(
            w.append_line(&mut log, "abcdefgh", &mut rng),
            IoFault::TornWrite
        );
        assert!(log.has_torn_tail());
        let visible_before = log.len();
        assert!(visible_before < 9);
        // Next append flushes the old tail before (tearing) the new line.
        w.append_line(&mut log, "second", &mut rng);
        let text = String::from_utf8_lossy(&log.data).into_owned();
        assert!(text.starts_with("abcdefgh\n"), "{text:?}");
    }

    #[test]
    fn rotation_resets_and_counts() {
        let w = ChaosWriter {
            rotate_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(3);
        w.append_line(&mut log, "first", &mut rng);
        w.append_line(&mut log, "second", &mut rng);
        assert_eq!(log.rotations(), 2);
        assert_eq!(String::from_utf8_lossy(&log.data), "second\n");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let w = ChaosWriter::default();
        let run = |seed: u64| {
            let mut log = SimulatedLog::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let faults: Vec<IoFault> = (0..200)
                .map(|i| w.append_line(&mut log, &format!("entry {i}"), &mut rng))
                .collect();
            (log.data.clone(), faults)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn duplicate_writes_line_twice() {
        let w = ChaosWriter {
            duplicate_prob: 1.0,
            ..ChaosWriter::clean()
        };
        let mut log = SimulatedLog::new();
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            w.append_line(&mut log, "dup", &mut rng),
            IoFault::Duplicated
        );
        assert_eq!(String::from_utf8_lossy(&log.data), "dup\ndup\n");
    }
}

// ---------------------------------------------------------------------------
// Chaos filesystem
// ---------------------------------------------------------------------------

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use logdiver_types::fsio::Fs;

/// Per-operation fault probabilities for [`ChaosFs`] — the storage faults
/// a replicated checkpoint store must survive: hard write errors, full
/// disks, fsync lies, failed renames, silently torn writes, at-rest bit
/// rot, and stalled I/O. Each probability is checked independently per
/// operation; at most one fault fires.
#[derive(Debug, Clone, Copy)]
pub struct ChaosFsConfig {
    /// Probability a write fails with EIO before any byte lands.
    pub write_eio_prob: f64,
    /// Probability a write persists only a prefix and returns ENOSPC
    /// ([`io::ErrorKind::StorageFull`]).
    pub write_enospc_prob: f64,
    /// Probability a write persists all bytes but the sync "fails" (EIO
    /// returned, content present — the fsync-lie case).
    pub sync_fail_prob: f64,
    /// Probability a rename fails with EIO (both paths untouched).
    pub rename_fail_prob: f64,
    /// Probability a write persists only a prefix and *returns `Ok`* —
    /// the silent torn write only an integrity footer can catch.
    pub torn_write_prob: f64,
    /// Probability that, after a successful write, one byte of some other
    /// at-rest file is flipped (latent bit rot surfacing later).
    pub bit_rot_prob: f64,
    /// Probability an operation fails with [`io::ErrorKind::TimedOut`]
    /// (stalled I/O on a hung mount; nothing persisted).
    pub stall_prob: f64,
}

impl ChaosFsConfig {
    /// No faults at all (control runs).
    pub fn clean() -> Self {
        ChaosFsConfig {
            write_eio_prob: 0.0,
            write_enospc_prob: 0.0,
            sync_fail_prob: 0.0,
            rename_fail_prob: 0.0,
            torn_write_prob: 0.0,
            bit_rot_prob: 0.0,
            stall_prob: 0.0,
        }
    }
}

impl Default for ChaosFsConfig {
    fn default() -> Self {
        ChaosFsConfig {
            write_eio_prob: 0.02,
            write_enospc_prob: 0.02,
            sync_fail_prob: 0.01,
            rename_fail_prob: 0.02,
            torn_write_prob: 0.02,
            bit_rot_prob: 0.01,
            stall_prob: 0.01,
        }
    }
}

#[derive(Debug)]
struct ChaosFsState {
    config: ChaosFsConfig,
    files: BTreeMap<PathBuf, Vec<u8>>,
    dirs: BTreeSet<PathBuf>,
    /// Subtrees that hard-fail every operation (a dead replica mount).
    down: BTreeSet<PathBuf>,
    rng: u64,
    faults: u64,
}

impl ChaosFsState {
    /// splitmix64 — the same deterministic generator the health machines
    /// use for jitter; one `u64` of state, seeded by the caller.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    fn is_down(&self, path: &Path) -> bool {
        self.down.iter().any(|d| path.starts_with(d))
    }

    /// Flips one byte of one pseudo-randomly chosen at-rest file (not
    /// `except`, which was just written and is still "in cache").
    fn rot_one(&mut self, except: &Path) {
        let victims: Vec<PathBuf> = self
            .files
            .iter()
            .filter(|(p, data)| p.as_path() != except && !data.is_empty())
            .map(|(p, _)| p.clone())
            .collect();
        if victims.is_empty() {
            return;
        }
        let which = (self.next_u64() % victims.len() as u64) as usize;
        let offset_pick = self.next_u64();
        let bit_pick = self.next_u64();
        if let Some(data) = self.files.get_mut(&victims[which]) {
            let offset = (offset_pick % data.len() as u64) as usize;
            data[offset] ^= 1 << (bit_pick % 8);
            self.faults += 1;
        }
    }
}

fn eio(what: &str, path: &Path) -> io::Error {
    io::Error::other(format!("chaos: {what} ({})", path.display()))
}

/// A deterministic, seeded, in-memory filesystem with injectable storage
/// faults, implementing the same narrow [`Fs`] seam the production code
/// writes through. Cloning shares the underlying disk, so a "restarted"
/// daemon built over a clone sees exactly what the "crashed" one
/// persisted — which is how the durability proptests model kill -9 plus
/// remount.
#[derive(Debug, Clone)]
pub struct ChaosFs {
    state: Arc<Mutex<ChaosFsState>>,
}

impl ChaosFs {
    /// A chaos filesystem over an empty disk.
    pub fn new(seed: u64, config: ChaosFsConfig) -> Self {
        ChaosFs {
            state: Arc::new(Mutex::new(ChaosFsState {
                config,
                files: BTreeMap::new(),
                dirs: BTreeSet::new(),
                down: BTreeSet::new(),
                rng: seed,
                faults: 0,
            })),
        }
    }

    /// A faultless in-memory filesystem (control runs and fast tests).
    pub fn clean() -> Self {
        Self::new(0, ChaosFsConfig::clean())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosFsState> {
        // A poisoned lock means a *test* thread panicked mid-operation;
        // propagating the panic is the right behavior there.
        self.state.lock().expect("chaos fs lock")
    }

    /// Marks (or clears) a directory subtree as down: every operation
    /// under it fails with EIO until cleared — a dead replica mount.
    pub fn set_down(&self, dir: &Path, down: bool) {
        let mut st = self.lock();
        if down {
            st.down.insert(dir.to_path_buf());
        } else {
            st.down.remove(dir);
        }
    }

    /// Flips one byte of the file at `path` (directed at-rest corruption
    /// for tests). Returns false when the file is missing or empty.
    pub fn corrupt(&self, path: &Path) -> bool {
        let mut st = self.lock();
        let offset_pick = st.next_u64();
        match st.files.get_mut(path) {
            Some(data) if !data.is_empty() => {
                let offset = (offset_pick % data.len() as u64) as usize;
                data[offset] ^= 0x01;
                true
            }
            _ => false,
        }
    }

    /// Truncates the file at `path` to a strict prefix (directed torn
    /// write for tests). Returns false when the file is missing or empty.
    pub fn truncate(&self, path: &Path, keep: usize) -> bool {
        let mut st = self.lock();
        match st.files.get_mut(path) {
            Some(data) if !data.is_empty() => {
                data.truncate(keep.min(data.len().saturating_sub(1)));
                true
            }
            _ => false,
        }
    }

    /// Removes every file under `dir` (the whole replica vanishes).
    pub fn remove_tree(&self, dir: &Path) {
        let mut st = self.lock();
        st.files.retain(|p, _| !p.starts_with(dir));
        st.dirs.retain(|p| !p.starts_with(dir));
    }

    /// The paths of every file currently on the disk, sorted.
    pub fn file_paths(&self) -> Vec<PathBuf> {
        self.lock().files.keys().cloned().collect()
    }

    /// The current content of one file, if present.
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().files.get(path).cloned()
    }

    /// How many faults have been injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.lock().faults
    }
}

impl Fs for ChaosFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        if st.is_down(path) {
            return Err(eio("replica down", path));
        }
        let cfg = st.config;
        if st.chance(cfg.stall_prob) {
            st.faults += 1;
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "chaos: stalled read",
            ));
        }
        st.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "chaos: no such file"))
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.lock();
        if st.is_down(path) {
            return Err(eio("replica down", path));
        }
        let cfg = st.config;
        if st.chance(cfg.stall_prob) {
            st.faults += 1;
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "chaos: stalled write",
            ));
        }
        if st.chance(cfg.write_eio_prob) {
            st.faults += 1;
            return Err(eio("write error", path));
        }
        if st.chance(cfg.write_enospc_prob) {
            st.faults += 1;
            let keep = if bytes.is_empty() {
                0
            } else {
                (st.next_u64() % bytes.len() as u64) as usize
            };
            st.files.insert(path.to_path_buf(), bytes[..keep].to_vec());
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: disk full",
            ));
        }
        if st.chance(cfg.torn_write_prob) && bytes.len() > 1 {
            st.faults += 1;
            let keep = 1 + (st.next_u64() % (bytes.len() - 1) as u64) as usize;
            st.files.insert(path.to_path_buf(), bytes[..keep].to_vec());
            return Ok(()); // the silent tear: caller believes it landed
        }
        st.files.insert(path.to_path_buf(), bytes.to_vec());
        if st.chance(cfg.sync_fail_prob) {
            st.faults += 1;
            return Err(eio("sync failed", path));
        }
        if st.chance(cfg.bit_rot_prob) {
            st.rot_one(path);
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.is_down(from) || st.is_down(to) {
            return Err(eio("replica down", from));
        }
        let cfg = st.config;
        if st.chance(cfg.rename_fail_prob) {
            st.faults += 1;
            return Err(eio("rename failed", from));
        }
        match st.files.remove(from) {
            Some(data) => {
                st.files.insert(to.to_path_buf(), data);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "chaos: no such file",
            )),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.is_down(path) {
            return Err(eio("replica down", path));
        }
        match st.files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "chaos: no such file",
            )),
        }
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        if st.is_down(dir) {
            return Err(eio("replica down", dir));
        }
        st.dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.lock();
        if st.is_down(dir) {
            return Err(eio("replica down", dir));
        }
        let mut names: Vec<String> = st
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.lock();
        st.files.contains_key(path) || st.dirs.contains(path)
    }
}

#[cfg(test)]
mod chaos_fs_tests {
    use super::*;

    #[test]
    fn clean_fs_round_trips() {
        let fs = ChaosFs::clean();
        let dir = Path::new("/replica0");
        fs.create_dir_all(dir).unwrap();
        fs.write(&dir.join("t.ckpt"), b"hello").unwrap();
        assert_eq!(fs.read(&dir.join("t.ckpt")).unwrap(), b"hello");
        assert_eq!(fs.list(dir).unwrap(), vec!["t.ckpt"]);
        fs.rename(&dir.join("t.ckpt"), &dir.join("u.ckpt")).unwrap();
        assert!(fs.exists(&dir.join("u.ckpt")));
        assert!(!fs.exists(&dir.join("t.ckpt")));
    }

    #[test]
    fn clones_share_the_disk() {
        let fs = ChaosFs::clean();
        let other = fs.clone();
        fs.write(Path::new("/a"), b"x").unwrap();
        assert_eq!(other.read(Path::new("/a")).unwrap(), b"x");
    }

    #[test]
    fn down_replica_fails_every_op() {
        let fs = ChaosFs::clean();
        fs.create_dir_all(Path::new("/r1")).unwrap();
        fs.write(Path::new("/r1/t.ckpt"), b"x").unwrap();
        fs.set_down(Path::new("/r1"), true);
        assert!(fs.read(Path::new("/r1/t.ckpt")).is_err());
        assert!(fs.write(Path::new("/r1/t.ckpt"), b"y").is_err());
        assert!(fs.list(Path::new("/r1")).is_err());
        fs.set_down(Path::new("/r1"), false);
        assert_eq!(fs.read(Path::new("/r1/t.ckpt")).unwrap(), b"x");
    }

    #[test]
    fn torn_write_persists_a_strict_prefix_and_lies() {
        let config = ChaosFsConfig {
            torn_write_prob: 1.0,
            ..ChaosFsConfig::clean()
        };
        let fs = ChaosFs::new(11, config);
        fs.write(Path::new("/t"), b"0123456789").unwrap(); // Ok — the lie
        let got = fs.contents(Path::new("/t")).unwrap();
        assert!(got.len() < 10 && !got.is_empty(), "{got:?}");
        assert_eq!(&got[..], &b"0123456789"[..got.len()]);
    }

    #[test]
    fn enospc_fails_with_storage_full() {
        let config = ChaosFsConfig {
            write_enospc_prob: 1.0,
            ..ChaosFsConfig::clean()
        };
        let fs = ChaosFs::new(5, config);
        let err = fs.write(Path::new("/t"), b"abc").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
    }

    #[test]
    fn bit_rot_hits_at_rest_files_not_the_fresh_write() {
        let config = ChaosFsConfig {
            bit_rot_prob: 1.0,
            ..ChaosFsConfig::clean()
        };
        let fs = ChaosFs::new(3, config);
        fs.write(Path::new("/old"), b"pristine").unwrap();
        fs.write(Path::new("/new"), b"fresh").unwrap();
        assert_eq!(fs.contents(Path::new("/new")).unwrap(), b"fresh");
        assert_ne!(fs.contents(Path::new("/old")).unwrap(), b"pristine");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let run = |seed: u64| {
            let fs = ChaosFs::new(seed, ChaosFsConfig::default());
            let mut outcomes = Vec::new();
            for i in 0..200 {
                let path = PathBuf::from(format!("/f{}", i % 7));
                outcomes.push(fs.write(&path, format!("payload {i}").as_bytes()).is_ok());
            }
            let disk: Vec<(PathBuf, Vec<u8>)> = fs
                .file_paths()
                .into_iter()
                .map(|p| {
                    let c = fs.contents(&p).unwrap();
                    (p, c)
                })
                .collect();
            (outcomes, disk, fs.faults_injected())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1);
    }

    #[test]
    fn directed_corrupt_and_truncate() {
        let fs = ChaosFs::clean();
        fs.write(Path::new("/t"), b"abcdef").unwrap();
        assert!(fs.corrupt(Path::new("/t")));
        assert_ne!(fs.contents(Path::new("/t")).unwrap(), b"abcdef");
        assert!(fs.truncate(Path::new("/t"), 2));
        assert_eq!(fs.contents(Path::new("/t")).unwrap().len(), 2);
        assert!(!fs.corrupt(Path::new("/missing")));
    }
}
