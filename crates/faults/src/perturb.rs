//! Adversarial log perturbation: seeded, composable corruptions of raw
//! log text, with a machine-readable record of exactly what was mutated.
//!
//! The rest of this crate breaks the machine and [`crate::io`] breaks the
//! file I/O; this module breaks the *content* of the logs the way real
//! collection infrastructure does over a 518-day campaign:
//!
//! - **clock skew / drift**: one source's clock is offset or slowly
//!   wanders from the others;
//! - **duplicate replay**: a relay reconnect delivers lines twice;
//! - **record drop**: lines silently vanish;
//! - **reordering**: a line arrives long after its timestamp — beyond any
//!   reasonable lateness window;
//! - **source outage**: a source emits *nothing* for hours (the failure a
//!   coverage tracker must catch);
//! - **corruption**: a line is mangled past parseability;
//! - **apid / jobid recycling**: the launcher reuses identifiers, aliasing
//!   unrelated runs.
//!
//! Every perturbation is driven by a seeded RNG (a failing case replays
//! exactly) and reports a [`PerturbationTruth`]: the campaign runner
//! scores attribution quality against simulator ground truth while
//! *knowing* what was done to the logs, and the stream property tests
//! check that health-machine quarantines line up with the injected
//! corruption.
//!
//! Per-line perturbations use one RNG stream *per source*, so feeding a
//! live interleaved stream ([`StreamPerturber`]) and rewriting a log
//! directory ([`PerturbationPipeline::apply`]) produce byte-identical
//! results for the same seed. Identifier recycling needs the whole file
//! and is therefore directory-only.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use logdiver_types::{SimDuration, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A raw log source, mirroring the five files a collection directory
/// holds. (Named to avoid clashing with the stream engine's `Source`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PerturbSource {
    /// Consolidated syslog (`messages.log`).
    Syslog,
    /// Hardware error log (`hwerr.log`).
    HwErr,
    /// ALPS `apsys` log (`apsys.log`).
    Alps,
    /// Torque accounting log (`torque.log`).
    Torque,
    /// HSN netwatch log (`netwatch.log`).
    Netwatch,
}

impl PerturbSource {
    /// All sources in canonical file order.
    pub const ALL: [PerturbSource; 5] = [
        PerturbSource::Syslog,
        PerturbSource::HwErr,
        PerturbSource::Alps,
        PerturbSource::Torque,
        PerturbSource::Netwatch,
    ];

    /// Dense index in [`PerturbSource::ALL`] order.
    pub const fn index(self) -> usize {
        match self {
            PerturbSource::Syslog => 0,
            PerturbSource::HwErr => 1,
            PerturbSource::Alps => 2,
            PerturbSource::Torque => 3,
            PerturbSource::Netwatch => 4,
        }
    }

    /// Conventional file name inside a log directory.
    pub const fn file_name(self) -> &'static str {
        match self {
            PerturbSource::Syslog => "messages.log",
            PerturbSource::HwErr => "hwerr.log",
            PerturbSource::Alps => "apsys.log",
            PerturbSource::Torque => "torque.log",
            PerturbSource::Netwatch => "netwatch.log",
        }
    }
}

/// An in-memory copy of a five-file log directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawLogs {
    lines: [Vec<String>; 5],
}

impl RawLogs {
    /// Empty logs.
    pub fn new() -> Self {
        RawLogs::default()
    }

    /// The lines of one source.
    pub fn lines(&self, source: PerturbSource) -> &[String] {
        &self.lines[source.index()]
    }

    /// Mutable lines of one source.
    pub fn lines_mut(&mut self, source: PerturbSource) -> &mut Vec<String> {
        &mut self.lines[source.index()]
    }

    /// Appends a line to one source.
    pub fn push(&mut self, source: PerturbSource, line: impl Into<String>) {
        self.lines[source.index()].push(line.into());
    }

    /// Total lines across all sources.
    pub fn total_lines(&self) -> usize {
        self.lines.iter().map(Vec::len).sum()
    }

    /// Earliest and latest parseable timestamp across all sources.
    pub fn extent(&self) -> Option<(Timestamp, Timestamp)> {
        let mut lo: Option<Timestamp> = None;
        let mut hi: Option<Timestamp> = None;
        for lines in &self.lines {
            for line in lines {
                if let Some(ts) = line_timestamp(line) {
                    lo = Some(lo.map_or(ts, |l| l.min(ts)));
                    hi = Some(hi.map_or(ts, |h| h.max(ts)));
                }
            }
        }
        Some((lo?, hi?))
    }

    /// Reads a log directory (absent files load as empty sources).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "file not found".
    pub fn read_dir(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let mut logs = RawLogs::new();
        for s in PerturbSource::ALL {
            let path = dir.join(s.file_name());
            match fs::read_to_string(&path) {
                Ok(text) => {
                    logs.lines[s.index()] = text.lines().map(str::to_owned).collect();
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(logs)
    }

    /// Writes all five files into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn write_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for s in PerturbSource::ALL {
            let mut text = self.lines[s.index()].join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            fs::write(dir.join(s.file_name()), text)?;
        }
        Ok(())
    }
}

/// Timestamp of a log line (all five formats lead with
/// `YYYY-MM-DD HH:MM:SS`).
pub fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// Rewrites the leading timestamp of a line.
fn with_timestamp(line: &str, ts: Timestamp) -> String {
    match line.get(19..) {
        Some(rest) => format!("{ts}{rest}"),
        None => line.to_string(),
    }
}

/// Mangles a line past parseability (a torn or garbled write).
fn corrupt_line(line: &str) -> String {
    let keep = line.len().min(24);
    format!("~CORRUPT~{}", &line[..keep])
}

/// One composable corruption. See the module docs for the field-failure
/// each models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Perturbation {
    /// Shift every timestamp of one source by a constant offset.
    ClockSkew {
        /// The skewed source.
        source: PerturbSource,
        /// The constant offset (may be negative).
        offset: SimDuration,
    },
    /// Let one source's clock wander: each line is shifted by
    /// `drift_per_hour × hours-since-the-source's-first-line`.
    ClockDrift {
        /// The drifting source.
        source: PerturbSource,
        /// Accumulated drift per elapsed hour.
        drift_per_hour: SimDuration,
    },
    /// Deliver each line twice with probability `prob`.
    DuplicateReplay {
        /// The replayed source.
        source: PerturbSource,
        /// Per-line replay probability.
        prob: f64,
    },
    /// Silently delete each line with probability `prob`.
    RecordDrop {
        /// The lossy source.
        source: PerturbSource,
        /// Per-line drop probability.
        prob: f64,
    },
    /// Delay each line (with probability `prob`) so it arrives after
    /// every line timestamped up to `delay` later — out-of-order past any
    /// lateness window shorter than `delay`. Timestamps are unchanged.
    Reorder {
        /// The reordered source.
        source: PerturbSource,
        /// Per-line delay probability.
        prob: f64,
        /// Arrival delay of a displaced line.
        delay: SimDuration,
    },
    /// Drop *everything* one source produced inside a window — the silent
    /// outage a coverage tracker must detect.
    SourceOutage {
        /// The silent source.
        source: PerturbSource,
        /// Window start.
        start: Timestamp,
        /// Window length.
        duration: SimDuration,
    },
    /// Mangle each line past parseability with probability `prob`.
    Corrupt {
        /// The garbled source.
        source: PerturbSource,
        /// Per-line corruption probability.
        prob: f64,
    },
    /// Rewrite the apids of the last `count` applications to reuse the
    /// apids of the first `count` — the launcher's id counter wrapped.
    /// Directory-only.
    ApidRecycle {
        /// How many identifiers to alias.
        count: usize,
    },
    /// Rewrite the job ids of the last `count` jobs (in Torque *and* the
    /// ALPS `batch=` field) to reuse the first `count`. Directory-only.
    JobIdRecycle {
        /// How many identifiers to alias.
        count: usize,
    },
}

impl Perturbation {
    /// The source a per-line perturbation targets (`None` for the
    /// whole-corpus recycling kinds).
    pub fn source(&self) -> Option<PerturbSource> {
        match self {
            Perturbation::ClockSkew { source, .. }
            | Perturbation::ClockDrift { source, .. }
            | Perturbation::DuplicateReplay { source, .. }
            | Perturbation::RecordDrop { source, .. }
            | Perturbation::Reorder { source, .. }
            | Perturbation::SourceOutage { source, .. }
            | Perturbation::Corrupt { source, .. } => Some(*source),
            Perturbation::ApidRecycle { .. } | Perturbation::JobIdRecycle { .. } => None,
        }
    }

    /// True when the perturbation can run line-by-line over a live stream.
    pub fn is_stream_safe(&self) -> bool {
        self.source().is_some()
    }
}

/// What one applied perturbation actually did — the ground truth the
/// campaign scorer and the stream property tests consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Constant skew applied.
    ClockSkew {
        /// Skewed source.
        source: PerturbSource,
        /// Offset in seconds.
        offset_secs: i64,
        /// Lines rewritten.
        lines: u64,
    },
    /// Drift applied.
    ClockDrift {
        /// Drifting source.
        source: PerturbSource,
        /// Largest accumulated shift, in seconds.
        max_drift_secs: i64,
        /// Lines rewritten.
        lines: u64,
    },
    /// Lines delivered twice.
    Duplicated {
        /// Replayed source.
        source: PerturbSource,
        /// Lines duplicated.
        count: u64,
    },
    /// Lines silently deleted.
    Dropped {
        /// Lossy source.
        source: PerturbSource,
        /// Lines deleted.
        count: u64,
    },
    /// Lines delayed past their timestamp order.
    Reordered {
        /// Reordered source.
        source: PerturbSource,
        /// Lines displaced.
        count: u64,
        /// Arrival delay in seconds.
        delay_secs: i64,
    },
    /// A silent source window.
    Outage {
        /// Silent source.
        source: PerturbSource,
        /// Window start.
        start: Timestamp,
        /// Window end.
        end: Timestamp,
        /// Lines swallowed by the window.
        dropped: u64,
    },
    /// Lines mangled past parseability.
    Corrupted {
        /// Garbled source.
        source: PerturbSource,
        /// Lines mangled.
        count: u64,
    },
    /// Apids aliased: `(late_original, reused_early_id)` pairs.
    ApidRecycled {
        /// Aliased identifier pairs.
        pairs: Vec<(u64, u64)>,
    },
    /// Job ids aliased: `(late_original, reused_early_id)` pairs.
    JobIdRecycled {
        /// Aliased identifier pairs.
        pairs: Vec<(u64, u64)>,
    },
}

/// Machine-readable record of everything a pipeline run mutated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbationTruth {
    /// The seed the pipeline ran with.
    pub seed: u64,
    /// One record per applied perturbation, in pipeline order.
    pub mutations: Vec<Mutation>,
}

impl PerturbationTruth {
    /// Lines mangled past parseability for one source.
    pub fn corrupted(&self, source: PerturbSource) -> u64 {
        self.mutations
            .iter()
            .map(|m| match m {
                Mutation::Corrupted { source: s, count } if *s == source => *count,
                _ => 0,
            })
            .sum()
    }

    /// Lines duplicated for one source.
    pub fn duplicated(&self, source: PerturbSource) -> u64 {
        self.mutations
            .iter()
            .map(|m| match m {
                Mutation::Duplicated { source: s, count } if *s == source => *count,
                _ => 0,
            })
            .sum()
    }

    /// Every apid touched by recycling (originals and reused ids) — the
    /// runs a scorer must exclude as identity-ambiguous.
    pub fn recycled_apids(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for m in &self.mutations {
            if let Mutation::ApidRecycled { pairs } = m {
                for &(a, b) in pairs {
                    out.push(a);
                    out.push(b);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The largest absolute timestamp displacement any mutation applied
    /// (skew, drift, or arrival delay), in seconds.
    pub fn max_displacement_secs(&self) -> i64 {
        self.mutations
            .iter()
            .map(|m| match m {
                Mutation::ClockSkew { offset_secs, .. } => offset_secs.abs(),
                Mutation::ClockDrift { max_drift_secs, .. } => max_drift_secs.abs(),
                Mutation::Reordered { delay_secs, .. } => *delay_secs,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Total silent-outage seconds injected.
    pub fn outage_secs(&self) -> i64 {
        self.mutations
            .iter()
            .map(|m| match m {
                Mutation::Outage { start, end, .. } => (*end - *start).as_secs(),
                _ => 0,
            })
            .sum()
    }
}

/// Why a pipeline cannot run in a given mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerturbError {
    /// A directory-only perturbation was handed to [`StreamPerturber`].
    NotStreamSafe(&'static str),
}

impl fmt::Display for PerturbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerturbError::NotStreamSafe(kind) => {
                write!(
                    f,
                    "perturbation {kind} needs the whole file; it cannot run over a live stream"
                )
            }
        }
    }
}

impl std::error::Error for PerturbError {}

/// Per-step accumulator shared by the directory and stream drivers.
#[derive(Debug, Clone, Copy, Default)]
struct StepStats {
    applied: u64,
    max_secs: i64,
}

/// Per-line perturbation engine for one source: one RNG stream, one held
/// buffer for reordering, one drift anchor.
#[derive(Debug)]
struct SourceEngine {
    rng: StdRng,
    drift_anchor: Option<Timestamp>,
    /// Lines held back by `Reorder`: `(release_at, seq, line)`.
    held: Vec<(Timestamp, u64, String)>,
    held_seq: u64,
}

impl SourceEngine {
    fn new(seed: u64, source: PerturbSource) -> Self {
        // Distinct deterministic RNG stream per source, so interleaving
        // sources (live) vs. whole files (directory) draws identically.
        SourceEngine {
            rng: StdRng::seed_from_u64(
                seed ^ (0x9e37_79b9_7f4a_7c15u64 ^ (source.index() as u64) << 32),
            ),
            drift_anchor: None,
            held: Vec::new(),
            held_seq: 0,
        }
    }

    /// Runs one line through every step targeting `source`, appending the
    /// resulting output lines (possibly none, possibly several once
    /// replays and released held lines are counted) to `out`.
    fn push(
        &mut self,
        source: PerturbSource,
        line: &str,
        steps: &[Perturbation],
        stats: &mut [StepStats],
        out: &mut Vec<String>,
    ) {
        // (order key, text); the key survives corruption so reordering
        // still releases on the original clock.
        let mut items: Vec<(Option<Timestamp>, String)> =
            vec![(line_timestamp(line), line.to_string())];
        let mut hold = false;
        let mut hold_delay = SimDuration::ZERO;
        for (idx, step) in steps.iter().enumerate() {
            if step.source() != Some(source) {
                continue;
            }
            match *step {
                Perturbation::ClockSkew { offset, .. } => {
                    for (ts, text) in items.iter_mut() {
                        if let Some(t) = ts {
                            *t += offset;
                            *text = with_timestamp(text, *t);
                            stats[idx].applied += 1;
                        }
                    }
                }
                Perturbation::ClockDrift { drift_per_hour, .. } => {
                    for (ts, text) in items.iter_mut() {
                        if let Some(t) = ts {
                            let anchor = *self.drift_anchor.get_or_insert(*t);
                            let elapsed = (*t - anchor).as_secs();
                            let drift = drift_per_hour.as_secs() * elapsed / 3_600;
                            *t += SimDuration::from_secs(drift);
                            *text = with_timestamp(text, *t);
                            stats[idx].applied += 1;
                            stats[idx].max_secs = stats[idx].max_secs.max(drift.abs());
                        }
                    }
                }
                Perturbation::SourceOutage {
                    start, duration, ..
                } => {
                    items.retain(|(ts, _)| {
                        let inside = ts.is_some_and(|t| t >= start && t < start + duration);
                        if inside {
                            stats[idx].applied += 1;
                        }
                        !inside
                    });
                }
                Perturbation::RecordDrop { prob, .. } => {
                    items.retain(|_| {
                        let drop = self.rng.random::<f64>() < prob;
                        if drop {
                            stats[idx].applied += 1;
                        }
                        !drop
                    });
                }
                Perturbation::Corrupt { prob, .. } => {
                    for (_, text) in items.iter_mut() {
                        if self.rng.random::<f64>() < prob {
                            *text = corrupt_line(text);
                            stats[idx].applied += 1;
                        }
                    }
                }
                Perturbation::DuplicateReplay { prob, .. } => {
                    let mut replayed = Vec::new();
                    for item in &items {
                        if self.rng.random::<f64>() < prob {
                            replayed.push(item.clone());
                            stats[idx].applied += 1;
                        }
                    }
                    items.extend(replayed);
                }
                Perturbation::Reorder { prob, delay, .. } => {
                    if !items.is_empty() && self.rng.random::<f64>() < prob {
                        hold = true;
                        hold_delay = delay;
                        stats[idx].applied += items.len() as u64;
                        stats[idx].max_secs = stats[idx].max_secs.max(delay.as_secs());
                    }
                }
                Perturbation::ApidRecycle { .. } | Perturbation::JobIdRecycle { .. } => {}
            }
        }
        let now = items.iter().filter_map(|(ts, _)| *ts).max();
        if hold {
            for (ts, text) in items {
                let release_at = ts.map_or_else(far_past, |t| t + hold_delay);
                self.held.push((release_at, self.held_seq, text));
                self.held_seq += 1;
            }
        } else {
            // Late lines come home: everything held whose delay has
            // elapsed on this source's clock surfaces *after* the current
            // line — which is exactly what makes it late.
            for (_, text) in items {
                out.push(text);
            }
        }
        if let Some(now) = now {
            self.release(now, out);
        }
    }

    fn release(&mut self, now: Timestamp, out: &mut Vec<String>) {
        if self.held.iter().any(|(at, _, _)| *at <= now) {
            self.held.sort_by_key(|h| (h.0, h.1));
            while let Some((at, _, _)) = self.held.first() {
                if *at > now {
                    break;
                }
                out.push(self.held.remove(0).2);
            }
        }
    }

    fn flush(&mut self, out: &mut Vec<String>) {
        self.held.sort_by_key(|h| (h.0, h.1));
        for (_, _, text) in self.held.drain(..) {
            out.push(text);
        }
    }
}

fn far_past() -> Timestamp {
    Timestamp::from_unix(i64::MIN / 4)
}

/// A seeded, ordered list of perturbations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerturbationPipeline {
    seed: u64,
    steps: Vec<Perturbation>,
}

impl PerturbationPipeline {
    /// An empty pipeline with the given seed.
    pub fn new(seed: u64) -> Self {
        PerturbationPipeline {
            seed,
            steps: Vec::new(),
        }
    }

    /// Appends a perturbation (applied in insertion order).
    pub fn with(mut self, p: Perturbation) -> Self {
        self.steps.push(p);
        self
    }

    /// The configured steps.
    pub fn steps(&self) -> &[Perturbation] {
        &self.steps
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when every step can run over a live stream.
    pub fn is_stream_safe(&self) -> bool {
        self.steps.iter().all(Perturbation::is_stream_safe)
    }

    /// Applies every perturbation to an in-memory log directory and
    /// reports exactly what changed.
    pub fn apply(&self, logs: &mut RawLogs) -> PerturbationTruth {
        let mut stats = vec![StepStats::default(); self.steps.len()];
        // Per-line steps first, via the same engine the stream mode uses.
        for source in PerturbSource::ALL {
            if !self.steps.iter().any(|s| s.source() == Some(source)) {
                continue;
            }
            let mut engine = SourceEngine::new(self.seed, source);
            let mut out = Vec::new();
            for line in logs.lines(source) {
                engine.push(source, line, &self.steps, &mut stats, &mut out);
            }
            engine.flush(&mut out);
            *logs.lines_mut(source) = out;
        }
        // Whole-corpus identifier recycling second.
        let mut mutations = Vec::new();
        for (idx, step) in self.steps.iter().enumerate() {
            let m = match *step {
                Perturbation::ClockSkew { source, offset } => Mutation::ClockSkew {
                    source,
                    offset_secs: offset.as_secs(),
                    lines: stats[idx].applied,
                },
                Perturbation::ClockDrift { source, .. } => Mutation::ClockDrift {
                    source,
                    max_drift_secs: stats[idx].max_secs,
                    lines: stats[idx].applied,
                },
                Perturbation::DuplicateReplay { source, .. } => Mutation::Duplicated {
                    source,
                    count: stats[idx].applied,
                },
                Perturbation::RecordDrop { source, .. } => Mutation::Dropped {
                    source,
                    count: stats[idx].applied,
                },
                Perturbation::Reorder { source, delay, .. } => Mutation::Reordered {
                    source,
                    count: stats[idx].applied,
                    delay_secs: delay.as_secs(),
                },
                Perturbation::SourceOutage {
                    source,
                    start,
                    duration,
                } => Mutation::Outage {
                    source,
                    start,
                    end: start + duration,
                    dropped: stats[idx].applied,
                },
                Perturbation::Corrupt { source, .. } => Mutation::Corrupted {
                    source,
                    count: stats[idx].applied,
                },
                Perturbation::ApidRecycle { count } => Mutation::ApidRecycled {
                    pairs: recycle_apids(logs, count),
                },
                Perturbation::JobIdRecycle { count } => Mutation::JobIdRecycled {
                    pairs: recycle_jobids(logs, count),
                },
            };
            mutations.push(m);
        }
        PerturbationTruth {
            seed: self.seed,
            mutations,
        }
    }
}

/// Live-stream driver for a stream-safe pipeline: feed lines as they
/// arrive (any interleaving of sources), collect the perturbed lines to
/// forward. Produces byte-identical output to
/// [`PerturbationPipeline::apply`] on the same per-source line sequences.
#[derive(Debug)]
pub struct StreamPerturber {
    steps: Vec<Perturbation>,
    seed: u64,
    engines: Vec<SourceEngine>,
    stats: Vec<StepStats>,
}

impl StreamPerturber {
    /// Builds a live driver for `pipeline`.
    ///
    /// # Errors
    ///
    /// [`PerturbError::NotStreamSafe`] when the pipeline contains a
    /// directory-only perturbation (identifier recycling).
    pub fn new(pipeline: &PerturbationPipeline) -> Result<Self, PerturbError> {
        for step in &pipeline.steps {
            match step {
                Perturbation::ApidRecycle { .. } => {
                    return Err(PerturbError::NotStreamSafe("ApidRecycle"));
                }
                Perturbation::JobIdRecycle { .. } => {
                    return Err(PerturbError::NotStreamSafe("JobIdRecycle"));
                }
                _ => {}
            }
        }
        Ok(StreamPerturber {
            steps: pipeline.steps.clone(),
            seed: pipeline.seed,
            engines: PerturbSource::ALL
                .iter()
                .map(|&s| SourceEngine::new(pipeline.seed, s))
                .collect(),
            stats: vec![StepStats::default(); pipeline.steps.len()],
        })
    }

    /// Feeds one arriving line; returns the lines to forward now (empty
    /// when dropped or held for reordering, several when a replay or a
    /// held line's release rides along).
    pub fn push(&mut self, source: PerturbSource, line: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.engines[source.index()].push(source, line, &self.steps, &mut self.stats, &mut out);
        out
    }

    /// Flushes lines still held for one source (call at end of stream).
    pub fn close(&mut self, source: PerturbSource) -> Vec<String> {
        let mut out = Vec::new();
        self.engines[source.index()].flush(&mut out);
        out
    }

    /// The truth record for everything perturbed so far.
    pub fn truth(&self) -> PerturbationTruth {
        let mutations = self
            .steps
            .iter()
            .enumerate()
            .map(|(idx, step)| match *step {
                Perturbation::ClockSkew { source, offset } => Mutation::ClockSkew {
                    source,
                    offset_secs: offset.as_secs(),
                    lines: self.stats[idx].applied,
                },
                Perturbation::ClockDrift { source, .. } => Mutation::ClockDrift {
                    source,
                    max_drift_secs: self.stats[idx].max_secs,
                    lines: self.stats[idx].applied,
                },
                Perturbation::DuplicateReplay { source, .. } => Mutation::Duplicated {
                    source,
                    count: self.stats[idx].applied,
                },
                Perturbation::RecordDrop { source, .. } => Mutation::Dropped {
                    source,
                    count: self.stats[idx].applied,
                },
                Perturbation::Reorder { source, delay, .. } => Mutation::Reordered {
                    source,
                    count: self.stats[idx].applied,
                    delay_secs: delay.as_secs(),
                },
                Perturbation::SourceOutage {
                    source,
                    start,
                    duration,
                } => Mutation::Outage {
                    source,
                    start,
                    end: start + duration,
                    dropped: self.stats[idx].applied,
                },
                Perturbation::Corrupt { source, .. } => Mutation::Corrupted {
                    source,
                    count: self.stats[idx].applied,
                },
                Perturbation::ApidRecycle { .. } | Perturbation::JobIdRecycle { .. } => {
                    unreachable!("rejected at construction")
                }
            })
            .collect();
        PerturbationTruth {
            seed: self.seed,
            mutations,
        }
    }
}

/// Parses the decimal value right after `key` in `line`.
fn field_u64(line: &str, key: &str) -> Option<(usize, usize, u64)> {
    let at = line.find(key)? + key.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    let value = rest[..end].parse().ok()?;
    Some((at, at + end, value))
}

/// Rewrites `key=<old>` to `key=<new>` when present.
fn replace_u64_field(line: &mut String, key: &str, old: u64, new: u64) -> bool {
    if let Some((s, e, v)) = field_u64(line, key) {
        if v == old {
            line.replace_range(s..e, &new.to_string());
            return true;
        }
    }
    false
}

/// Distinct apids in first-appearance order.
fn apids_in_order(logs: &RawLogs) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for line in logs.lines(PerturbSource::Alps) {
        if let Some((_, _, apid)) = field_u64(line, "apid=") {
            if seen.insert(apid) {
                out.push(apid);
            }
        }
    }
    out
}

/// Aliases the last `count` apids onto the first `count`.
fn recycle_apids(logs: &mut RawLogs, count: usize) -> Vec<(u64, u64)> {
    let ids = apids_in_order(logs);
    let count = count.min(ids.len() / 2);
    let mut pairs = Vec::with_capacity(count);
    for k in 0..count {
        let old = ids[ids.len() - count + k];
        let new = ids[k];
        for line in logs.lines_mut(PerturbSource::Alps).iter_mut() {
            replace_u64_field(line, "apid=", old, new);
        }
        pairs.push((old, new));
    }
    pairs
}

/// Distinct numeric job ids in first-appearance order (Torque first, then
/// ALPS `batch=` references).
fn jobids_in_order(logs: &RawLogs) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for line in logs.lines(PerturbSource::Torque) {
        if let Some(job) = torque_jobid(line) {
            if seen.insert(job) {
                out.push(job);
            }
        }
    }
    for line in logs.lines(PerturbSource::Alps) {
        if let Some((_, _, job)) = field_u64(line, "batch=") {
            if seen.insert(job) {
                out.push(job);
            }
        }
    }
    out
}

/// The numeric job id of a Torque accounting line (`ts;S;123.bw;…`).
fn torque_jobid(line: &str) -> Option<u64> {
    let mut parts = line.splitn(4, ';');
    parts.next()?;
    parts.next()?;
    let job = parts.next()?;
    job.strip_suffix(".bw")?.parse().ok()
}

/// Rewrites the job field of a Torque line in place.
fn replace_torque_jobid(line: &mut String, old: u64, new: u64) -> bool {
    let old_token = format!(";{old}.bw;");
    if let Some(at) = line.find(&old_token) {
        line.replace_range(at..at + old_token.len(), &format!(";{new}.bw;"));
        return true;
    }
    false
}

/// Aliases the last `count` job ids onto the first `count`.
fn recycle_jobids(logs: &mut RawLogs, count: usize) -> Vec<(u64, u64)> {
    let ids = jobids_in_order(logs);
    let count = count.min(ids.len() / 2);
    let mut pairs = Vec::with_capacity(count);
    for k in 0..count {
        let old = ids[ids.len() - count + k];
        let new = ids[k];
        for line in logs.lines_mut(PerturbSource::Torque).iter_mut() {
            replace_torque_jobid(line, old, new);
        }
        for line in logs.lines_mut(PerturbSource::Alps).iter_mut() {
            replace_u64_field(line, "batch=", old, new);
        }
        pairs.push((old, new));
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(secs)
    }

    fn sample_logs() -> RawLogs {
        let mut logs = RawLogs::new();
        for k in 0..100i64 {
            logs.push(
                PerturbSource::Syslog,
                format!("{} nid{:05} kernel: tick {k}", t(k * 60), k % 8),
            );
        }
        for k in 0..10i64 {
            logs.push(
                PerturbSource::HwErr,
                format!("{}|c0-0c0s0n{}|MCE|CRIT|bank=4", t(k * 500), k % 4),
            );
        }
        for k in 0..6u64 {
            let placed = t(k as i64 * 900);
            let exit = t(k as i64 * 900 + 600);
            logs.push(
                PerturbSource::Alps,
                format!("{placed} apsys PLACED apid={} batch={}.bw user=u0001 cmd=a.out type=XE width=2 nodelist=nid[0-1]", 100 + k, 10 + k),
            );
            logs.push(
                PerturbSource::Alps,
                format!(
                    "{exit} apsys EXIT apid={} code=0 signal=none node_failed=no runtime=600",
                    100 + k
                ),
            );
            logs.push(
                PerturbSource::Torque,
                format!(
                    "{placed};S;{}.bw;user=u0001 queue=normal nodes=2 walltime=3600",
                    10 + k
                ),
            );
        }
        logs
    }

    #[test]
    fn seeded_pipeline_is_deterministic() {
        let pipeline = PerturbationPipeline::new(42)
            .with(Perturbation::RecordDrop {
                source: PerturbSource::Syslog,
                prob: 0.2,
            })
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::HwErr,
                prob: 0.3,
            })
            .with(Perturbation::Corrupt {
                source: PerturbSource::Syslog,
                prob: 0.1,
            });
        let run = |seed: u64| {
            let mut logs = sample_logs();
            let mut p = pipeline.clone();
            p.seed = seed;
            let truth = p.apply(&mut logs);
            (logs, truth)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn clock_skew_rewrites_every_timestamp() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(1)
            .with(Perturbation::ClockSkew {
                source: PerturbSource::HwErr,
                offset: SimDuration::from_secs(120),
            })
            .apply(&mut logs);
        for (k, line) in logs.lines(PerturbSource::HwErr).iter().enumerate() {
            assert_eq!(line_timestamp(line), Some(t(k as i64 * 500 + 120)));
        }
        assert_eq!(
            truth.mutations,
            vec![Mutation::ClockSkew {
                source: PerturbSource::HwErr,
                offset_secs: 120,
                lines: 10,
            }]
        );
        assert_eq!(truth.max_displacement_secs(), 120);
    }

    #[test]
    fn drift_accumulates_with_elapsed_time() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(1)
            .with(Perturbation::ClockDrift {
                source: PerturbSource::Syslog,
                drift_per_hour: SimDuration::from_secs(60),
            })
            .apply(&mut logs);
        // First line anchors (no shift); line k is k minutes in, so the
        // drift at line k is k*60*60/3600 = k seconds.
        let lines = logs.lines(PerturbSource::Syslog);
        assert_eq!(line_timestamp(&lines[0]), Some(t(0)));
        assert_eq!(line_timestamp(&lines[60]), Some(t(60 * 60 + 60)));
        match &truth.mutations[0] {
            Mutation::ClockDrift { max_drift_secs, .. } => assert_eq!(*max_drift_secs, 99),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_replay_inserts_adjacent_copies() {
        let mut logs = sample_logs();
        let before = logs.lines(PerturbSource::HwErr).to_vec();
        let truth = PerturbationPipeline::new(7)
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::HwErr,
                prob: 1.0,
            })
            .apply(&mut logs);
        let after = logs.lines(PerturbSource::HwErr);
        assert_eq!(after.len(), before.len() * 2);
        for (k, orig) in before.iter().enumerate() {
            assert_eq!(&after[2 * k], orig);
            assert_eq!(&after[2 * k + 1], orig);
        }
        assert_eq!(truth.duplicated(PerturbSource::HwErr), 10);
    }

    #[test]
    fn outage_swallows_the_window_exactly() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(1)
            .with(Perturbation::SourceOutage {
                source: PerturbSource::Syslog,
                start: t(30 * 60),
                duration: SimDuration::from_mins(20),
            })
            .apply(&mut logs);
        let lines = logs.lines(PerturbSource::Syslog);
        assert_eq!(lines.len(), 80);
        assert!(lines.iter().all(|l| {
            let ts = line_timestamp(l).unwrap();
            ts < t(30 * 60) || ts >= t(50 * 60)
        }));
        assert_eq!(truth.outage_secs(), 1_200);
        match &truth.mutations[0] {
            Mutation::Outage { dropped, .. } => assert_eq!(*dropped, 20),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn corrupt_lines_lose_their_timestamps() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(3)
            .with(Perturbation::Corrupt {
                source: PerturbSource::Syslog,
                prob: 1.0,
            })
            .apply(&mut logs);
        assert_eq!(truth.corrupted(PerturbSource::Syslog), 100);
        for line in logs.lines(PerturbSource::Syslog) {
            assert!(line_timestamp(line).is_none(), "still parses: {line:?}");
        }
    }

    #[test]
    fn reorder_delays_lines_past_their_window() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(11)
            .with(Perturbation::Reorder {
                source: PerturbSource::Syslog,
                prob: 0.3,
                delay: SimDuration::from_mins(10),
            })
            .apply(&mut logs);
        let lines = logs.lines(PerturbSource::Syslog);
        assert_eq!(lines.len(), 100, "reorder must not lose lines");
        let displaced: u64 = match &truth.mutations[0] {
            Mutation::Reordered { count, .. } => *count,
            other => panic!("unexpected {other:?}"),
        };
        assert!(displaced > 0);
        // Some line must now sit behind a later-stamped one.
        let times: Vec<_> = lines.iter().filter_map(|l| line_timestamp(l)).collect();
        assert!(times.windows(2).any(|w| w[0] > w[1]));
        // And no line arrives more than delay + one interval late.
        let mut max_seen = times[0];
        for &ts in &times {
            assert!(max_seen - ts <= SimDuration::from_secs(600));
            max_seen = max_seen.max(ts);
        }
    }

    #[test]
    fn apid_recycling_aliases_late_runs_onto_early_ids() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(1)
            .with(Perturbation::ApidRecycle { count: 2 })
            .apply(&mut logs);
        let pairs = match &truth.mutations[0] {
            Mutation::ApidRecycled { pairs } => pairs.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(pairs, vec![(104, 100), (105, 101)]);
        let text = logs.lines(PerturbSource::Alps).join("\n");
        assert!(!text.contains("apid=104"));
        assert!(!text.contains("apid=105"));
        assert_eq!(text.matches("apid=100").count(), 4);
        assert_eq!(truth.recycled_apids(), vec![100, 101, 104, 105]);
    }

    #[test]
    fn jobid_recycling_rewrites_both_sources() {
        let mut logs = sample_logs();
        let truth = PerturbationPipeline::new(1)
            .with(Perturbation::JobIdRecycle { count: 1 })
            .apply(&mut logs);
        match &truth.mutations[0] {
            Mutation::JobIdRecycled { pairs } => assert_eq!(pairs, &vec![(15, 10)]),
            other => panic!("unexpected {other:?}"),
        }
        let torque = logs.lines(PerturbSource::Torque).join("\n");
        let alps = logs.lines(PerturbSource::Alps).join("\n");
        assert!(!torque.contains(";15.bw;"));
        assert!(!alps.contains("batch=15.bw"));
        assert_eq!(torque.matches(";10.bw;").count(), 2);
    }

    #[test]
    fn stream_perturber_matches_directory_mode() {
        let pipeline = PerturbationPipeline::new(99)
            .with(Perturbation::ClockSkew {
                source: PerturbSource::HwErr,
                offset: SimDuration::from_secs(-45),
            })
            .with(Perturbation::RecordDrop {
                source: PerturbSource::Syslog,
                prob: 0.25,
            })
            .with(Perturbation::DuplicateReplay {
                source: PerturbSource::Syslog,
                prob: 0.2,
            })
            .with(Perturbation::Reorder {
                source: PerturbSource::HwErr,
                prob: 0.5,
                delay: SimDuration::from_mins(5),
            })
            .with(Perturbation::Corrupt {
                source: PerturbSource::Torque,
                prob: 0.4,
            });
        let mut dir_logs = sample_logs();
        let dir_truth = pipeline.apply(&mut dir_logs);

        // Live mode: interleave sources aggressively; per-source RNG
        // streams make the interleaving irrelevant.
        let input = sample_logs();
        let mut live = StreamPerturber::new(&pipeline).unwrap();
        let mut got = RawLogs::new();
        let max_len = PerturbSource::ALL
            .iter()
            .map(|&s| input.lines(s).len())
            .max()
            .unwrap();
        for k in 0..max_len {
            for s in PerturbSource::ALL {
                if let Some(line) = input.lines(s).get(k) {
                    for out in live.push(s, line) {
                        got.push(s, out);
                    }
                }
            }
        }
        for s in PerturbSource::ALL {
            for out in live.close(s) {
                got.push(s, out);
            }
        }
        assert_eq!(got, dir_logs);
        assert_eq!(live.truth(), dir_truth);
    }

    #[test]
    fn recycling_is_rejected_for_streams() {
        let pipeline = PerturbationPipeline::new(1).with(Perturbation::ApidRecycle { count: 1 });
        assert!(!pipeline.is_stream_safe());
        assert_eq!(
            StreamPerturber::new(&pipeline).unwrap_err(),
            PerturbError::NotStreamSafe("ApidRecycle")
        );
    }

    #[test]
    fn raw_logs_round_trip_directory() {
        let dir = std::env::temp_dir().join("logdiver-perturb-rawlogs");
        let _ = std::fs::remove_dir_all(&dir);
        let logs = sample_logs();
        logs.write_dir(&dir).unwrap();
        let back = RawLogs::read_dir(&dir).unwrap();
        assert_eq!(back, logs);
        let (lo, hi) = back.extent().unwrap();
        assert_eq!(lo, t(0));
        assert_eq!(hi, t(99 * 60));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
