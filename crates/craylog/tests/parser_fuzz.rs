//! Fuzz-style property tests: no parser may panic on arbitrary input, and
//! every parser must reject what the others emit (format confusion is an
//! error, not a misparse).
//!
//! The `differential_*` properties pin the zero-copy byte parsers against
//! the retired allocating parsers (frozen in `craylog::reference`): same
//! accept/reject decision and byte-identical records on every input,
//! including corrupt and lossy-UTF-8 corpora.

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::reference;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use proptest::prelude::*;

/// Asserts the live parser and the frozen reference parser agree on `line`:
/// identical records on accept, reject on both sides otherwise.
fn assert_parsers_agree(line: &str) {
    match (SyslogRecord::parse(line), reference::parse_syslog(line)) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "syslog records differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "syslog decision on {line:?}"),
    }
    match (HwErrRecord::parse(line), reference::parse_hwerr(line)) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "hwerr records differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "hwerr decision on {line:?}"),
    }
    match (AlpsRecord::parse(line), reference::parse_alps(line)) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "alps records differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "alps decision on {line:?}"),
    }
    match (TorqueRecord::parse(line), reference::parse_torque(line)) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "torque records differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "torque decision on {line:?}"),
    }
    match (NetwatchRecord::parse(line), reference::parse_netwatch(line)) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "netwatch records differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "netwatch decision on {line:?}"),
    }
    match (
        craylog::parse_nodelist(line),
        reference::parse_nodelist(line),
    ) {
        (Ok(new), Ok(old)) => assert_eq!(new, old, "nodelist sets differ on {line:?}"),
        (new, old) => assert_eq!(new.is_ok(), old.is_ok(), "nodelist decision on {line:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn no_parser_panics_on_arbitrary_bytes(line in "\\PC*") {
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
        let _ = craylog::parse_nodelist(&line);
    }

    #[test]
    fn no_parser_panics_on_almost_valid_lines(
        prefix in "2013-03-28 12:30:0[0-9]",
        middle in "[ -~]{0,60}",
    ) {
        let line = format!("{prefix} {middle}");
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
    }

    /// What a tailer hands the parsers after a torn write: the line was cut
    /// at an arbitrary *byte* (possibly mid-UTF-8-sequence) and decoded
    /// lossily, so the parser sees replacement characters, not invalid
    /// bytes. No parser may panic, and every such fragment must parse or be
    /// cleanly rejected (→ quarantine), never produce a misparse of the
    /// wrong source.
    #[test]
    fn lossy_utf8_truncation_never_panics(cut in 1usize..120, which in 0usize..4) {
        let lines = [
            // Multibyte payloads in every position a field can hold them.
            "2013-03-28 12:30:00 nid04008 sshd: Accepted publickey for Çelik·α from 10.0.0.1",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 note=κρίσιμο",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=Ünïcode type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X läne=ü",
        ];
        let full = lines[which].as_bytes();
        let cut = cut.min(full.len());
        let line = String::from_utf8_lossy(&full[..cut]);
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
    }

    #[test]
    fn truncation_never_panics(cut in 0usize..80) {
        let lines = [
            "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=x type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:00:00;E;1.bw;user=u0001 queue=q nodes=1 walltime=1 start=0 end=1 exit_status=0",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X",
        ];
        for full in lines {
            let cut = cut.min(full.len());
            let line = &full[..cut];
            let _ = SyslogRecord::parse(line);
            let _ = HwErrRecord::parse(line);
            let _ = AlpsRecord::parse(line);
            let _ = TorqueRecord::parse(line);
            let _ = NetwatchRecord::parse(line);
        }
    }

    /// Differential: arbitrary (printable-and-beyond) unicode input.
    #[test]
    fn differential_arbitrary_input(line in "\\PC{0,120}") {
        assert_parsers_agree(&line);
    }

    /// Differential: lines that exercise real field grammar — timestamps,
    /// `key=value` runs, separators — where a boundary disagreement between
    /// the byte scanners and the `str` idioms would actually show up.
    #[test]
    fn differential_almost_valid_lines(
        ts in "2013-03-2[0-9] 1[0-2]:[0-5][0-9]:[0-5][0-9]",
        body in "[a-z =.;|,()\\[\\]0-9-]{0,80}",
    ) {
        assert_parsers_agree(&format!("{ts}{body}"));
        assert_parsers_agree(&format!("{ts} {body}"));
    }

    /// Differential: valid emitted records mutated by a byte-level cut and
    /// lossy re-decode — the torn-write corpus. The old parsers saw exactly
    /// this shape (a tailer decodes lossily before handing over a &str), so
    /// the new byte parsers must agree on every replacement-character form.
    #[test]
    fn differential_lossy_utf8_corpus(cut in 1usize..120, which in 0usize..6) {
        let lines = [
            "2013-03-28 12:30:00 nid04008 sshd: Accepted publickey for Çelik·α from 10.0.0.1",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 note=κρίσιμο",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=Ünïcode type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:30:00 apsys LAUNCHERR apid=7 reason=échec du placement",
            "2013-03-28 12:00:00;E;1.bw;user=u0001 queue=qüeue nodes=1 walltime=1 start=0 end=1 exit_status=0",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X läne=ü",
        ];
        let full = lines[which].as_bytes();
        let cut = cut.min(full.len());
        let line = String::from_utf8_lossy(&full[..cut]);
        assert_parsers_agree(&line);
    }
}

/// Differential spot-checks on the exact canonical forms each source emits —
/// the happy path must produce byte-identical records, not merely agree on
/// accept/reject.
#[test]
fn differential_canonical_lines() {
    for line in [
        "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4",
        "2013-03-28 12:30:00 smw xtnlrd: heartbeat sweep complete",
        "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 syndrome=0x9f",
        "2013-03-28 12:30:00|c0-0c0s0n0|MCE|CRIT|status=a|b",
        "2013-03-28 12:30:00 apsys PLACED apid=1000321 batch=98765.bw user=u0421 cmd=namd2 type=XE width=3 nodelist=nid[0-2]",
        "2013-03-28 16:30:00 apsys EXIT apid=1000321 code=0 signal=none node_failed=no runtime=14400",
        "2013-03-28 12:29:59 apsys LAUNCHERR apid=1000322 reason=placement timeout",
        "2013-03-28 12:00:00;S;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400",
        "2013-03-29 02:00:00;E;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400 start=1364472000 end=1364522400 exit_status=0",
        "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(12,3,20) dim=X",
        "2013-03-28 12:30:05 netwatch LANE_DEGRADE coord=(4,0,9) dim=Z lanes=2",
        "2013-03-28 12:30:12 netwatch REROUTE_START affected=41472",
        "2013-03-28 12:31:02 netwatch REROUTE_DONE duration=50",
        // Loose-grammar timestamps the old parsers accepted via str::parse.
        "+2013-3-28 1:2:3 nid00001 kernel: loose form",
        "02013-03-28 12:30:00 nid00001 kernel: five digit year",
    ] {
        assert_parsers_agree(line);
    }
}

/// Empty trailing fragments — what a reader yields for the blank artifacts
/// of torn writes, double newlines, and truncated-to-nothing records. Every
/// parser must reject them (so the stream engine quarantines them) without
/// panicking.
#[test]
fn empty_and_blank_fragments_are_rejected() {
    for line in ["", " ", "\t", "   \t ", "\u{FFFD}", "\u{FFFD}\u{FFFD}"] {
        assert!(SyslogRecord::parse(line).is_err(), "syslog took {line:?}");
        assert!(HwErrRecord::parse(line).is_err(), "hwerr took {line:?}");
        assert!(AlpsRecord::parse(line).is_err(), "alps took {line:?}");
        assert!(TorqueRecord::parse(line).is_err(), "torque took {line:?}");
        assert!(
            NetwatchRecord::parse(line).is_err(),
            "netwatch took {line:?}"
        );
    }
}

/// A record whose timestamp itself was cut mid-digit — the most common torn
/// shape — must be rejected, not parsed with a garbage time.
#[test]
fn torn_timestamp_is_rejected() {
    for line in [
        "2013-03-28 12:3",
        "2013-03-28 12:30:0",
        "2013-03-2",
        "2013-03-28 ",
    ] {
        assert!(SyslogRecord::parse(line).is_err(), "syslog took {line:?}");
        assert!(AlpsRecord::parse(line).is_err(), "alps took {line:?}");
        assert!(
            NetwatchRecord::parse(line).is_err(),
            "netwatch took {line:?}"
        );
    }
}

#[test]
fn parsers_reject_each_others_formats() {
    let syslog = "2013-03-28 12:30:00 nid04008 kernel: hello world";
    let hwerr = "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3";
    let alps = "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=1";
    let torque = "2013-03-28 12:00:00;S;1.bw;user=u0001 queue=q nodes=1 walltime=1";
    let netwatch = "2013-03-28 12:30:00 netwatch REROUTE_DONE duration=50";

    assert!(HwErrRecord::parse(syslog).is_err());
    assert!(TorqueRecord::parse(syslog).is_err());
    assert!(NetwatchRecord::parse(syslog).is_err());
    assert!(AlpsRecord::parse(syslog).is_err());

    assert!(SyslogRecord::parse(hwerr).is_err());
    assert!(AlpsRecord::parse(hwerr).is_err());
    assert!(TorqueRecord::parse(hwerr).is_err());

    assert!(HwErrRecord::parse(alps).is_err());
    assert!(TorqueRecord::parse(alps).is_err());
    assert!(NetwatchRecord::parse(alps).is_err());

    assert!(AlpsRecord::parse(torque).is_err());
    assert!(NetwatchRecord::parse(torque).is_err());

    assert!(AlpsRecord::parse(netwatch).is_err());
    assert!(HwErrRecord::parse(netwatch).is_err());
}
