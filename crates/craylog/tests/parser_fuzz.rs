//! Fuzz-style property tests: no parser may panic on arbitrary input, and
//! every parser must reject what the others emit (format confusion is an
//! error, not a misparse).

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn no_parser_panics_on_arbitrary_bytes(line in "\\PC*") {
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
        let _ = craylog::parse_nodelist(&line);
    }

    #[test]
    fn no_parser_panics_on_almost_valid_lines(
        prefix in "2013-03-28 12:30:0[0-9]",
        middle in "[ -~]{0,60}",
    ) {
        let line = format!("{prefix} {middle}");
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
    }

    /// What a tailer hands the parsers after a torn write: the line was cut
    /// at an arbitrary *byte* (possibly mid-UTF-8-sequence) and decoded
    /// lossily, so the parser sees replacement characters, not invalid
    /// bytes. No parser may panic, and every such fragment must parse or be
    /// cleanly rejected (→ quarantine), never produce a misparse of the
    /// wrong source.
    #[test]
    fn lossy_utf8_truncation_never_panics(cut in 1usize..120, which in 0usize..4) {
        let lines = [
            // Multibyte payloads in every position a field can hold them.
            "2013-03-28 12:30:00 nid04008 sshd: Accepted publickey for Çelik·α from 10.0.0.1",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 note=κρίσιμο",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=Ünïcode type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X läne=ü",
        ];
        let full = lines[which].as_bytes();
        let cut = cut.min(full.len());
        let line = String::from_utf8_lossy(&full[..cut]);
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
    }

    #[test]
    fn truncation_never_panics(cut in 0usize..80) {
        let lines = [
            "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=x type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:00:00;E;1.bw;user=u0001 queue=q nodes=1 walltime=1 start=0 end=1 exit_status=0",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X",
        ];
        for full in lines {
            let cut = cut.min(full.len());
            let line = &full[..cut];
            let _ = SyslogRecord::parse(line);
            let _ = HwErrRecord::parse(line);
            let _ = AlpsRecord::parse(line);
            let _ = TorqueRecord::parse(line);
            let _ = NetwatchRecord::parse(line);
        }
    }
}

/// Empty trailing fragments — what a reader yields for the blank artifacts
/// of torn writes, double newlines, and truncated-to-nothing records. Every
/// parser must reject them (so the stream engine quarantines them) without
/// panicking.
#[test]
fn empty_and_blank_fragments_are_rejected() {
    for line in ["", " ", "\t", "   \t ", "\u{FFFD}", "\u{FFFD}\u{FFFD}"] {
        assert!(SyslogRecord::parse(line).is_err(), "syslog took {line:?}");
        assert!(HwErrRecord::parse(line).is_err(), "hwerr took {line:?}");
        assert!(AlpsRecord::parse(line).is_err(), "alps took {line:?}");
        assert!(TorqueRecord::parse(line).is_err(), "torque took {line:?}");
        assert!(
            NetwatchRecord::parse(line).is_err(),
            "netwatch took {line:?}"
        );
    }
}

/// A record whose timestamp itself was cut mid-digit — the most common torn
/// shape — must be rejected, not parsed with a garbage time.
#[test]
fn torn_timestamp_is_rejected() {
    for line in [
        "2013-03-28 12:3",
        "2013-03-28 12:30:0",
        "2013-03-2",
        "2013-03-28 ",
    ] {
        assert!(SyslogRecord::parse(line).is_err(), "syslog took {line:?}");
        assert!(AlpsRecord::parse(line).is_err(), "alps took {line:?}");
        assert!(
            NetwatchRecord::parse(line).is_err(),
            "netwatch took {line:?}"
        );
    }
}

#[test]
fn parsers_reject_each_others_formats() {
    let syslog = "2013-03-28 12:30:00 nid04008 kernel: hello world";
    let hwerr = "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3";
    let alps = "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=1";
    let torque = "2013-03-28 12:00:00;S;1.bw;user=u0001 queue=q nodes=1 walltime=1";
    let netwatch = "2013-03-28 12:30:00 netwatch REROUTE_DONE duration=50";

    assert!(HwErrRecord::parse(syslog).is_err());
    assert!(TorqueRecord::parse(syslog).is_err());
    assert!(NetwatchRecord::parse(syslog).is_err());
    assert!(AlpsRecord::parse(syslog).is_err());

    assert!(SyslogRecord::parse(hwerr).is_err());
    assert!(AlpsRecord::parse(hwerr).is_err());
    assert!(TorqueRecord::parse(hwerr).is_err());

    assert!(HwErrRecord::parse(alps).is_err());
    assert!(TorqueRecord::parse(alps).is_err());
    assert!(NetwatchRecord::parse(alps).is_err());

    assert!(AlpsRecord::parse(torque).is_err());
    assert!(NetwatchRecord::parse(torque).is_err());

    assert!(AlpsRecord::parse(netwatch).is_err());
    assert!(HwErrRecord::parse(netwatch).is_err());
}
