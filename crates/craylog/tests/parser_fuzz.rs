//! Fuzz-style property tests: no parser may panic on arbitrary input, and
//! every parser must reject what the others emit (format confusion is an
//! error, not a misparse).

use craylog::alps::AlpsRecord;
use craylog::hwerr::HwErrRecord;
use craylog::netwatch::NetwatchRecord;
use craylog::syslog::SyslogRecord;
use craylog::torque::TorqueRecord;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn no_parser_panics_on_arbitrary_bytes(line in "\\PC*") {
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
        let _ = craylog::parse_nodelist(&line);
    }

    #[test]
    fn no_parser_panics_on_almost_valid_lines(
        prefix in "2013-03-28 12:30:0[0-9]",
        middle in "[ -~]{0,60}",
    ) {
        let line = format!("{prefix} {middle}");
        let _ = SyslogRecord::parse(&line);
        let _ = HwErrRecord::parse(&line);
        let _ = AlpsRecord::parse(&line);
        let _ = TorqueRecord::parse(&line);
        let _ = NetwatchRecord::parse(&line);
    }

    #[test]
    fn truncation_never_panics(cut in 0usize..80) {
        let lines = [
            "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4",
            "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3",
            "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=x type=XE width=1 nodelist=nid[0]",
            "2013-03-28 12:00:00;E;1.bw;user=u0001 queue=q nodes=1 walltime=1 start=0 end=1 exit_status=0",
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=X",
        ];
        for full in lines {
            let cut = cut.min(full.len());
            let line = &full[..cut];
            let _ = SyslogRecord::parse(line);
            let _ = HwErrRecord::parse(line);
            let _ = AlpsRecord::parse(line);
            let _ = TorqueRecord::parse(line);
            let _ = NetwatchRecord::parse(line);
        }
    }
}

#[test]
fn parsers_reject_each_others_formats() {
    let syslog = "2013-03-28 12:30:00 nid04008 kernel: hello world";
    let hwerr = "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3";
    let alps = "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=1";
    let torque = "2013-03-28 12:00:00;S;1.bw;user=u0001 queue=q nodes=1 walltime=1";
    let netwatch = "2013-03-28 12:30:00 netwatch REROUTE_DONE duration=50";

    assert!(HwErrRecord::parse(syslog).is_err());
    assert!(TorqueRecord::parse(syslog).is_err());
    assert!(NetwatchRecord::parse(syslog).is_err());
    assert!(AlpsRecord::parse(syslog).is_err());

    assert!(SyslogRecord::parse(hwerr).is_err());
    assert!(AlpsRecord::parse(hwerr).is_err());
    assert!(TorqueRecord::parse(hwerr).is_err());

    assert!(HwErrRecord::parse(alps).is_err());
    assert!(TorqueRecord::parse(alps).is_err());
    assert!(NetwatchRecord::parse(alps).is_err());

    assert!(AlpsRecord::parse(torque).is_err());
    assert!(NetwatchRecord::parse(torque).is_err());

    assert!(AlpsRecord::parse(netwatch).is_err());
    assert!(HwErrRecord::parse(netwatch).is_err());
}
