//! User anonymization.
//!
//! The study anonymizes usernames before analysis. This module provides a
//! stable mapping from raw identity strings to [`UserId`] tokens: the same
//! input always maps to the same token within one [`Anonymizer`], and the
//! raw strings are never stored.

use std::collections::HashMap;

use logdiver_types::UserId;

/// FNV-1a 64-bit hash — stable across runs and platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Maps raw identity strings to dense anonymized [`UserId`]s.
///
/// Assignment is first-come-first-served (dense ids), with the hash kept
/// only to detect that a string was seen before — the raw string is
/// discarded immediately.
#[derive(Debug, Clone, Default)]
pub struct Anonymizer {
    seen: HashMap<u64, UserId>,
    next: u32,
}

impl Anonymizer {
    /// Creates an empty anonymizer.
    pub fn new() -> Self {
        Anonymizer::default()
    }

    /// Returns the stable anonymized id for `raw`.
    pub fn anonymize(&mut self, raw: &str) -> UserId {
        let h = fnv1a(raw.as_bytes());
        *self.seen.entry(h).or_insert_with(|| {
            let id = UserId::new(self.next);
            self.next += 1;
            id
        })
    }

    /// Number of distinct identities seen.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_input_same_token() {
        let mut a = Anonymizer::new();
        let u1 = a.anonymize("alice@ncsa");
        let u2 = a.anonymize("bob@ncsa");
        assert_ne!(u1, u2);
        assert_eq!(a.anonymize("alice@ncsa"), u1);
        assert_eq!(a.distinct(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_sight() {
        let mut a = Anonymizer::new();
        assert_eq!(a.anonymize("x").value(), 0);
        assert_eq!(a.anonymize("y").value(), 1);
        assert_eq!(a.anonymize("z").value(), 2);
        assert_eq!(a.anonymize("y").value(), 1);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
