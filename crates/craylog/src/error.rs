//! Error type for log parsing.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing log records.
///
/// Parsers are intentionally strict about their own format but the analysis
/// pipeline treats a `CraylogError` as "count it and move on" — field data
/// always contains corrupt lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CraylogError {
    source_name: &'static str,
    reason: Cow<'static, str>,
    line: String,
}

impl CraylogError {
    /// Creates a parse error, truncating the offending line for storage.
    ///
    /// `reason` is a `Cow` so the common case — a fixed diagnostic string on
    /// a hot quarantine path — costs no allocation per rejected line; only
    /// reasons built with `format!` pay for a `String`.
    pub fn new(
        source_name: &'static str,
        reason: impl Into<Cow<'static, str>>,
        line: &str,
    ) -> Self {
        let mut line = line.to_string();
        if line.len() > 160 {
            line.truncate(160);
            line.push('…');
        }
        CraylogError {
            source_name,
            reason: reason.into(),
            line,
        }
    }

    /// Which log source the line claimed to be from.
    pub fn source_name(&self) -> &'static str {
        self.source_name
    }

    /// Why the line failed to parse.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// The (truncated) offending line.
    pub fn line(&self) -> &str {
        &self.line
    }
}

impl fmt::Display for CraylogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad {} record ({}): {:?}",
            self.source_name, self.reason, self.line
        )
    }
}

impl Error for CraylogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_lines_are_truncated() {
        let long = "x".repeat(500);
        let e = CraylogError::new("syslog", "no timestamp", &long);
        assert!(e.line().len() < 200);
        assert!(e.to_string().contains("syslog"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CraylogError>();
    }
}
