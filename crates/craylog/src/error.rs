//! Error types for log parsing.
//!
//! Two tiers, one per ingest path:
//!
//! - [`CraylogFault`] — what the zero-copy byte parsers return: two
//!   `&'static str`s, `Copy`, no allocation ever. The batch pipeline
//!   records the *byte offset* of the rejected line alongside it, so
//!   quarantine output is allocation-free on the happy path and the
//!   offending bytes are recovered (lossily, if not UTF-8) from the
//!   retained input only when someone actually asks for them.
//! - [`CraylogError`] — the public `parse(&str)` error, which clones and
//!   truncates the offending line for standalone diagnostics. Built from
//!   a [`CraylogFault`] via [`CraylogFault::with_line`] on the cold path.

use std::borrow::Cow;
use std::error::Error;
use std::fmt;

/// A parse rejection from the zero-copy byte parsers: which source the
/// line claimed to be from and a fixed diagnostic. `Copy`, allocation-free
/// — rejected lines are identified by position in the input, not by a
/// cloned copy of their bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CraylogFault {
    source_name: &'static str,
    reason: &'static str,
}

impl CraylogFault {
    /// Creates a fault.
    pub const fn new(source_name: &'static str, reason: &'static str) -> Self {
        CraylogFault {
            source_name,
            reason,
        }
    }

    /// Which log source the line claimed to be from.
    pub const fn source_name(self) -> &'static str {
        self.source_name
    }

    /// Why the line failed to parse.
    pub const fn reason(self) -> &'static str {
        self.reason
    }

    /// Upgrades to a [`CraylogError`] carrying (a truncated copy of) the
    /// offending line — the cold diagnostic path used by `parse(&str)`.
    pub fn with_line(self, line: &str) -> CraylogError {
        CraylogError::new(self.source_name, self.reason, line)
    }
}

impl fmt::Display for CraylogFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad {} record ({})", self.source_name, self.reason)
    }
}

impl Error for CraylogFault {}

/// Errors produced while parsing log records.
///
/// Parsers are intentionally strict about their own format but the analysis
/// pipeline treats a `CraylogError` as "count it and move on" — field data
/// always contains corrupt lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CraylogError {
    source_name: &'static str,
    reason: Cow<'static, str>,
    line: String,
}

impl CraylogError {
    /// Creates a parse error, truncating the offending line for storage.
    ///
    /// `reason` is a `Cow` so the common case — a fixed diagnostic string on
    /// a hot quarantine path — costs no allocation per rejected line; only
    /// reasons built with `format!` pay for a `String`.
    pub fn new(
        source_name: &'static str,
        reason: impl Into<Cow<'static, str>>,
        line: &str,
    ) -> Self {
        // lint: allow(hot-path-alloc) diagnostic construction is the cold path; the hot path returns CraylogFault
        let mut line = line.to_string();
        if line.len() > 160 {
            line.truncate(160);
            line.push('…');
        }
        CraylogError {
            source_name,
            reason: reason.into(),
            line,
        }
    }

    /// Which log source the line claimed to be from.
    pub fn source_name(&self) -> &'static str {
        self.source_name
    }

    /// Why the line failed to parse.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// The (truncated) offending line.
    pub fn line(&self) -> &str {
        &self.line
    }
}

impl fmt::Display for CraylogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad {} record ({}): {:?}",
            self.source_name, self.reason, self.line
        )
    }
}

impl Error for CraylogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_lines_are_truncated() {
        let long = "x".repeat(500);
        let e = CraylogError::new("syslog", "no timestamp", &long);
        assert!(e.line().len() < 200);
        assert!(e.to_string().contains("syslog"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CraylogError>();
        assert_send_sync::<CraylogFault>();
    }

    #[test]
    fn fault_upgrades_to_error() {
        let f = CraylogFault::new("alps", "missing verb");
        assert_eq!(f.source_name(), "alps");
        assert_eq!(f.reason(), "missing verb");
        assert!(f.to_string().contains("missing verb"));
        let e = f.with_line("2013-03-28 12:30:00 apsys");
        assert_eq!(e.source_name(), "alps");
        assert_eq!(e.reason(), "missing verb");
        assert_eq!(e.line(), "2013-03-28 12:30:00 apsys");
    }
}
