//! The Cray hardware error log.
//!
//! Pipe-separated structured records keyed by physical *location code*:
//!
//! ```text
//! 2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|CRIT|dimm=3 syndrome=0x9f
//! ```
//!
//! Unlike syslog, these records carry the machine-room location rather than
//! a hostname — LogDiver must map locations back to nids through the
//! topology model, exactly as the real tool resolves Cray location codes.
//!
//! [`RawHwErr::parse_bytes`] is the zero-copy hot path: every field except
//! the free-form detail is decoded in place (the short location/category/
//! severity tokens are UTF-8-checked as subslices, never copied), and the
//! detail stays a borrowed slice until [`RawHwErr::materialize`].

use std::fmt;

use bw_topology::Location;
use logdiver_types::{ErrorCategory, LazyTimestamp, Severity, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::{CraylogError, CraylogFault};
use crate::scan::split_once_byte;

/// One hardware-error record with the detail field still borrowed from the
/// input buffer. All structured fields are already decoded.
#[derive(Debug, Clone, Copy)]
pub struct RawHwErr<'a> {
    /// Wall-clock timestamp, decoded lazily.
    pub timestamp: LazyTimestamp,
    /// Physical location of the reporting component.
    pub location: Location,
    /// Error category token.
    pub category: ErrorCategory,
    /// Severity as recorded by the hardware supervisory system.
    pub severity: Severity,
    /// Free-form detail bytes, unvalidated UTF-8.
    pub detail: &'a [u8],
}

impl<'a> RawHwErr<'a> {
    /// Parses one record line from raw bytes without allocating.
    ///
    /// # Errors
    ///
    /// Returns an allocation-free [`CraylogFault`] when a field is missing
    /// or malformed.
    pub fn parse_bytes(line: &'a [u8]) -> Result<Self, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("hwerr", reason);
        // `splitn(5, '|')` shape: four separators, fifth chunk keeps pipes.
        let (ts, rest) = match split_once_byte(line, b'|') {
            Some(x) => x,
            None => (line, &b""[..]),
        };
        let timestamp = LazyTimestamp::validate(ts).ok_or_else(|| err("bad timestamp"))?;
        let (loc, rest) = split_once_byte(rest, b'|').unwrap_or((rest, b""));
        let location = std::str::from_utf8(loc)
            .ok()
            .and_then(Location::parse)
            .ok_or_else(|| err("bad location code"))?;
        let (cat, rest) = split_once_byte(rest, b'|').unwrap_or((rest, b""));
        let category = std::str::from_utf8(cat)
            .ok()
            .and_then(ErrorCategory::parse_token)
            .ok_or_else(|| err("unknown category"))?;
        let (sev, detail) = split_once_byte(rest, b'|').unwrap_or((rest, b""));
        let severity = std::str::from_utf8(sev)
            .ok()
            .and_then(Severity::parse_label)
            .ok_or_else(|| err("unknown severity"))?;
        Ok(RawHwErr {
            timestamp,
            location,
            category,
            severity,
            detail,
        })
    }

    /// Converts to an owning [`HwErrRecord`], copying the detail field.
    ///
    /// # Errors
    ///
    /// Returns a [`CraylogFault`] when the detail is not valid UTF-8
    /// (impossible for lines parsed from a `&str`).
    pub fn materialize(&self) -> Result<HwErrRecord, CraylogFault> {
        let detail = std::str::from_utf8(self.detail)
            .map_err(|_| CraylogFault::new("hwerr", "detail is not UTF-8"))?
            // lint: allow(hot-path-alloc) materialization is the explicit exit from the zero-copy representation
            .to_string();
        Ok(HwErrRecord {
            timestamp: self.timestamp.decode(),
            location: self.location,
            category: self.category,
            severity: self.severity,
            detail,
        })
    }
}

/// One hardware-error-log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwErrRecord {
    /// Wall-clock timestamp.
    pub timestamp: Timestamp,
    /// Physical location of the reporting component.
    pub location: Location,
    /// Error category token.
    pub category: ErrorCategory,
    /// Severity as recorded by the hardware supervisory system.
    pub severity: Severity,
    /// Free-form detail field (`key=value` pairs by convention).
    pub detail: String,
}

impl HwErrRecord {
    /// Creates a record with the category's default severity.
    pub fn new(
        timestamp: Timestamp,
        location: Location,
        category: ErrorCategory,
        detail: String,
    ) -> Self {
        HwErrRecord {
            timestamp,
            location,
            category,
            severity: category.severity(),
            detail,
        }
    }

    /// Parses one record line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] when a field is missing or malformed.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        RawHwErr::parse_bytes(line.as_bytes())
            .and_then(|raw| raw.materialize())
            .map_err(|f| f.with_line(line))
    }
}

impl fmt::Display for HwErrRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}|{}|{}|{}|{}",
            self.timestamp, self.location, self.category, self.severity, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::NodeId;
    use proptest::prelude::*;

    #[test]
    fn parse_canonical_record() {
        let line = "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 syndrome=0x9f";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.category, ErrorCategory::MemoryUncorrectable);
        assert_eq!(r.severity, Severity::Fatal);
        assert_eq!(r.location.chassis, 1);
        assert_eq!(r.detail, "dimm=3 syndrome=0x9f");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn empty_detail_is_allowed() {
        let line = "2013-03-28 12:30:00|c0-0c0s0n0|KPANIC|FATAL|";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.detail, "");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn detail_may_contain_pipes_in_last_field() {
        let line = "2013-03-28 12:30:00|c0-0c0s0n0|MCE|CRIT|status=a|b";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.detail, "status=a|b");
    }

    #[test]
    fn rejects_malformed() {
        assert!(HwErrRecord::parse("").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|badloc|MCE|CRIT|x").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|c0-0c0s0n0|NOPE|CRIT|x").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|c0-0c0s0n0|MCE|LOUD|x").is_err());
        assert!(HwErrRecord::parse("nots|c0-0c0s0n0|MCE|CRIT|x").is_err());
    }

    #[test]
    fn raw_parse_borrows_detail() {
        let line = b"2013-03-28 12:30:00|c0-0c0s0n0|MCE|CRIT|status=a|b";
        let raw = RawHwErr::parse_bytes(line).unwrap();
        assert_eq!(raw.detail, b"status=a|b");
        let rec = raw.materialize().unwrap();
        assert_eq!(rec.detail, "status=a|b");
        // Invalid UTF-8 in the detail parses but refuses to materialize.
        let torn = b"2013-03-28 12:30:00|c0-0c0s0n0|MCE|CRIT|x\xFF";
        let raw = RawHwErr::parse_bytes(torn).unwrap();
        assert_eq!(
            raw.materialize().unwrap_err().reason(),
            "detail is not UTF-8"
        );
    }

    #[test]
    fn new_uses_default_severity() {
        let r = HwErrRecord::new(
            Timestamp::PRODUCTION_EPOCH,
            Location::of_nid(NodeId::new(0)),
            ErrorCategory::MemoryCorrectable,
            String::new(),
        );
        assert_eq!(r.severity, Severity::Warning);
    }

    proptest! {
        #[test]
        fn round_trip(ts in 1_300_000_000i64..1_500_000_000,
                      nid in 0u32..27_648,
                      cat_idx in 0usize..ErrorCategory::ALL.len(),
                      detail in "[a-z=0-9 ]{0,40}") {
            let rec = HwErrRecord::new(
                Timestamp::from_unix(ts),
                Location::of_nid(NodeId::new(nid)),
                ErrorCategory::ALL[cat_idx],
                detail,
            );
            let back = HwErrRecord::parse(&rec.to_string()).unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
