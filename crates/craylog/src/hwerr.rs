//! The Cray hardware error log.
//!
//! Pipe-separated structured records keyed by physical *location code*:
//!
//! ```text
//! 2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|CRIT|dimm=3 syndrome=0x9f
//! ```
//!
//! Unlike syslog, these records carry the machine-room location rather than
//! a hostname — LogDiver must map locations back to nids through the
//! topology model, exactly as the real tool resolves Cray location codes.

use std::fmt;

use bw_topology::Location;
use logdiver_types::{ErrorCategory, Severity, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::CraylogError;

/// One hardware-error-log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwErrRecord {
    /// Wall-clock timestamp.
    pub timestamp: Timestamp,
    /// Physical location of the reporting component.
    pub location: Location,
    /// Error category token.
    pub category: ErrorCategory,
    /// Severity as recorded by the hardware supervisory system.
    pub severity: Severity,
    /// Free-form detail field (`key=value` pairs by convention).
    pub detail: String,
}

impl HwErrRecord {
    /// Creates a record with the category's default severity.
    pub fn new(
        timestamp: Timestamp,
        location: Location,
        category: ErrorCategory,
        detail: String,
    ) -> Self {
        HwErrRecord {
            timestamp,
            location,
            category,
            severity: category.severity(),
            detail,
        }
    }

    /// Parses one record line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] when a field is missing or malformed.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        let err = |reason: &'static str| CraylogError::new("hwerr", reason, line);
        let mut fields = line.splitn(5, '|');
        let ts = fields.next().ok_or_else(|| err("missing timestamp"))?;
        let timestamp: Timestamp = ts.parse().map_err(|_| err("bad timestamp"))?;
        let loc = fields.next().ok_or_else(|| err("missing location"))?;
        let location = Location::parse(loc).ok_or_else(|| err("bad location code"))?;
        let cat = fields.next().ok_or_else(|| err("missing category"))?;
        let category = ErrorCategory::parse_token(cat).ok_or_else(|| err("unknown category"))?;
        let sev = fields.next().ok_or_else(|| err("missing severity"))?;
        let severity = Severity::parse_label(sev).ok_or_else(|| err("unknown severity"))?;
        let detail = fields.next().unwrap_or("").to_string();
        Ok(HwErrRecord {
            timestamp,
            location,
            category,
            severity,
            detail,
        })
    }
}

impl fmt::Display for HwErrRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}|{}|{}|{}|{}",
            self.timestamp, self.location, self.category, self.severity, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::NodeId;
    use proptest::prelude::*;

    #[test]
    fn parse_canonical_record() {
        let line = "2013-03-28 12:30:00|c12-3c1s5n2|MEM_UE|FATAL|dimm=3 syndrome=0x9f";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.category, ErrorCategory::MemoryUncorrectable);
        assert_eq!(r.severity, Severity::Fatal);
        assert_eq!(r.location.chassis, 1);
        assert_eq!(r.detail, "dimm=3 syndrome=0x9f");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn empty_detail_is_allowed() {
        let line = "2013-03-28 12:30:00|c0-0c0s0n0|KPANIC|FATAL|";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.detail, "");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn detail_may_contain_pipes_in_last_field() {
        let line = "2013-03-28 12:30:00|c0-0c0s0n0|MCE|CRIT|status=a|b";
        let r = HwErrRecord::parse(line).unwrap();
        assert_eq!(r.detail, "status=a|b");
    }

    #[test]
    fn rejects_malformed() {
        assert!(HwErrRecord::parse("").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|badloc|MCE|CRIT|x").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|c0-0c0s0n0|NOPE|CRIT|x").is_err());
        assert!(HwErrRecord::parse("2013-03-28 12:30:00|c0-0c0s0n0|MCE|LOUD|x").is_err());
        assert!(HwErrRecord::parse("nots|c0-0c0s0n0|MCE|CRIT|x").is_err());
    }

    #[test]
    fn new_uses_default_severity() {
        let r = HwErrRecord::new(
            Timestamp::PRODUCTION_EPOCH,
            Location::of_nid(NodeId::new(0)),
            ErrorCategory::MemoryCorrectable,
            String::new(),
        );
        assert_eq!(r.severity, Severity::Warning);
    }

    proptest! {
        #[test]
        fn round_trip(ts in 1_300_000_000i64..1_500_000_000,
                      nid in 0u32..27_648,
                      cat_idx in 0usize..ErrorCategory::ALL.len(),
                      detail in "[a-z=0-9 ]{0,40}") {
            let rec = HwErrRecord::new(
                Timestamp::from_unix(ts),
                Location::of_nid(NodeId::new(nid)),
                ErrorCategory::ALL[cat_idx],
                detail,
            );
            let back = HwErrRecord::parse(&rec.to_string()).unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
