//! Byte-level field scanning for the zero-copy parsers.
//!
//! Every parser in this crate works over `&[u8]` slices of the raw input:
//! fields are located with [`find_byte`]-style scans (word-at-a-time SWAR,
//! no `split`/`chars()` iterators), numbers are decoded from the exact
//! subslice, and nothing is ever copied into an intermediate `String`.
//! The helpers here are deliberately *extensionally equal* to the `str`
//! idioms they replace (`split_once`, `strip_prefix`, `split(' ')` +
//! `strip_prefix`), which is what lets the differential proptests pin the
//! zero-copy parsers byte-for-byte against the retired allocating ones.
//!
//! All separators used by the log formats are ASCII, and ASCII bytes never
//! occur inside a multi-byte UTF-8 sequence — so scanning bytes finds
//! exactly the boundaries the old `str` code found, on valid UTF-8 input,
//! while also behaving sensibly (reject, never panic) on torn or invalid
//! bytes that the `str` path could not even represent.

/// Finds the first occurrence of `needle`, scanning a word at a time.
///
/// The SWAR "has-zero-byte" trick: XOR each 8-byte word with the needle
/// splatted across all lanes, then detect a zero lane arithmetically.
/// Equivalent to `memchr` for our input sizes without taking a dependency.
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let splat = LO * needle as u64;
    let mut i = 0;
    let len = haystack.len();
    while i + 8 <= len {
        // lint: allow(no-panic) in-bounds by the loop condition
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let x = word ^ splat;
        let found = x.wrapping_sub(LO) & !x & HI;
        if found != 0 {
            return Some(i + (found.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&b| b == needle)
        .map(|p| p + i)
}

/// `str::split_once(sep)` over bytes: the slices before and after the
/// first occurrence of `sep`.
#[inline]
pub fn split_once_byte(b: &[u8], sep: u8) -> Option<(&[u8], &[u8])> {
    let i = find_byte(b, sep)?;
    Some((&b[..i], &b[i + 1..]))
}

/// Finds the first occurrence of a multi-byte `needle` (used for the
/// `": "` tag separator and the `reason=` scan). First-byte skip loop —
/// needles here are 2..=7 bytes, haystacks are single log lines.
#[inline]
pub fn find_seq(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let n = needle.len();
    if n == 0 {
        return Some(0);
    }
    let mut from = 0;
    while from + n <= haystack.len() {
        let i = find_byte(&haystack[from..], needle[0])? + from;
        if i + n > haystack.len() {
            return None;
        }
        if &haystack[i..i + n] == needle {
            return Some(i);
        }
        from = i + 1;
    }
    None
}

/// `str::split_once(sep)` for a multi-byte separator.
#[inline]
pub fn split_once_seq<'a>(b: &'a [u8], sep: &[u8]) -> Option<(&'a [u8], &'a [u8])> {
    let i = find_seq(b, sep)?;
    Some((&b[..i], &b[i + sep.len()..]))
}

/// Parses an integer from the exact byte subslice with `std`'s grammar.
///
/// Goes through `str::parse` on the validated slice (no allocation) so
/// the accepted forms — leading `+`, leading zeros, `-` for signed types
/// — match the retired allocating parsers exactly.
#[inline]
pub fn parse_int<T: std::str::FromStr>(b: &[u8]) -> Option<T> {
    // Integers are pure ASCII; a fast reject here keeps torn multi-byte
    // input off the UTF-8 validation path.
    if !b.is_ascii() {
        return None;
    }
    std::str::from_utf8(b).ok()?.parse().ok()
}

/// The value of the first space-separated `key=value` field, exactly as
/// `fields.split(' ').find_map(|f| f.strip_prefix("<key>="))` found it:
/// fields split at every single space (consecutive spaces yield empty
/// fields), first match wins, empty values allowed.
#[inline]
pub fn field_value<'a>(fields: &'a [u8], key: &[u8]) -> Option<&'a [u8]> {
    let mut rest = fields;
    loop {
        let (field, more) = match find_byte(rest, b' ') {
            Some(i) => (&rest[..i], Some(&rest[i + 1..])),
            None => (rest, None),
        };
        if field.len() > key.len() && &field[..key.len()] == key && field[key.len()] == b'=' {
            return Some(&field[key.len() + 1..]);
        }
        match more {
            Some(m) => rest = m,
            None => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn find_byte_matches_position() {
        assert_eq!(find_byte(b"", b'x'), None);
        assert_eq!(find_byte(b"x", b'x'), Some(0));
        assert_eq!(find_byte(b"abcdefghij", b'j'), Some(9));
        assert_eq!(find_byte(b"abcdefghij", b'a'), Some(0));
        assert_eq!(find_byte(b"abcdefghij", b'z'), None);
        // Crossing the 8-byte word boundary.
        assert_eq!(find_byte(b"0123456789abcdef ", b' '), Some(16));
    }

    #[test]
    fn field_value_first_match_and_empty_fields() {
        let f = b"apid=1 batch=2.bw  user= apid=9";
        assert_eq!(field_value(f, b"apid"), Some(&b"1"[..]));
        assert_eq!(field_value(f, b"user"), Some(&b""[..]));
        assert_eq!(field_value(f, b"batch"), Some(&b"2.bw"[..]));
        assert_eq!(field_value(f, b"missing"), None);
        // A key that only appears as a substring of another key is not a hit.
        assert_eq!(field_value(b"xapid=1", b"apid"), None);
    }

    proptest! {
        #[test]
        fn find_byte_equals_iter_position(hay in proptest::collection::vec(any::<u8>(), 0..64),
                                          needle in any::<u8>()) {
            prop_assert_eq!(
                find_byte(&hay, needle),
                hay.iter().position(|&b| b == needle)
            );
        }

        #[test]
        fn split_once_seq_equals_str_split_once(s in "[ -~]{0,40}", sep in "[:= ]{1,2}") {
            let via_str = s.split_once(sep.as_str())
                .map(|(a, b)| (a.as_bytes().to_vec(), b.as_bytes().to_vec()));
            let via_bytes = split_once_seq(s.as_bytes(), sep.as_bytes())
                .map(|(a, b)| (a.to_vec(), b.to_vec()));
            prop_assert_eq!(via_bytes, via_str);
        }

        #[test]
        fn field_value_equals_split_strip(fields in "[a-z=0-9 ]{0,60}", key in "[a-z]{1,6}") {
            let pat = format!("{key}=");
            let via_str = fields.split(' ')
                .find_map(|f| f.strip_prefix(pat.as_str()))
                .map(|v| v.as_bytes().to_vec());
            let via_bytes = field_value(fields.as_bytes(), key.as_bytes()).map(<[u8]>::to_vec);
            prop_assert_eq!(via_bytes, via_str);
        }

        #[test]
        fn parse_int_equals_str_parse(s in "[-+0-9a ]{0,12}") {
            prop_assert_eq!(parse_int::<u32>(s.as_bytes()), s.parse::<u32>().ok());
            prop_assert_eq!(parse_int::<i64>(s.as_bytes()), s.parse::<i64>().ok());
        }
    }
}
