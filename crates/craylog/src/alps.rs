//! ALPS (Application Level Placement Scheduler) logs.
//!
//! The paper's unit of analysis is the *application run* — one `aprun`
//! launch inside a batch job, identified by its **apid**. The `apsys` log
//! records placement at launch and the exit status at teardown:
//!
//! ```text
//! 2013-03-28 12:30:00 apsys PLACED apid=1000321 batch=98765.bw user=u0421 cmd=namd2 type=XE width=4096 nodelist=nid[0-4095]
//! 2013-03-28 16:30:00 apsys EXIT apid=1000321 code=0 signal=none node_failed=no runtime=14400
//! 2013-03-28 12:29:59 apsys LAUNCHERR apid=1000322 reason=placement timeout
//! ```
//!
//! Parsing is byte-level ([`AlpsRecord::parse_bytes`]): fields are located
//! with [`crate::scan`] helpers and decoded from exact subslices; the only
//! per-record allocations are the ones the owning record itself demands
//! (the placed [`NodeSet`] and a LAUNCHERR reason string).

use std::fmt;

use logdiver_types::{AppId, ExitStatus, JobId, NodeSet, NodeType, Sym, Timestamp, UserId};
use serde::{Deserialize, Serialize};

use crate::error::{CraylogError, CraylogFault};
use crate::nodelist::{format_nodelist, parse_nodelist_bytes};
use crate::scan::{field_value, parse_int, split_once_byte, split_once_seq};

/// Application placement record, written at launch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppPlacedRecord {
    /// Launch time.
    pub timestamp: Timestamp,
    /// Application id.
    pub apid: AppId,
    /// Enclosing batch job.
    pub job: JobId,
    /// Anonymized user.
    pub user: UserId,
    /// Executable name. Interned — the same few hundred executables account
    /// for millions of launches.
    pub command: Sym,
    /// Node class the application runs on.
    pub node_type: NodeType,
    /// Number of nodes (redundant with the nodelist; kept because the real
    /// log keeps it and it lets the parser cross-check).
    pub width: u32,
    /// Placed nodes.
    pub nodes: NodeSet,
}

/// Application exit record, written at teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppExitRecord {
    /// Teardown time.
    pub timestamp: Timestamp,
    /// Application id.
    pub apid: AppId,
    /// Exit status as the launcher saw it.
    pub exit: ExitStatus,
    /// Wall-clock runtime in seconds.
    pub runtime_secs: i64,
}

/// Launch-failure record: ALPS could not start the application at all.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppLaunchErrRecord {
    /// Failure time.
    pub timestamp: Timestamp,
    /// Application id that failed to launch.
    pub apid: AppId,
    /// Reason text.
    pub reason: String,
}

/// Any line of the `apsys` log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlpsRecord {
    /// Placement at launch.
    Placed(AppPlacedRecord),
    /// Exit at teardown.
    Exit(AppExitRecord),
    /// Launch failure.
    LaunchErr(AppLaunchErrRecord),
}

impl AlpsRecord {
    /// Timestamp of the record, whatever its kind.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            AlpsRecord::Placed(r) => r.timestamp,
            AlpsRecord::Exit(r) => r.timestamp,
            AlpsRecord::LaunchErr(r) => r.timestamp,
        }
    }

    /// Apid of the record, whatever its kind.
    pub fn apid(&self) -> AppId {
        match self {
            AlpsRecord::Placed(r) => r.apid,
            AlpsRecord::Exit(r) => r.apid,
            AlpsRecord::LaunchErr(r) => r.apid,
        }
    }

    /// Parses one `apsys` line from raw bytes — the zero-copy path.
    ///
    /// # Errors
    ///
    /// Returns an allocation-free [`CraylogFault`] when the line is not a
    /// well-formed PLACED, EXIT or LAUNCHERR record.
    pub fn parse_bytes(line: &[u8]) -> Result<Self, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("alps", reason);
        if line.len() < 20 {
            return Err(err("line shorter than a timestamp"));
        }
        let (ts, rest) = line.split_at(19);
        let timestamp = Timestamp::parse_bytes(ts).ok_or_else(|| err("bad timestamp"))?;
        let rest = rest
            .strip_prefix(b" apsys ")
            .ok_or_else(|| err("missing apsys tag"))?;
        let (verb, fields) = split_once_byte(rest, b' ').ok_or_else(|| err("missing verb"))?;

        // key=value fields; values never contain spaces except `reason`,
        // which is always last.
        let get = |key: &[u8]| field_value(fields, key);

        match verb {
            b"PLACED" => {
                let apid = AppId::new(
                    parse_int(get(b"apid").ok_or_else(|| err("missing apid"))?)
                        .ok_or_else(|| err("bad apid"))?,
                );
                let job_num = get(b"batch")
                    .ok_or_else(|| err("missing batch"))?
                    .strip_suffix(b".bw")
                    .and_then(parse_int)
                    .ok_or_else(|| err("bad batch id"))?;
                let user = UserId::new(
                    get(b"user")
                        .ok_or_else(|| err("missing user"))?
                        .strip_prefix(b"u")
                        .and_then(parse_int)
                        .ok_or_else(|| err("bad user"))?,
                );
                let command = Sym::resolve_bytes(get(b"cmd").ok_or_else(|| err("missing cmd"))?)
                    .ok_or_else(|| err("bad cmd"))?;
                let node_type = get(b"type")
                    .ok_or_else(|| err("missing type"))
                    .map(|t| std::str::from_utf8(t).ok().and_then(NodeType::parse_label))?
                    .ok_or_else(|| err("bad node type"))?;
                let width: u32 = parse_int(get(b"width").ok_or_else(|| err("missing width"))?)
                    .ok_or_else(|| err("bad width"))?;
                let nodes =
                    parse_nodelist_bytes(get(b"nodelist").ok_or_else(|| err("missing nodelist"))?)
                        .map_err(|f| CraylogFault::new("alps", f.reason()))?;
                if nodes.len() as u32 != width {
                    return Err(err("width disagrees with nodelist"));
                }
                Ok(AlpsRecord::Placed(AppPlacedRecord {
                    timestamp,
                    apid,
                    job: JobId::new(job_num),
                    user,
                    command,
                    node_type,
                    width,
                    nodes,
                }))
            }
            b"EXIT" => {
                let apid = AppId::new(
                    parse_int(get(b"apid").ok_or_else(|| err("missing apid"))?)
                        .ok_or_else(|| err("bad apid"))?,
                );
                let code: i32 = parse_int(get(b"code").ok_or_else(|| err("missing code"))?)
                    .ok_or_else(|| err("bad code"))?;
                let signal = match get(b"signal").ok_or_else(|| err("missing signal"))? {
                    b"none" => None,
                    s => Some(parse_int(s).ok_or_else(|| err("bad signal"))?),
                };
                let node_failed =
                    match get(b"node_failed").ok_or_else(|| err("missing node_failed"))? {
                        b"yes" => true,
                        b"no" => false,
                        _ => return Err(err("bad node_failed")),
                    };
                let runtime_secs: i64 =
                    parse_int(get(b"runtime").ok_or_else(|| err("missing runtime"))?)
                        .ok_or_else(|| err("bad runtime"))?;
                Ok(AlpsRecord::Exit(AppExitRecord {
                    timestamp,
                    apid,
                    exit: ExitStatus {
                        code,
                        signal,
                        node_failed,
                    },
                    runtime_secs,
                }))
            }
            b"LAUNCHERR" => {
                let apid = AppId::new(
                    parse_int(get(b"apid").ok_or_else(|| err("missing apid"))?)
                        .ok_or_else(|| err("bad apid"))?,
                );
                let (_, reason) =
                    split_once_seq(fields, b"reason=").ok_or_else(|| err("missing reason"))?;
                let reason = std::str::from_utf8(reason)
                    .map_err(|_| err("bad reason"))?
                    // lint: allow(hot-path-alloc) LAUNCHERR is rare by construction; the record owns its reason text
                    .to_string();
                Ok(AlpsRecord::LaunchErr(AppLaunchErrRecord {
                    timestamp,
                    apid,
                    reason,
                }))
            }
            _ => Err(err("unknown verb")),
        }
    }

    /// Parses one `apsys` line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] when the line is not a well-formed PLACED,
    /// EXIT or LAUNCHERR record.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        Self::parse_bytes(line.as_bytes()).map_err(|f| f.with_line(line))
    }
}

impl fmt::Display for AlpsRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlpsRecord::Placed(r) => write!(
                f,
                "{} apsys PLACED apid={} batch={} user={} cmd={} type={} width={} nodelist={}",
                r.timestamp,
                r.apid,
                r.job,
                r.user,
                r.command,
                r.node_type,
                r.width,
                format_nodelist(&r.nodes)
            ),
            AlpsRecord::Exit(r) => {
                let signal = match r.exit.signal {
                    // lint: allow(hot-path-alloc) Display is the simulator's emit side, not the parse loop
                    Some(s) => s.to_string(),
                    // lint: allow(hot-path-alloc) Display is the simulator's emit side, not the parse loop
                    None => "none".to_string(),
                };
                write!(
                    f,
                    "{} apsys EXIT apid={} code={} signal={} node_failed={} runtime={}",
                    r.timestamp,
                    r.apid,
                    r.exit.code,
                    signal,
                    if r.exit.node_failed { "yes" } else { "no" },
                    r.runtime_secs
                )
            }
            AlpsRecord::LaunchErr(r) => {
                write!(
                    f,
                    "{} apsys LAUNCHERR apid={} reason={}",
                    r.timestamp, r.apid, r.reason
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::NodeId;
    use proptest::prelude::*;

    fn placed() -> AlpsRecord {
        AlpsRecord::Placed(AppPlacedRecord {
            timestamp: Timestamp::from_ymd_hms(2013, 3, 28, 12, 30, 0),
            apid: AppId::new(1_000_321),
            job: JobId::new(98_765),
            user: UserId::new(421),
            command: "namd2".into(),
            node_type: NodeType::Xe,
            width: 3,
            nodes: [0u32, 1, 2].into_iter().map(NodeId::new).collect(),
        })
    }

    #[test]
    fn placed_round_trip() {
        let rec = placed();
        let line = rec.to_string();
        assert!(line.contains("PLACED"));
        assert!(line.contains("nodelist=nid[0-2]"));
        assert_eq!(AlpsRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn exit_round_trip_clean_and_signal() {
        for exit in [
            ExitStatus::SUCCESS,
            ExitStatus::with_code(137),
            ExitStatus::with_signal(11),
            ExitStatus::with_signal(9).and_node_failed(),
        ] {
            let rec = AlpsRecord::Exit(AppExitRecord {
                timestamp: Timestamp::from_ymd_hms(2013, 3, 28, 16, 30, 0),
                apid: AppId::new(7),
                exit,
                runtime_secs: 14_400,
            });
            assert_eq!(AlpsRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }

    #[test]
    fn launcherr_keeps_multiword_reason() {
        let rec = AlpsRecord::LaunchErr(AppLaunchErrRecord {
            timestamp: Timestamp::from_ymd_hms(2013, 3, 28, 12, 29, 59),
            apid: AppId::new(1_000_322),
            reason: "placement timeout on gemini quiesce".into(),
        });
        let back = AlpsRecord::parse(&rec.to_string()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let line = "2013-03-28 12:30:00 apsys PLACED apid=1 batch=2.bw user=u0001 cmd=x type=XE width=5 nodelist=nid[0-2]";
        assert!(AlpsRecord::parse(line).is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(AlpsRecord::parse("").is_err());
        assert!(AlpsRecord::parse("2013-03-28 12:30:00 apsys NOPE apid=1").is_err());
        assert!(AlpsRecord::parse(
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=x signal=none node_failed=no runtime=1"
        )
        .is_err());
        assert!(AlpsRecord::parse("2013-03-28 12:30:00 other EXIT apid=1").is_err());
    }

    #[test]
    fn byte_parse_matches_str_parse() {
        let line =
            "2013-03-28 12:30:00 apsys EXIT apid=1 code=0 signal=none node_failed=no runtime=1";
        assert_eq!(
            AlpsRecord::parse_bytes(line.as_bytes()).unwrap(),
            AlpsRecord::parse(line).unwrap()
        );
        let f = AlpsRecord::parse_bytes(b"2013-03-28 12:30:00 apsys EXIT apid=x").unwrap_err();
        assert_eq!(f.source_name(), "alps");
        assert_eq!(f.reason(), "bad apid");
    }

    #[test]
    fn accessors_cover_all_variants() {
        let p = placed();
        assert_eq!(p.apid(), AppId::new(1_000_321));
        let e = AlpsRecord::Exit(AppExitRecord {
            timestamp: Timestamp::from_unix(0),
            apid: AppId::new(9),
            exit: ExitStatus::SUCCESS,
            runtime_secs: 1,
        });
        assert_eq!(e.apid(), AppId::new(9));
        assert_eq!(e.timestamp(), Timestamp::from_unix(0));
    }

    proptest! {
        #[test]
        fn exit_round_trip_property(apid in 0u64..10_000_000,
                                    code in -128i32..256,
                                    runtime in 0i64..1_000_000,
                                    node_failed in any::<bool>()) {
            let rec = AlpsRecord::Exit(AppExitRecord {
                timestamp: Timestamp::from_unix(1_400_000_000),
                apid: AppId::new(apid),
                exit: ExitStatus { code, signal: None, node_failed },
                runtime_secs: runtime,
            });
            prop_assert_eq!(AlpsRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }
}
