//! The compressed-node-list (`cnl`) codec.
//!
//! ALPS records render application placements as `nid[100-227,300]`;
//! this module parses that notation back into a [`NodeSet`]. Formatting is
//! provided by [`NodeSet`]'s `Display`; [`format_nodelist`] is a thin alias
//! so both directions live next to each other.

use logdiver_types::{NodeId, NodeSet};

use crate::error::CraylogError;

/// Formats a node set in `nid[...]` notation (same as `set.to_string()`).
pub fn format_nodelist(set: &NodeSet) -> String {
    set.to_string()
}

/// Parses `nid[100-227,300]` notation.
///
/// # Errors
///
/// Returns [`CraylogError`] on malformed syntax, inverted ranges, or
/// numbers that do not fit in a nid.
pub fn parse_nodelist(s: &str) -> Result<NodeSet, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("nodelist", reason, s);
    let inner = s
        .strip_prefix("nid[")
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err("missing nid[...] wrapper"))?;
    let mut set = NodeSet::new();
    if inner.is_empty() {
        return Ok(set);
    }
    for part in inner.split(',') {
        match part.split_once('-') {
            Some((a, b)) => {
                let first: u32 = a.parse().map_err(|_| err("bad range start"))?;
                let last: u32 = b.parse().map_err(|_| err("bad range end"))?;
                if first > last {
                    return Err(err("inverted range"));
                }
                if last - first > 1_000_000 {
                    return Err(err("range implausibly large"));
                }
                for nid in first..=last {
                    set.insert(NodeId::new(nid));
                }
            }
            None => {
                let nid: u32 = part.parse().map_err(|_| err("bad nid"))?;
                set.insert(NodeId::new(nid));
            }
        }
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set_of(nids: &[u32]) -> NodeSet {
        nids.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn parse_known_forms() {
        assert_eq!(parse_nodelist("nid[]").unwrap(), NodeSet::new());
        assert_eq!(parse_nodelist("nid[7]").unwrap(), set_of(&[7]));
        assert_eq!(
            parse_nodelist("nid[1-3,100]").unwrap(),
            set_of(&[1, 2, 3, 100])
        );
        assert_eq!(
            parse_nodelist("nid[0,2-4,9-10]").unwrap(),
            set_of(&[0, 2, 3, 4, 9, 10])
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_nodelist("").is_err());
        assert!(parse_nodelist("nid[").is_err());
        assert!(parse_nodelist("[1-3]").is_err());
        assert!(parse_nodelist("nid[3-1]").is_err());
        assert!(parse_nodelist("nid[a-b]").is_err());
        assert!(parse_nodelist("nid[1,,2]").is_err());
        assert!(parse_nodelist("nid[0-99999999]").is_err());
    }

    proptest! {
        #[test]
        fn round_trip(nids in proptest::collection::btree_set(0u32..5_000, 0..100)) {
            let set: NodeSet = nids.iter().copied().map(NodeId::new).collect();
            let text = format_nodelist(&set);
            let back = parse_nodelist(&text).unwrap();
            prop_assert_eq!(back, set);
        }
    }
}
