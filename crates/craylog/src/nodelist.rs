//! The compressed-node-list (`cnl`) codec.
//!
//! ALPS records render application placements as `nid[100-227,300]`;
//! this module parses that notation back into a [`NodeSet`]. Formatting is
//! provided by [`NodeSet`]'s `Display`; [`format_nodelist`] is a thin alias
//! so both directions live next to each other.
//!
//! [`parse_nodelist_bytes`] is the zero-copy hot path (returns an
//! allocation-free [`CraylogFault`]); [`parse_nodelist`] wraps it for
//! standalone `&str` callers that want a line-carrying diagnostic.

use logdiver_types::{NodeId, NodeSet};

use crate::error::{CraylogError, CraylogFault};
use crate::scan::{parse_int, split_once_byte};

/// Formats a node set in `nid[...]` notation (same as `set.to_string()`).
pub fn format_nodelist(set: &NodeSet) -> String {
    // lint: allow(hot-path-alloc) emit-side formatter for the simulator and Display impls
    set.to_string()
}

/// Parses `nid[100-227,300]` notation from raw bytes — the zero-copy path.
///
/// # Errors
///
/// Returns an allocation-free [`CraylogFault`] on malformed syntax,
/// inverted ranges, or numbers that do not fit in a nid.
pub fn parse_nodelist_bytes(b: &[u8]) -> Result<NodeSet, CraylogFault> {
    let err = |reason: &'static str| CraylogFault::new("nodelist", reason);
    let inner = b
        .strip_prefix(b"nid[")
        .and_then(|r| r.strip_suffix(b"]"))
        .ok_or_else(|| err("missing nid[...] wrapper"))?;
    let mut set = NodeSet::new();
    if inner.is_empty() {
        return Ok(set);
    }
    let mut rest = inner;
    loop {
        let (part, more) = match split_once_byte(rest, b',') {
            Some((p, m)) => (p, Some(m)),
            None => (rest, None),
        };
        match split_once_byte(part, b'-') {
            Some((a, b)) => {
                let first: u32 = parse_int(a).ok_or_else(|| err("bad range start"))?;
                let last: u32 = parse_int(b).ok_or_else(|| err("bad range end"))?;
                if first > last {
                    return Err(err("inverted range"));
                }
                if last - first > 1_000_000 {
                    return Err(err("range implausibly large"));
                }
                for nid in first..=last {
                    set.insert(NodeId::new(nid));
                }
            }
            None => {
                let nid: u32 = parse_int(part).ok_or_else(|| err("bad nid"))?;
                set.insert(NodeId::new(nid));
            }
        }
        match more {
            Some(m) => rest = m,
            None => break,
        }
    }
    Ok(set)
}

/// Parses `nid[100-227,300]` notation.
///
/// # Errors
///
/// Returns [`CraylogError`] on malformed syntax, inverted ranges, or
/// numbers that do not fit in a nid.
pub fn parse_nodelist(s: &str) -> Result<NodeSet, CraylogError> {
    parse_nodelist_bytes(s.as_bytes()).map_err(|f| f.with_line(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set_of(nids: &[u32]) -> NodeSet {
        nids.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn parse_known_forms() {
        assert_eq!(parse_nodelist("nid[]").unwrap(), NodeSet::new());
        assert_eq!(parse_nodelist("nid[7]").unwrap(), set_of(&[7]));
        assert_eq!(
            parse_nodelist("nid[1-3,100]").unwrap(),
            set_of(&[1, 2, 3, 100])
        );
        assert_eq!(
            parse_nodelist("nid[0,2-4,9-10]").unwrap(),
            set_of(&[0, 2, 3, 4, 9, 10])
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_nodelist("").is_err());
        assert!(parse_nodelist("nid[").is_err());
        assert!(parse_nodelist("[1-3]").is_err());
        assert!(parse_nodelist("nid[3-1]").is_err());
        assert!(parse_nodelist("nid[a-b]").is_err());
        assert!(parse_nodelist("nid[1,,2]").is_err());
        assert!(parse_nodelist("nid[0-99999999]").is_err());
    }

    #[test]
    fn fault_reasons_match_wrapper() {
        let f = parse_nodelist_bytes(b"nid[3-1]").unwrap_err();
        assert_eq!(f.source_name(), "nodelist");
        assert_eq!(f.reason(), "inverted range");
        assert_eq!(
            parse_nodelist("nid[3-1]").unwrap_err().reason(),
            "inverted range"
        );
    }

    proptest! {
        #[test]
        fn round_trip(nids in proptest::collection::btree_set(0u32..5_000, 0..100)) {
            let set: NodeSet = nids.iter().copied().map(NodeId::new).collect();
            let text = format_nodelist(&set);
            let back = parse_nodelist(&text).unwrap();
            prop_assert_eq!(back, set);
        }
    }
}
