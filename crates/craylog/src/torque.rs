//! Torque/Moab batch accounting records.
//!
//! Semicolon-separated accounting lines, one per job event:
//!
//! ```text
//! 2013-03-28 12:00:00;S;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400
//! 2013-03-29 02:00:00;E;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400 start=1364472000 end=1364522400 exit_status=0
//! ```
//!
//! Jobs wrap application runs: one job may `aprun` many applications. The
//! study joins jobs (Torque) with applications (ALPS) through the batch id.
//!
//! Parsing is byte-level ([`TorqueRecord::parse_bytes`]) and allocation-free
//! — every field of the record is a scalar or an interned symbol.

use std::fmt;

use logdiver_types::{JobId, Sym, Timestamp, UserId};
use serde::{Deserialize, Serialize};

use crate::error::{CraylogError, CraylogFault};
use crate::scan::{field_value, parse_int, split_once_byte};

/// Kind of accounting event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TorqueEventKind {
    /// Job started.
    Start,
    /// Job ended.
    End,
}

impl TorqueEventKind {
    /// One-letter code used in the accounting file.
    pub const fn code(self) -> char {
        match self {
            TorqueEventKind::Start => 'S',
            TorqueEventKind::End => 'E',
        }
    }
}

/// One accounting record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorqueRecord {
    /// Event time.
    pub timestamp: Timestamp,
    /// Start or end.
    pub kind: TorqueEventKind,
    /// Job id.
    pub job: JobId,
    /// Anonymized user.
    pub user: UserId,
    /// Queue name. Interned — a machine has a handful of queues.
    pub queue: Sym,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime in seconds.
    pub walltime_secs: i64,
    /// For `End` records: job start time (unix).
    pub start: Option<Timestamp>,
    /// For `End` records: job end time (unix).
    pub end: Option<Timestamp>,
    /// For `End` records: shell exit status of the job script.
    pub exit_status: Option<i32>,
}

impl TorqueRecord {
    /// Creates a start record.
    pub fn start(
        timestamp: Timestamp,
        job: JobId,
        user: UserId,
        queue: &str,
        nodes: u32,
        walltime_secs: i64,
    ) -> Self {
        TorqueRecord {
            timestamp,
            kind: TorqueEventKind::Start,
            job,
            user,
            queue: queue.into(),
            nodes,
            walltime_secs,
            start: None,
            end: None,
            exit_status: None,
        }
    }

    /// Creates an end record.
    #[allow(clippy::too_many_arguments)]
    pub fn end(
        timestamp: Timestamp,
        job: JobId,
        user: UserId,
        queue: &str,
        nodes: u32,
        walltime_secs: i64,
        start: Timestamp,
        exit_status: i32,
    ) -> Self {
        TorqueRecord {
            timestamp,
            kind: TorqueEventKind::End,
            job,
            user,
            queue: queue.into(),
            nodes,
            walltime_secs,
            start: Some(start),
            end: Some(timestamp),
            exit_status: Some(exit_status),
        }
    }

    /// Parses one accounting line from raw bytes — the zero-copy path.
    ///
    /// # Errors
    ///
    /// Returns an allocation-free [`CraylogFault`] for malformed records.
    pub fn parse_bytes(line: &[u8]) -> Result<Self, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("torque", reason);
        // `splitn(4, ';')` shape: three separators, fourth chunk keeps `;`.
        let (ts, rest) = match split_once_byte(line, b';') {
            Some((a, b)) => (a, Some(b)),
            None => (line, None),
        };
        let timestamp = Timestamp::parse_bytes(ts).ok_or_else(|| err("bad timestamp"))?;
        let rest = rest.ok_or_else(|| err("missing kind"))?;
        let (kind_b, rest) = match split_once_byte(rest, b';') {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let kind = match kind_b {
            b"S" => TorqueEventKind::Start,
            b"E" => TorqueEventKind::End,
            _ => return Err(err("unknown kind")),
        };
        let rest = rest.ok_or_else(|| err("missing job id"))?;
        let (job_b, fields) = match split_once_byte(rest, b';') {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let job = JobId::new(
            job_b
                .strip_suffix(b".bw")
                .and_then(parse_int)
                .ok_or_else(|| err("bad job id"))?,
        );
        let fields = fields.ok_or_else(|| err("missing fields"))?;
        let get = |key: &[u8]| field_value(fields, key);
        let user = UserId::new(
            get(b"user")
                .ok_or_else(|| err("missing user"))?
                .strip_prefix(b"u")
                .and_then(parse_int)
                .ok_or_else(|| err("bad user"))?,
        );
        let queue = Sym::resolve_bytes(get(b"queue").ok_or_else(|| err("missing queue"))?)
            .ok_or_else(|| err("bad queue"))?;
        let nodes: u32 = parse_int(get(b"nodes").ok_or_else(|| err("missing nodes"))?)
            .ok_or_else(|| err("bad nodes"))?;
        let walltime_secs: i64 =
            parse_int(get(b"walltime").ok_or_else(|| err("missing walltime"))?)
                .ok_or_else(|| err("bad walltime"))?;
        let (start, end, exit_status) = match kind {
            TorqueEventKind::Start => (None, None, None),
            TorqueEventKind::End => {
                let s: i64 = parse_int(get(b"start").ok_or_else(|| err("missing start"))?)
                    .ok_or_else(|| err("bad start"))?;
                let e: i64 = parse_int(get(b"end").ok_or_else(|| err("missing end"))?)
                    .ok_or_else(|| err("bad end"))?;
                let x: i32 =
                    parse_int(get(b"exit_status").ok_or_else(|| err("missing exit_status"))?)
                        .ok_or_else(|| err("bad exit_status"))?;
                (
                    Some(Timestamp::from_unix(s)),
                    Some(Timestamp::from_unix(e)),
                    Some(x),
                )
            }
        };
        Ok(TorqueRecord {
            timestamp,
            kind,
            job,
            user,
            queue,
            nodes,
            walltime_secs,
            start,
            end,
            exit_status,
        })
    }

    /// Parses one accounting line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] for malformed records.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        Self::parse_bytes(line.as_bytes()).map_err(|f| f.with_line(line))
    }
}

impl fmt::Display for TorqueRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{};{};{};user={} queue={} nodes={} walltime={}",
            self.timestamp,
            self.kind.code(),
            self.job,
            self.user,
            self.queue,
            self.nodes,
            self.walltime_secs
        )?;
        if self.kind == TorqueEventKind::End {
            write!(
                f,
                " start={} end={} exit_status={}",
                self.start.map(Timestamp::as_unix).unwrap_or(0),
                self.end.map(Timestamp::as_unix).unwrap_or(0),
                self.exit_status.unwrap_or(0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn start_round_trip() {
        let rec = TorqueRecord::start(
            Timestamp::from_ymd_hms(2013, 3, 28, 12, 0, 0),
            JobId::new(98_765),
            UserId::new(421),
            "normal",
            4_096,
            86_400,
        );
        let line = rec.to_string();
        assert!(line.contains(";S;98765.bw;"));
        assert_eq!(TorqueRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn end_round_trip() {
        let start = Timestamp::from_ymd_hms(2013, 3, 28, 12, 0, 0);
        let end = Timestamp::from_ymd_hms(2013, 3, 29, 2, 0, 0);
        let rec = TorqueRecord::end(
            end,
            JobId::new(1),
            UserId::new(2),
            "debug",
            16,
            3_600,
            start,
            271,
        );
        let back = TorqueRecord::parse(&rec.to_string()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.exit_status, Some(271));
        assert_eq!(back.start, Some(start));
    }

    #[test]
    fn rejects_malformed() {
        assert!(TorqueRecord::parse("").is_err());
        assert!(TorqueRecord::parse(
            "2013-03-28 12:00:00;X;1.bw;user=u1 queue=q nodes=1 walltime=1"
        )
        .is_err());
        assert!(TorqueRecord::parse(
            "2013-03-28 12:00:00;S;1;user=u0001 queue=q nodes=1 walltime=1"
        )
        .is_err());
        assert!(
            TorqueRecord::parse("2013-03-28 12:00:00;E;1.bw;user=u0001 queue=q nodes=1 walltime=1")
                .is_err(),
            "end record without start/end/exit fields"
        );
    }

    #[test]
    fn byte_parse_matches_str_parse() {
        let line =
            "2013-03-28 12:00:00;S;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400";
        assert_eq!(
            TorqueRecord::parse_bytes(line.as_bytes()).unwrap(),
            TorqueRecord::parse(line).unwrap()
        );
        let f = TorqueRecord::parse_bytes(b"2013-03-28 12:00:00;Q;1.bw;x").unwrap_err();
        assert_eq!(f.reason(), "unknown kind");
    }

    proptest! {
        #[test]
        fn round_trip_property(job in 0u64..10_000_000, user in 0u32..10_000,
                               nodes in 1u32..30_000, wall in 60i64..200_000,
                               is_end in any::<bool>()) {
            let t0 = Timestamp::from_unix(1_400_000_000);
            let rec = if is_end {
                TorqueRecord::end(t0 + logdiver_types::SimDuration::from_secs(wall),
                                  JobId::new(job), UserId::new(user), "normal",
                                  nodes, wall, t0, 0)
            } else {
                TorqueRecord::start(t0, JobId::new(job), UserId::new(user), "normal", nodes, wall)
            };
            prop_assert_eq!(TorqueRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }
}
