//! Torque/Moab batch accounting records.
//!
//! Semicolon-separated accounting lines, one per job event:
//!
//! ```text
//! 2013-03-28 12:00:00;S;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400
//! 2013-03-29 02:00:00;E;98765.bw;user=u0421 queue=normal nodes=4096 walltime=86400 start=1364472000 end=1364522400 exit_status=0
//! ```
//!
//! Jobs wrap application runs: one job may `aprun` many applications. The
//! study joins jobs (Torque) with applications (ALPS) through the batch id.

use std::fmt;

use logdiver_types::{JobId, Sym, Timestamp, UserId};
use serde::{Deserialize, Serialize};

use crate::error::CraylogError;

/// Kind of accounting event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TorqueEventKind {
    /// Job started.
    Start,
    /// Job ended.
    End,
}

impl TorqueEventKind {
    /// One-letter code used in the accounting file.
    pub const fn code(self) -> char {
        match self {
            TorqueEventKind::Start => 'S',
            TorqueEventKind::End => 'E',
        }
    }
}

/// One accounting record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TorqueRecord {
    /// Event time.
    pub timestamp: Timestamp,
    /// Start or end.
    pub kind: TorqueEventKind,
    /// Job id.
    pub job: JobId,
    /// Anonymized user.
    pub user: UserId,
    /// Queue name. Interned — a machine has a handful of queues.
    pub queue: Sym,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested walltime in seconds.
    pub walltime_secs: i64,
    /// For `End` records: job start time (unix).
    pub start: Option<Timestamp>,
    /// For `End` records: job end time (unix).
    pub end: Option<Timestamp>,
    /// For `End` records: shell exit status of the job script.
    pub exit_status: Option<i32>,
}

impl TorqueRecord {
    /// Creates a start record.
    pub fn start(
        timestamp: Timestamp,
        job: JobId,
        user: UserId,
        queue: &str,
        nodes: u32,
        walltime_secs: i64,
    ) -> Self {
        TorqueRecord {
            timestamp,
            kind: TorqueEventKind::Start,
            job,
            user,
            queue: queue.into(),
            nodes,
            walltime_secs,
            start: None,
            end: None,
            exit_status: None,
        }
    }

    /// Creates an end record.
    #[allow(clippy::too_many_arguments)]
    pub fn end(
        timestamp: Timestamp,
        job: JobId,
        user: UserId,
        queue: &str,
        nodes: u32,
        walltime_secs: i64,
        start: Timestamp,
        exit_status: i32,
    ) -> Self {
        TorqueRecord {
            timestamp,
            kind: TorqueEventKind::End,
            job,
            user,
            queue: queue.into(),
            nodes,
            walltime_secs,
            start: Some(start),
            end: Some(timestamp),
            exit_status: Some(exit_status),
        }
    }

    /// Parses one accounting line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] for malformed records.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        let err = |reason: &'static str| CraylogError::new("torque", reason, line);
        let mut parts = line.splitn(4, ';');
        let ts = parts.next().ok_or_else(|| err("missing timestamp"))?;
        let timestamp: Timestamp = ts.parse().map_err(|_| err("bad timestamp"))?;
        let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
            "S" => TorqueEventKind::Start,
            "E" => TorqueEventKind::End,
            _ => return Err(err("unknown kind")),
        };
        let job_str = parts.next().ok_or_else(|| err("missing job id"))?;
        let job = JobId::new(
            job_str
                .strip_suffix(".bw")
                .ok_or_else(|| err("bad job id"))?
                .parse()
                .map_err(|_| err("bad job id"))?,
        );
        let fields_str = parts.next().ok_or_else(|| err("missing fields"))?;
        let get = |key: &str| -> Option<&str> {
            let pat = format!("{key}=");
            fields_str
                .split(' ')
                .find_map(|f| f.strip_prefix(pat.as_str()))
        };
        let user_str = get("user").ok_or_else(|| err("missing user"))?;
        let user = UserId::new(
            user_str
                .strip_prefix('u')
                .ok_or_else(|| err("bad user"))?
                .parse()
                .map_err(|_| err("bad user"))?,
        );
        let queue = Sym::intern(get("queue").ok_or_else(|| err("missing queue"))?);
        let nodes: u32 = get("nodes")
            .ok_or_else(|| err("missing nodes"))?
            .parse()
            .map_err(|_| err("bad nodes"))?;
        let walltime_secs: i64 = get("walltime")
            .ok_or_else(|| err("missing walltime"))?
            .parse()
            .map_err(|_| err("bad walltime"))?;
        let (start, end, exit_status) = match kind {
            TorqueEventKind::Start => (None, None, None),
            TorqueEventKind::End => {
                let s: i64 = get("start")
                    .ok_or_else(|| err("missing start"))?
                    .parse()
                    .map_err(|_| err("bad start"))?;
                let e: i64 = get("end")
                    .ok_or_else(|| err("missing end"))?
                    .parse()
                    .map_err(|_| err("bad end"))?;
                let x: i32 = get("exit_status")
                    .ok_or_else(|| err("missing exit_status"))?
                    .parse()
                    .map_err(|_| err("bad exit_status"))?;
                (
                    Some(Timestamp::from_unix(s)),
                    Some(Timestamp::from_unix(e)),
                    Some(x),
                )
            }
        };
        Ok(TorqueRecord {
            timestamp,
            kind,
            job,
            user,
            queue,
            nodes,
            walltime_secs,
            start,
            end,
            exit_status,
        })
    }
}

impl fmt::Display for TorqueRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{};{};{};user={} queue={} nodes={} walltime={}",
            self.timestamp,
            self.kind.code(),
            self.job,
            self.user,
            self.queue,
            self.nodes,
            self.walltime_secs
        )?;
        if self.kind == TorqueEventKind::End {
            write!(
                f,
                " start={} end={} exit_status={}",
                self.start.map(Timestamp::as_unix).unwrap_or(0),
                self.end.map(Timestamp::as_unix).unwrap_or(0),
                self.exit_status.unwrap_or(0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn start_round_trip() {
        let rec = TorqueRecord::start(
            Timestamp::from_ymd_hms(2013, 3, 28, 12, 0, 0),
            JobId::new(98_765),
            UserId::new(421),
            "normal",
            4_096,
            86_400,
        );
        let line = rec.to_string();
        assert!(line.contains(";S;98765.bw;"));
        assert_eq!(TorqueRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn end_round_trip() {
        let start = Timestamp::from_ymd_hms(2013, 3, 28, 12, 0, 0);
        let end = Timestamp::from_ymd_hms(2013, 3, 29, 2, 0, 0);
        let rec = TorqueRecord::end(
            end,
            JobId::new(1),
            UserId::new(2),
            "debug",
            16,
            3_600,
            start,
            271,
        );
        let back = TorqueRecord::parse(&rec.to_string()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.exit_status, Some(271));
        assert_eq!(back.start, Some(start));
    }

    #[test]
    fn rejects_malformed() {
        assert!(TorqueRecord::parse("").is_err());
        assert!(TorqueRecord::parse(
            "2013-03-28 12:00:00;X;1.bw;user=u1 queue=q nodes=1 walltime=1"
        )
        .is_err());
        assert!(TorqueRecord::parse(
            "2013-03-28 12:00:00;S;1;user=u0001 queue=q nodes=1 walltime=1"
        )
        .is_err());
        assert!(
            TorqueRecord::parse("2013-03-28 12:00:00;E;1.bw;user=u0001 queue=q nodes=1 walltime=1")
                .is_err(),
            "end record without start/end/exit fields"
        );
    }

    proptest! {
        #[test]
        fn round_trip_property(job in 0u64..10_000_000, user in 0u32..10_000,
                               nodes in 1u32..30_000, wall in 60i64..200_000,
                               is_end in any::<bool>()) {
            let t0 = Timestamp::from_unix(1_400_000_000);
            let rec = if is_end {
                TorqueRecord::end(t0 + logdiver_types::SimDuration::from_secs(wall),
                                  JobId::new(job), UserId::new(user), "normal",
                                  nodes, wall, t0, 0)
            } else {
                TorqueRecord::start(t0, JobId::new(job), UserId::new(user), "normal", nodes, wall)
            };
            prop_assert_eq!(TorqueRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }
}
