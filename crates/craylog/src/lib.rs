//! # craylog
//!
//! Log-record formats of a Cray XE/XK production system — the five data
//! sources the field study joins:
//!
//! | module | real-world counterpart | content |
//! |---|---|---|
//! | [`syslog`] | consolidated `messages` stream | free-text lines from kernel, Lustre clients, daemons |
//! | [`hwerr`] | Cray hardware error log | structured records with physical location codes |
//! | [`alps`] | ALPS `apsys`/`apsched` logs | application (aprun) placement, launch and exit records |
//! | [`torque`] | Torque/Moab accounting | batch-job start/end records |
//! | [`netwatch`] | HSN network watcher | Gemini link failures, lane degrades, reroutes |
//!
//! Every record type provides **emit** (via [`std::fmt::Display`]) and
//! **parse** (an inherent `parse` returning `Result<_, CraylogError>`), and
//! the two round-trip. The simulator uses the emitters to produce raw log
//! files; LogDiver uses the parsers to read them back. Message *text* for
//! error conditions comes from [`templates`], which renders several concrete
//! phrasings per [`logdiver_types::ErrorCategory`] — LogDiver's filter keeps
//! its own independent pattern table, as the real tool had to.
//!
//! ## Example
//!
//! ```
//! use craylog::syslog::SyslogRecord;
//! use logdiver_types::Timestamp;
//!
//! let line = "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4";
//! let rec = SyslogRecord::parse(line)?;
//! assert_eq!(rec.host, "nid04008");
//! assert_eq!(rec.to_string(), line);
//! # Ok::<(), craylog::CraylogError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod alps;
pub mod anonymize;
pub mod error;
pub mod hwerr;
pub mod netwatch;
pub mod nodelist;
pub mod syslog;
pub mod templates;
pub mod torque;

pub use error::CraylogError;
pub use nodelist::{format_nodelist, parse_nodelist};
