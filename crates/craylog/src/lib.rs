//! # craylog
//!
//! Log-record formats of a Cray XE/XK production system — the five data
//! sources the field study joins:
//!
//! | module | real-world counterpart | content |
//! |---|---|---|
//! | [`syslog`] | consolidated `messages` stream | free-text lines from kernel, Lustre clients, daemons |
//! | [`hwerr`] | Cray hardware error log | structured records with physical location codes |
//! | [`alps`] | ALPS `apsys`/`apsched` logs | application (aprun) placement, launch and exit records |
//! | [`torque`] | Torque/Moab accounting | batch-job start/end records |
//! | [`netwatch`] | HSN network watcher | Gemini link failures, lane degrades, reroutes |
//!
//! Every record type provides **emit** (via [`std::fmt::Display`]) and
//! **parse** (an inherent `parse` returning `Result<_, CraylogError>`), and
//! the two round-trip. The simulator uses the emitters to produce raw log
//! files; LogDiver uses the parsers to read them back. Message *text* for
//! error conditions comes from [`templates`], which renders several concrete
//! phrasings per [`logdiver_types::ErrorCategory`] — LogDiver's filter keeps
//! its own independent pattern table, as the real tool had to.
//!
//! ## The zero-copy hot path
//!
//! Each parser's real implementation is a byte-level `parse_bytes` over
//! `&[u8]` (borrowed from an mmap-style input arena), built on the [`scan`]
//! field scanners: no `String` is allocated per record, timestamps decode
//! lazily ([`logdiver_types::LazyTimestamp`]), and rejections are the
//! allocation-free [`CraylogFault`]. High-volume sources additionally keep
//! their free-text fields borrowed ([`syslog::RawSyslog`],
//! [`hwerr::RawHwErr`]) until an explicit `materialize()`. The `parse(&str)`
//! entry points are thin wrappers, byte-for-byte equivalent to the retired
//! allocating parsers — an equivalence pinned by differential proptests
//! against the frozen copies in the hidden `reference` module.
//!
//! ## Example
//!
//! ```
//! use craylog::syslog::SyslogRecord;
//! use logdiver_types::Timestamp;
//!
//! let line = "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4";
//! let rec = SyslogRecord::parse(line)?;
//! assert_eq!(rec.host, "nid04008");
//! assert_eq!(rec.to_string(), line);
//! # Ok::<(), craylog::CraylogError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod alps;
pub mod anonymize;
pub mod error;
pub mod hwerr;
pub mod netwatch;
pub mod nodelist;
pub mod reference;
pub mod scan;
pub mod syslog;
pub mod templates;
pub mod torque;

pub use error::{CraylogError, CraylogFault};
pub use nodelist::{format_nodelist, parse_nodelist, parse_nodelist_bytes};
