//! The consolidated syslog stream.
//!
//! Format: `<YYYY-MM-DD HH:MM:SS> <host> <tag>: <message>` — the loosest of
//! the five sources (free-text messages), and by far the highest-volume one:
//! the overwhelming majority of lines are operational chatter that
//! LogDiver's filtering stage must discard.

use std::fmt;

use logdiver_types::{NodeId, Sym, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::CraylogError;

/// One syslog line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyslogRecord {
    /// Wall-clock timestamp.
    pub timestamp: Timestamp,
    /// Reporting host (`nid04008`, `smw`, `boot`, …). Interned: a few tens
    /// of thousands of distinct hosts across hundreds of millions of lines.
    pub host: Sym,
    /// Subsystem tag (`kernel`, `lustre`, `alps`, `xtnlrd`, …). Interned.
    pub tag: Sym,
    /// Free-text message.
    pub message: String,
}

impl SyslogRecord {
    /// Creates a record reported by a compute node.
    pub fn from_node(timestamp: Timestamp, nid: NodeId, tag: &str, message: String) -> Self {
        SyslogRecord {
            timestamp,
            host: nid.hostname().into(),
            tag: tag.into(),
            message,
        }
    }

    /// The reporting node, when the host is a nid hostname.
    pub fn node(&self) -> Option<NodeId> {
        NodeId::parse_hostname(self.host.as_str())
    }

    /// Parses one syslog line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] when the line does not follow
    /// `<ts> <host> <tag>: <message>`.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        let err = |reason: &'static str| CraylogError::new("syslog", reason, line);
        if line.len() < 21 {
            return Err(err("line shorter than a timestamp"));
        }
        let (ts_str, rest) = line
            .split_at_checked(19)
            .ok_or_else(|| err("timestamp spans a non-ASCII boundary"))?;
        let timestamp: Timestamp = ts_str.parse().map_err(|_| err("bad timestamp"))?;
        let rest = rest
            .strip_prefix(' ')
            .ok_or_else(|| err("missing space after timestamp"))?;
        let (host, rest) = rest
            .split_once(' ')
            .ok_or_else(|| err("missing host field"))?;
        if host.is_empty() {
            return Err(err("empty host"));
        }
        let (tag, message) = rest
            .split_once(": ")
            .ok_or_else(|| err("missing tag separator"))?;
        if tag.is_empty() || tag.contains(' ') {
            return Err(err("bad tag"));
        }
        Ok(SyslogRecord {
            timestamp,
            host: Sym::intern(host),
            tag: Sym::intern(tag),
            message: message.to_string(),
        })
    }
}

impl fmt::Display for SyslogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.timestamp, self.host, self.tag, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_node_line() {
        let line = "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(r.node(), Some(NodeId::new(4008)));
        assert_eq!(r.tag, "kernel");
        assert_eq!(r.message, "Machine Check Exception: bank 4");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn parse_service_host_line() {
        let line = "2013-03-28 00:00:01 smw xtnlrd: heartbeat sweep complete";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(r.node(), None);
        assert_eq!(r.host, "smw");
    }

    #[test]
    fn message_may_contain_colons() {
        let line =
            "2013-03-28 00:00:01 nid00001 lustre: LustreError: 11-0: snx-OST0010: operation failed";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(
            r.message,
            "LustreError: 11-0: snx-OST0010: operation failed"
        );
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(SyslogRecord::parse("").is_err());
        assert!(SyslogRecord::parse("short").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00 host").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00 host no-separator").is_err());
        assert!(SyslogRecord::parse("not-a-date 12:30:00 h k: m").is_err());
    }

    #[test]
    fn from_node_sets_hostname() {
        let r = SyslogRecord::from_node(
            Timestamp::PRODUCTION_EPOCH,
            NodeId::new(12),
            "kernel",
            "panic".into(),
        );
        assert_eq!(r.host, "nid00012");
        assert_eq!(r.node(), Some(NodeId::new(12)));
    }

    proptest! {
        #[test]
        fn round_trip(ts in 1_300_000_000i64..1_500_000_000,
                      nid in 0u32..30_000,
                      tag in "[a-z]{2,8}",
                      msg in "[ -~]{0,80}") {
            // Avoid messages that start in a way that breaks the tag parse.
            let rec = SyslogRecord::from_node(
                Timestamp::from_unix(ts), NodeId::new(nid), &tag, msg);
            let back = SyslogRecord::parse(&rec.to_string()).unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
