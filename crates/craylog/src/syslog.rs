//! The consolidated syslog stream.
//!
//! Format: `<YYYY-MM-DD HH:MM:SS> <host> <tag>: <message>` — the loosest of
//! the five sources (free-text messages), and by far the highest-volume one:
//! the overwhelming majority of lines are operational chatter that
//! LogDiver's filtering stage must discard.
//!
//! Because almost every line is discarded, the hot path is
//! [`RawSyslog::parse_bytes`]: borrowed slices into the input buffer, a
//! [`LazyTimestamp`] that defers civil-date arithmetic until the record is
//! known to survive filtering, and no `String` per record. The owning
//! [`SyslogRecord`] (and its `parse(&str)` entry point) remains for
//! callers that need a standalone value.

use std::fmt;

use logdiver_types::{LazyTimestamp, NodeId, Sym, Timestamp};
use serde::{Deserialize, Serialize};

use crate::error::{CraylogError, CraylogFault};
use crate::scan::{find_byte, split_once_byte, split_once_seq};

/// One syslog line as borrowed slices of the raw input — the zero-copy
/// parse result. Field boundaries are byte-exact matches of what
/// [`SyslogRecord::parse`] would produce on the same (UTF-8) input.
#[derive(Debug, Clone, Copy)]
pub struct RawSyslog<'a> {
    /// Wall-clock timestamp, decoded lazily.
    pub timestamp: LazyTimestamp,
    /// Reporting host bytes (`nid04008`, `smw`, …), unvalidated UTF-8.
    pub host: &'a [u8],
    /// Subsystem tag bytes (`kernel`, `lustre`, …), unvalidated UTF-8.
    pub tag: &'a [u8],
    /// Free-text message bytes.
    pub message: &'a [u8],
}

impl<'a> RawSyslog<'a> {
    /// Parses one syslog line from raw bytes without allocating.
    ///
    /// # Errors
    ///
    /// Returns an allocation-free [`CraylogFault`] when the line does not
    /// follow `<ts> <host> <tag>: <message>`.
    pub fn parse_bytes(line: &'a [u8]) -> Result<Self, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("syslog", reason);
        if line.len() < 21 {
            return Err(err("line shorter than a timestamp"));
        }
        let (ts, rest) = line.split_at(19);
        let timestamp = LazyTimestamp::validate(ts).ok_or_else(|| err("bad timestamp"))?;
        let rest = rest
            .strip_prefix(b" ")
            .ok_or_else(|| err("missing space after timestamp"))?;
        let (host, rest) = split_once_byte(rest, b' ').ok_or_else(|| err("missing host field"))?;
        if host.is_empty() {
            return Err(err("empty host"));
        }
        let (tag, message) =
            split_once_seq(rest, b": ").ok_or_else(|| err("missing tag separator"))?;
        if tag.is_empty() || find_byte(tag, b' ').is_some() {
            return Err(err("bad tag"));
        }
        Ok(RawSyslog {
            timestamp,
            host,
            tag,
            message,
        })
    }

    /// The reporting node, when the host is a nid hostname.
    pub fn node(&self) -> Option<NodeId> {
        NodeId::parse_hostname_bytes(self.host)
    }

    /// Converts to an owning [`SyslogRecord`] — interning host and tag,
    /// copying the message. The cold path: only records that survive
    /// filtering (or standalone `parse(&str)` callers) pay for it.
    ///
    /// # Errors
    ///
    /// Returns a [`CraylogFault`] when a field is not valid UTF-8 (which
    /// cannot happen for lines parsed from a `&str`).
    pub fn materialize(&self) -> Result<SyslogRecord, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("syslog", reason);
        let host = Sym::resolve_bytes(self.host).ok_or_else(|| err("host is not UTF-8"))?;
        let tag = Sym::resolve_bytes(self.tag).ok_or_else(|| err("tag is not UTF-8"))?;
        let message = std::str::from_utf8(self.message)
            .map_err(|_| err("message is not UTF-8"))?
            // lint: allow(hot-path-alloc) materialization is the explicit exit from the zero-copy representation
            .to_string();
        Ok(SyslogRecord {
            timestamp: self.timestamp.decode(),
            host,
            tag,
            message,
        })
    }
}

/// One syslog line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyslogRecord {
    /// Wall-clock timestamp.
    pub timestamp: Timestamp,
    /// Reporting host (`nid04008`, `smw`, `boot`, …). Interned: a few tens
    /// of thousands of distinct hosts across hundreds of millions of lines.
    pub host: Sym,
    /// Subsystem tag (`kernel`, `lustre`, `alps`, `xtnlrd`, …). Interned.
    pub tag: Sym,
    /// Free-text message.
    pub message: String,
}

impl SyslogRecord {
    /// Creates a record reported by a compute node.
    pub fn from_node(timestamp: Timestamp, nid: NodeId, tag: &str, message: String) -> Self {
        SyslogRecord {
            timestamp,
            host: nid.hostname().into(),
            tag: tag.into(),
            message,
        }
    }

    /// The reporting node, when the host is a nid hostname.
    pub fn node(&self) -> Option<NodeId> {
        NodeId::parse_hostname(self.host.as_str())
    }

    /// Parses one syslog line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] when the line does not follow
    /// `<ts> <host> <tag>: <message>`.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        RawSyslog::parse_bytes(line.as_bytes())
            .and_then(|raw| raw.materialize())
            .map_err(|f| f.with_line(line))
    }
}

impl fmt::Display for SyslogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}: {}",
            self.timestamp, self.host, self.tag, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_node_line() {
        let line = "2013-03-28 12:30:00 nid04008 kernel: Machine Check Exception: bank 4";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(r.node(), Some(NodeId::new(4008)));
        assert_eq!(r.tag, "kernel");
        assert_eq!(r.message, "Machine Check Exception: bank 4");
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn parse_service_host_line() {
        let line = "2013-03-28 00:00:01 smw xtnlrd: heartbeat sweep complete";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(r.node(), None);
        assert_eq!(r.host, "smw");
    }

    #[test]
    fn message_may_contain_colons() {
        let line =
            "2013-03-28 00:00:01 nid00001 lustre: LustreError: 11-0: snx-OST0010: operation failed";
        let r = SyslogRecord::parse(line).unwrap();
        assert_eq!(
            r.message,
            "LustreError: 11-0: snx-OST0010: operation failed"
        );
        assert_eq!(r.to_string(), line);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(SyslogRecord::parse("").is_err());
        assert!(SyslogRecord::parse("short").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00 host").is_err());
        assert!(SyslogRecord::parse("2013-03-28 12:30:00 host no-separator").is_err());
        assert!(SyslogRecord::parse("not-a-date 12:30:00 h k: m").is_err());
    }

    #[test]
    fn raw_parse_borrows_and_defers() {
        let line = b"2013-03-28 12:30:00 nid04008 kernel: MCE bank 4";
        let raw = RawSyslog::parse_bytes(line).unwrap();
        assert_eq!(raw.host, b"nid04008");
        assert_eq!(raw.tag, b"kernel");
        assert_eq!(raw.message, b"MCE bank 4");
        assert_eq!(raw.node(), Some(NodeId::new(4008)));
        let rec = raw.materialize().unwrap();
        assert_eq!(
            rec,
            SyslogRecord::parse("2013-03-28 12:30:00 nid04008 kernel: MCE bank 4").unwrap()
        );
    }

    #[test]
    fn raw_parse_handles_invalid_utf8() {
        // A torn multi-byte sequence in the message still parses (the
        // boundaries are ASCII); materialization is where UTF-8 is enforced.
        let line = b"2013-03-28 12:30:00 smw kernel: torn \xE2\x98";
        let raw = RawSyslog::parse_bytes(line).unwrap();
        assert!(raw.materialize().is_err());
        // Invalid bytes in the host reject at materialization too.
        let line = b"2013-03-28 12:30:00 \xFF\xFE kernel: m";
        let raw = RawSyslog::parse_bytes(line).unwrap();
        assert_eq!(raw.materialize().unwrap_err().reason(), "host is not UTF-8");
    }

    #[test]
    fn from_node_sets_hostname() {
        let r = SyslogRecord::from_node(
            Timestamp::PRODUCTION_EPOCH,
            NodeId::new(12),
            "kernel",
            "panic".into(),
        );
        assert_eq!(r.host, "nid00012");
        assert_eq!(r.node(), Some(NodeId::new(12)));
    }

    proptest! {
        #[test]
        fn round_trip(ts in 1_300_000_000i64..1_500_000_000,
                      nid in 0u32..30_000,
                      tag in "[a-z]{2,8}",
                      msg in "[ -~]{0,80}") {
            // Avoid messages that start in a way that breaks the tag parse.
            let rec = SyslogRecord::from_node(
                Timestamp::from_unix(ts), NodeId::new(nid), &tag, msg);
            let back = SyslogRecord::parse(&rec.to_string()).unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
