//! The retired allocating parsers, kept verbatim as a differential oracle.
//!
//! When the hot path moved to the zero-copy byte parsers, these
//! `str`-splitting implementations were frozen here instead of deleted:
//! the `parser_fuzz` differential proptests replay arbitrary (and
//! deliberately corrupt / lossy-UTF-8) corpora through both and require
//! byte-identical records and identical accept/reject decisions. They are
//! not part of the supported API and may disappear once the equivalence
//! argument no longer needs a mechanical witness.

#![doc(hidden)]
#![allow(missing_docs)]

use logdiver_types::{
    AppId, ErrorCategory, ExitStatus, JobId, NodeId, NodeSet, NodeType, Severity, Sym, Timestamp,
    UserId,
};

use crate::alps::{AlpsRecord, AppExitRecord, AppLaunchErrRecord, AppPlacedRecord};
use crate::error::CraylogError;
use crate::hwerr::HwErrRecord;
use crate::netwatch::{NetwatchEvent, NetwatchRecord};
use crate::syslog::SyslogRecord;
use crate::torque::{TorqueEventKind, TorqueRecord};
use bw_topology::torus::Dim;
use bw_topology::{Location, TorusCoord};

pub fn parse_syslog(line: &str) -> Result<SyslogRecord, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("syslog", reason, line);
    if line.len() < 21 {
        return Err(err("line shorter than a timestamp"));
    }
    let (ts_str, rest) = line
        .split_at_checked(19)
        .ok_or_else(|| err("timestamp spans a non-ASCII boundary"))?;
    let timestamp: Timestamp = ts_str.parse().map_err(|_| err("bad timestamp"))?;
    let rest = rest
        .strip_prefix(' ')
        .ok_or_else(|| err("missing space after timestamp"))?;
    let (host, rest) = rest
        .split_once(' ')
        .ok_or_else(|| err("missing host field"))?;
    if host.is_empty() {
        return Err(err("empty host"));
    }
    let (tag, message) = rest
        .split_once(": ")
        .ok_or_else(|| err("missing tag separator"))?;
    if tag.is_empty() || tag.contains(' ') {
        return Err(err("bad tag"));
    }
    Ok(SyslogRecord {
        timestamp,
        host: Sym::intern(host),
        tag: Sym::intern(tag),
        message: message.to_string(),
    })
}

pub fn parse_hwerr(line: &str) -> Result<HwErrRecord, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("hwerr", reason, line);
    let mut fields = line.splitn(5, '|');
    let ts = fields.next().ok_or_else(|| err("missing timestamp"))?;
    let timestamp: Timestamp = ts.parse().map_err(|_| err("bad timestamp"))?;
    let loc = fields.next().ok_or_else(|| err("missing location"))?;
    let location = Location::parse(loc).ok_or_else(|| err("bad location code"))?;
    let cat = fields.next().ok_or_else(|| err("missing category"))?;
    let category = ErrorCategory::parse_token(cat).ok_or_else(|| err("unknown category"))?;
    let sev = fields.next().ok_or_else(|| err("missing severity"))?;
    let severity = Severity::parse_label(sev).ok_or_else(|| err("unknown severity"))?;
    let detail = fields.next().unwrap_or("").to_string();
    Ok(HwErrRecord {
        timestamp,
        location,
        category,
        severity,
        detail,
    })
}

pub fn parse_nodelist(s: &str) -> Result<NodeSet, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("nodelist", reason, s);
    let inner = s
        .strip_prefix("nid[")
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| err("missing nid[...] wrapper"))?;
    let mut set = NodeSet::new();
    if inner.is_empty() {
        return Ok(set);
    }
    for part in inner.split(',') {
        match part.split_once('-') {
            Some((a, b)) => {
                let first: u32 = a.parse().map_err(|_| err("bad range start"))?;
                let last: u32 = b.parse().map_err(|_| err("bad range end"))?;
                if first > last {
                    return Err(err("inverted range"));
                }
                if last - first > 1_000_000 {
                    return Err(err("range implausibly large"));
                }
                for nid in first..=last {
                    set.insert(NodeId::new(nid));
                }
            }
            None => {
                let nid: u32 = part.parse().map_err(|_| err("bad nid"))?;
                set.insert(NodeId::new(nid));
            }
        }
    }
    Ok(set)
}

pub fn parse_alps(line: &str) -> Result<AlpsRecord, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("alps", reason, line);
    if line.len() < 20 {
        return Err(err("line shorter than a timestamp"));
    }
    let (ts_str, rest) = line
        .split_at_checked(19)
        .ok_or_else(|| err("timestamp spans a non-ASCII boundary"))?;
    let timestamp: Timestamp = ts_str.parse().map_err(|_| err("bad timestamp"))?;
    let rest = rest
        .strip_prefix(" apsys ")
        .ok_or_else(|| err("missing apsys tag"))?;
    let (verb, fields_str) = rest.split_once(' ').ok_or_else(|| err("missing verb"))?;

    let get = |key: &str| -> Option<&str> {
        let pat = format!("{key}=");
        fields_str
            .split(' ')
            .find_map(|f| f.strip_prefix(pat.as_str()))
    };

    match verb {
        "PLACED" => {
            let apid = AppId::new(
                get("apid")
                    .ok_or_else(|| err("missing apid"))?
                    .parse()
                    .map_err(|_| err("bad apid"))?,
            );
            let job_str = get("batch").ok_or_else(|| err("missing batch"))?;
            let job_num = job_str
                .strip_suffix(".bw")
                .ok_or_else(|| err("bad batch id"))?
                .parse()
                .map_err(|_| err("bad batch id"))?;
            let user_str = get("user").ok_or_else(|| err("missing user"))?;
            let user = UserId::new(
                user_str
                    .strip_prefix('u')
                    .ok_or_else(|| err("bad user"))?
                    .parse()
                    .map_err(|_| err("bad user"))?,
            );
            let command = Sym::intern(get("cmd").ok_or_else(|| err("missing cmd"))?);
            let node_type = NodeType::parse_label(get("type").ok_or_else(|| err("missing type"))?)
                .ok_or_else(|| err("bad node type"))?;
            let width: u32 = get("width")
                .ok_or_else(|| err("missing width"))?
                .parse()
                .map_err(|_| err("bad width"))?;
            let nodes = parse_nodelist(get("nodelist").ok_or_else(|| err("missing nodelist"))?)
                .map_err(|e| CraylogError::new("alps", e.reason().to_string(), line))?;
            if nodes.len() as u32 != width {
                return Err(err("width disagrees with nodelist"));
            }
            Ok(AlpsRecord::Placed(AppPlacedRecord {
                timestamp,
                apid,
                job: JobId::new(job_num),
                user,
                command,
                node_type,
                width,
                nodes,
            }))
        }
        "EXIT" => {
            let apid = AppId::new(
                get("apid")
                    .ok_or_else(|| err("missing apid"))?
                    .parse()
                    .map_err(|_| err("bad apid"))?,
            );
            let code: i32 = get("code")
                .ok_or_else(|| err("missing code"))?
                .parse()
                .map_err(|_| err("bad code"))?;
            let signal = match get("signal").ok_or_else(|| err("missing signal"))? {
                "none" => None,
                s => Some(s.parse().map_err(|_| err("bad signal"))?),
            };
            let node_failed = match get("node_failed").ok_or_else(|| err("missing node_failed"))? {
                "yes" => true,
                "no" => false,
                _ => return Err(err("bad node_failed")),
            };
            let runtime_secs: i64 = get("runtime")
                .ok_or_else(|| err("missing runtime"))?
                .parse()
                .map_err(|_| err("bad runtime"))?;
            Ok(AlpsRecord::Exit(AppExitRecord {
                timestamp,
                apid,
                exit: ExitStatus {
                    code,
                    signal,
                    node_failed,
                },
                runtime_secs,
            }))
        }
        "LAUNCHERR" => {
            let apid = AppId::new(
                get("apid")
                    .ok_or_else(|| err("missing apid"))?
                    .parse()
                    .map_err(|_| err("bad apid"))?,
            );
            let reason = fields_str
                .split_once("reason=")
                .map(|(_, r)| r.to_string())
                .ok_or_else(|| err("missing reason"))?;
            Ok(AlpsRecord::LaunchErr(AppLaunchErrRecord {
                timestamp,
                apid,
                reason,
            }))
        }
        other => Err(CraylogError::new(
            "alps",
            format!("unknown verb {other}"),
            line,
        )),
    }
}

pub fn parse_torque(line: &str) -> Result<TorqueRecord, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("torque", reason, line);
    let mut parts = line.splitn(4, ';');
    let ts = parts.next().ok_or_else(|| err("missing timestamp"))?;
    let timestamp: Timestamp = ts.parse().map_err(|_| err("bad timestamp"))?;
    let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
        "S" => TorqueEventKind::Start,
        "E" => TorqueEventKind::End,
        _ => return Err(err("unknown kind")),
    };
    let job_str = parts.next().ok_or_else(|| err("missing job id"))?;
    let job = JobId::new(
        job_str
            .strip_suffix(".bw")
            .ok_or_else(|| err("bad job id"))?
            .parse()
            .map_err(|_| err("bad job id"))?,
    );
    let fields_str = parts.next().ok_or_else(|| err("missing fields"))?;
    let get = |key: &str| -> Option<&str> {
        let pat = format!("{key}=");
        fields_str
            .split(' ')
            .find_map(|f| f.strip_prefix(pat.as_str()))
    };
    let user_str = get("user").ok_or_else(|| err("missing user"))?;
    let user = UserId::new(
        user_str
            .strip_prefix('u')
            .ok_or_else(|| err("bad user"))?
            .parse()
            .map_err(|_| err("bad user"))?,
    );
    let queue = Sym::intern(get("queue").ok_or_else(|| err("missing queue"))?);
    let nodes: u32 = get("nodes")
        .ok_or_else(|| err("missing nodes"))?
        .parse()
        .map_err(|_| err("bad nodes"))?;
    let walltime_secs: i64 = get("walltime")
        .ok_or_else(|| err("missing walltime"))?
        .parse()
        .map_err(|_| err("bad walltime"))?;
    let (start, end, exit_status) = match kind {
        TorqueEventKind::Start => (None, None, None),
        TorqueEventKind::End => {
            let s: i64 = get("start")
                .ok_or_else(|| err("missing start"))?
                .parse()
                .map_err(|_| err("bad start"))?;
            let e: i64 = get("end")
                .ok_or_else(|| err("missing end"))?
                .parse()
                .map_err(|_| err("bad end"))?;
            let x: i32 = get("exit_status")
                .ok_or_else(|| err("missing exit_status"))?
                .parse()
                .map_err(|_| err("bad exit_status"))?;
            (
                Some(Timestamp::from_unix(s)),
                Some(Timestamp::from_unix(e)),
                Some(x),
            )
        }
    };
    Ok(TorqueRecord {
        timestamp,
        kind,
        job,
        user,
        queue,
        nodes,
        walltime_secs,
        start,
        end,
        exit_status,
    })
}

fn parse_dim(s: &str) -> Option<Dim> {
    match s {
        "X" => Some(Dim::X),
        "Y" => Some(Dim::Y),
        "Z" => Some(Dim::Z),
        _ => None,
    }
}

fn parse_coord(s: &str) -> Option<TorusCoord> {
    let inner = s.strip_prefix('(')?.strip_suffix(')')?;
    let mut it = inner.split(',');
    let x = it.next()?.parse().ok()?;
    let y = it.next()?.parse().ok()?;
    let z = it.next()?.parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some(TorusCoord { x, y, z })
}

pub fn parse_netwatch(line: &str) -> Result<NetwatchRecord, CraylogError> {
    let err = |reason: &'static str| CraylogError::new("netwatch", reason, line);
    if line.len() < 20 {
        return Err(err("line shorter than a timestamp"));
    }
    let (ts_str, rest) = line
        .split_at_checked(19)
        .ok_or_else(|| err("timestamp spans a non-ASCII boundary"))?;
    let timestamp: Timestamp = ts_str.parse().map_err(|_| err("bad timestamp"))?;
    let rest = rest
        .strip_prefix(" netwatch ")
        .ok_or_else(|| err("missing netwatch tag"))?;
    let (verb, fields_str) = rest.split_once(' ').unwrap_or((rest, ""));
    let get = |key: &str| -> Option<&str> {
        let pat = format!("{key}=");
        fields_str
            .split(' ')
            .find_map(|f| f.strip_prefix(pat.as_str()))
    };
    let event = match verb {
        "LINK_FAILED" => NetwatchEvent::LinkFailed {
            coord: parse_coord(get("coord").ok_or_else(|| err("missing coord"))?)
                .ok_or_else(|| err("bad coord"))?,
            dim: parse_dim(get("dim").ok_or_else(|| err("missing dim"))?)
                .ok_or_else(|| err("bad dim"))?,
        },
        "LANE_DEGRADE" => NetwatchEvent::LaneDegrade {
            coord: parse_coord(get("coord").ok_or_else(|| err("missing coord"))?)
                .ok_or_else(|| err("bad coord"))?,
            dim: parse_dim(get("dim").ok_or_else(|| err("missing dim"))?)
                .ok_or_else(|| err("bad dim"))?,
            lanes: get("lanes")
                .ok_or_else(|| err("missing lanes"))?
                .parse()
                .map_err(|_| err("bad lanes"))?,
        },
        "REROUTE_START" => NetwatchEvent::RerouteStart {
            affected: get("affected")
                .ok_or_else(|| err("missing affected"))?
                .parse()
                .map_err(|_| err("bad affected"))?,
        },
        "REROUTE_DONE" => NetwatchEvent::RerouteDone {
            duration_secs: get("duration")
                .ok_or_else(|| err("missing duration"))?
                .parse()
                .map_err(|_| err("bad duration"))?,
        },
        other => {
            return Err(CraylogError::new(
                "netwatch",
                format!("unknown verb {other}"),
                line,
            ))
        }
    };
    Ok(NetwatchRecord { timestamp, event })
}
