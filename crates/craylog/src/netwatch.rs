//! The HSN network watcher log (Gemini link health).
//!
//! ```text
//! 2013-03-28 12:30:00 netwatch LINK_FAILED coord=(12,3,20) dim=X
//! 2013-03-28 12:30:05 netwatch LANE_DEGRADE coord=(4,0,9) dim=Z lanes=2
//! 2013-03-28 12:30:12 netwatch REROUTE_START affected=41472
//! 2013-03-28 12:31:02 netwatch REROUTE_DONE duration=50
//! ```
//!
//! A failed link triggers a machine-wide route recomputation during which
//! the fabric quiesces; the `REROUTE_*` pair brackets the stall. These are
//! the events behind the paper's interconnect-related failure bucket.
//!
//! Parsing is byte-level ([`NetwatchRecord::parse_bytes`]) and
//! allocation-free — the record is `Copy`.

use std::fmt;

use bw_topology::torus::Dim;
use bw_topology::TorusCoord;
use logdiver_types::Timestamp;
use serde::{Deserialize, Serialize};

use crate::error::{CraylogError, CraylogFault};
use crate::scan::{field_value, parse_int, split_once_byte};

/// Body of a netwatch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetwatchEvent {
    /// A link went down; identifies the lower endpoint and direction.
    LinkFailed {
        /// Lower endpoint of the link.
        coord: TorusCoord,
        /// Direction of the link.
        dim: Dim,
    },
    /// A link lost lanes but still carries traffic.
    LaneDegrade {
        /// Lower endpoint of the link.
        coord: TorusCoord,
        /// Direction of the link.
        dim: Dim,
        /// Lanes remaining.
        lanes: u8,
    },
    /// Route recomputation began (fabric quiesced).
    RerouteStart {
        /// Number of links in the routing domain.
        affected: u32,
    },
    /// Route recomputation finished.
    RerouteDone {
        /// Stall duration in seconds.
        duration_secs: u32,
    },
}

/// One netwatch line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetwatchRecord {
    /// Event time.
    pub timestamp: Timestamp,
    /// What happened.
    pub event: NetwatchEvent,
}

fn dim_label(d: Dim) -> &'static str {
    match d {
        Dim::X => "X",
        Dim::Y => "Y",
        Dim::Z => "Z",
    }
}

fn parse_dim(b: &[u8]) -> Option<Dim> {
    match b {
        b"X" => Some(Dim::X),
        b"Y" => Some(Dim::Y),
        b"Z" => Some(Dim::Z),
        _ => None,
    }
}

fn parse_coord(b: &[u8]) -> Option<TorusCoord> {
    let inner = b.strip_prefix(b"(")?.strip_suffix(b")")?;
    let (x, rest) = split_once_byte(inner, b',')?;
    let (y, z) = split_once_byte(rest, b',')?;
    Some(TorusCoord {
        x: parse_int(x)?,
        y: parse_int(y)?,
        z: parse_int(z)?,
    })
}

impl NetwatchRecord {
    /// Parses one netwatch line from raw bytes — the zero-copy path.
    ///
    /// # Errors
    ///
    /// Returns an allocation-free [`CraylogFault`] for malformed records.
    pub fn parse_bytes(line: &[u8]) -> Result<Self, CraylogFault> {
        let err = |reason: &'static str| CraylogFault::new("netwatch", reason);
        if line.len() < 20 {
            return Err(err("line shorter than a timestamp"));
        }
        let (ts, rest) = line.split_at(19);
        let timestamp = Timestamp::parse_bytes(ts).ok_or_else(|| err("bad timestamp"))?;
        let rest = rest
            .strip_prefix(b" netwatch ")
            .ok_or_else(|| err("missing netwatch tag"))?;
        let (verb, fields) = split_once_byte(rest, b' ').unwrap_or((rest, b""));
        let get = |key: &[u8]| field_value(fields, key);
        let event = match verb {
            b"LINK_FAILED" => NetwatchEvent::LinkFailed {
                coord: parse_coord(get(b"coord").ok_or_else(|| err("missing coord"))?)
                    .ok_or_else(|| err("bad coord"))?,
                dim: parse_dim(get(b"dim").ok_or_else(|| err("missing dim"))?)
                    .ok_or_else(|| err("bad dim"))?,
            },
            b"LANE_DEGRADE" => NetwatchEvent::LaneDegrade {
                coord: parse_coord(get(b"coord").ok_or_else(|| err("missing coord"))?)
                    .ok_or_else(|| err("bad coord"))?,
                dim: parse_dim(get(b"dim").ok_or_else(|| err("missing dim"))?)
                    .ok_or_else(|| err("bad dim"))?,
                lanes: parse_int(get(b"lanes").ok_or_else(|| err("missing lanes"))?)
                    .ok_or_else(|| err("bad lanes"))?,
            },
            b"REROUTE_START" => NetwatchEvent::RerouteStart {
                affected: parse_int(get(b"affected").ok_or_else(|| err("missing affected"))?)
                    .ok_or_else(|| err("bad affected"))?,
            },
            b"REROUTE_DONE" => NetwatchEvent::RerouteDone {
                duration_secs: parse_int(get(b"duration").ok_or_else(|| err("missing duration"))?)
                    .ok_or_else(|| err("bad duration"))?,
            },
            _ => return Err(err("unknown verb")),
        };
        Ok(NetwatchRecord { timestamp, event })
    }

    /// Parses one netwatch line.
    ///
    /// # Errors
    ///
    /// Returns [`CraylogError`] for malformed records.
    pub fn parse(line: &str) -> Result<Self, CraylogError> {
        Self::parse_bytes(line.as_bytes()).map_err(|f| f.with_line(line))
    }
}

impl fmt::Display for NetwatchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} netwatch ", self.timestamp)?;
        match self.event {
            NetwatchEvent::LinkFailed { coord, dim } => {
                write!(f, "LINK_FAILED coord={coord} dim={}", dim_label(dim))
            }
            NetwatchEvent::LaneDegrade { coord, dim, lanes } => {
                write!(
                    f,
                    "LANE_DEGRADE coord={coord} dim={} lanes={lanes}",
                    dim_label(dim)
                )
            }
            NetwatchEvent::RerouteStart { affected } => {
                write!(f, "REROUTE_START affected={affected}")
            }
            NetwatchEvent::RerouteDone { duration_secs } => {
                write!(f, "REROUTE_DONE duration={duration_secs}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ts() -> Timestamp {
        Timestamp::from_ymd_hms(2013, 3, 28, 12, 30, 0)
    }

    #[test]
    fn link_failed_round_trip() {
        let rec = NetwatchRecord {
            timestamp: ts(),
            event: NetwatchEvent::LinkFailed {
                coord: TorusCoord { x: 12, y: 3, z: 20 },
                dim: Dim::X,
            },
        };
        let line = rec.to_string();
        assert_eq!(
            line,
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(12,3,20) dim=X"
        );
        assert_eq!(NetwatchRecord::parse(&line).unwrap(), rec);
    }

    #[test]
    fn all_variants_round_trip() {
        let recs = [
            NetwatchEvent::LinkFailed {
                coord: TorusCoord { x: 0, y: 0, z: 0 },
                dim: Dim::Z,
            },
            NetwatchEvent::LaneDegrade {
                coord: TorusCoord { x: 4, y: 0, z: 9 },
                dim: Dim::Z,
                lanes: 2,
            },
            NetwatchEvent::RerouteStart { affected: 41_472 },
            NetwatchEvent::RerouteDone { duration_secs: 50 },
        ];
        for event in recs {
            let rec = NetwatchRecord {
                timestamp: ts(),
                event,
            };
            assert_eq!(NetwatchRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(NetwatchRecord::parse("").is_err());
        assert!(NetwatchRecord::parse("2013-03-28 12:30:00 netwatch NOPE x=1").is_err());
        assert!(NetwatchRecord::parse(
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2) dim=X"
        )
        .is_err());
        assert!(NetwatchRecord::parse(
            "2013-03-28 12:30:00 netwatch LINK_FAILED coord=(1,2,3) dim=W"
        )
        .is_err());
        assert!(
            NetwatchRecord::parse("2013-03-28 12:30:00 other LINK_FAILED coord=(1,2,3) dim=X")
                .is_err()
        );
    }

    #[test]
    fn byte_parse_matches_str_parse() {
        let line = "2013-03-28 12:30:12 netwatch REROUTE_START affected=41472";
        assert_eq!(
            NetwatchRecord::parse_bytes(line.as_bytes()).unwrap(),
            NetwatchRecord::parse(line).unwrap()
        );
    }

    proptest! {
        #[test]
        fn coord_round_trip(x in 0u16..24, y in 0u16..24, z in 0u16..24, lanes in 1u8..4) {
            let rec = NetwatchRecord {
                timestamp: ts(),
                event: NetwatchEvent::LaneDegrade { coord: TorusCoord { x, y, z }, dim: Dim::Y, lanes },
            };
            prop_assert_eq!(NetwatchRecord::parse(&rec.to_string()).unwrap(), rec);
        }
    }
}
