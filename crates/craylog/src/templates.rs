//! Syslog message templates.
//!
//! The simulator renders error conditions into the free-text phrasings a
//! real Cray's consolidated syslog uses — several variants per category,
//! with variable numeric fields — plus a large family of benign operational
//! messages ("noise") that a filtering stage must learn to discard.
//!
//! LogDiver (in the `logdiver` crate) ships its own *independent* pattern
//! table; nothing in its filter imports this module, mirroring the reality
//! that the tool's templates were reverse-engineered from the logs.

use logdiver_types::ErrorCategory;

/// The syslog `tag` (program name) conventionally carrying a category.
pub fn tag_for(category: ErrorCategory) -> &'static str {
    use ErrorCategory::*;
    match category {
        MachineCheckException | MemoryCorrectable | MemoryUncorrectable | KernelPanic => "kernel",
        GeminiLinkFailure | GeminiLaneDegrade | GeminiRouteReconfig => "xtnlrd",
        NodeHeartbeatFault
        | BladeControllerFailure
        | VoltageFault
        | NodeHang
        | MaintenanceNotice => "xtnmd",
        LustreOstFailure | LustreMdsFailover | LustreClientEviction => "lustre",
        GpuDoubleBitError | GpuBusError | GpuPageRetirement => "nvrm",
        AlpsLaunchFailure => "apsched",
    }
}

/// Renders a message for `category`. `variant` selects a phrasing and
/// derives the variable fields, so equal variants render identical text
/// (deterministic across runs).
pub fn error_message(category: ErrorCategory, variant: u32) -> String {
    use ErrorCategory::*;
    let v = variant as u64;
    match category {
        MachineCheckException => match variant % 2 {
            0 => format!(
                "Machine Check Exception: bank {} status 0x{:016x}",
                v % 8,
                0xb200_0000_0000_0000u64 | ((v * 0x9e37) % 0xffff)
            ),
            _ => format!(
                "[Hardware Error]: CPU {} Machine Check: unrecoverable",
                v % 32
            ),
        },
        MemoryCorrectable => format!(
            "EDAC MC{}: CE row {} channel {} (corrected)",
            v % 4,
            v % 16,
            v % 2
        ),
        MemoryUncorrectable => match variant % 2 {
            0 => format!(
                "EDAC MC{}: UE row {} — uncorrectable memory error",
                v % 4,
                v % 16
            ),
            _ => format!(
                "Northbridge Error: DRAM ECC error detected on node memory, dimm {}",
                v % 8
            ),
        },
        GeminiLinkFailure => format!("HSN ASIC LCB lane shutdown, link failed ({})", v % 48),
        GeminiLaneDegrade => format!("HSN link running degraded: {} of 3 lanes up", 1 + v % 2),
        GeminiRouteReconfig => {
            "HSN route table recomputation in progress; traffic quiesced".to_string()
        }
        NodeHeartbeatFault => {
            "node heartbeat fault: no response in 60s, declaring node dead".to_string()
        }
        BladeControllerFailure => format!(
            "L0 controller unresponsive (attempt {}), blade power-cycled",
            1 + v % 3
        ),
        VoltageFault => format!(
            "VRM fault: VDD rail {:.2}V out of tolerance",
            0.9 + (v % 30) as f64 / 100.0
        ),
        KernelPanic => match variant % 2 {
            0 => "Kernel panic - not syncing: Fatal exception in interrupt".to_string(),
            _ => format!(
                "BUG: unable to handle kernel paging request at {:016x}",
                v * 0x1000
            ),
        },
        NodeHang => "node unresponsive: console wedged, softlockup detected".to_string(),
        LustreOstFailure => format!(
            "LustreError: {}-{}: snx-OST{:04x}: Connection to service was lost",
            11 + v % 5,
            v % 9,
            v % 1440
        ),
        LustreMdsFailover => {
            "Lustre: MDS failover in progress, requests will be resent".to_string()
        }
        LustreClientEviction => format!(
            "LustreError: client evicted by snx-OST{:04x}: lock callback timer expired",
            v % 1440
        ),
        GpuDoubleBitError => format!(
            "Xid (PCI:0000:02:00): 48, Double Bit ECC Error at 0x{:08x}",
            (v * 0x40) % 0xffff_ffff
        ),
        GpuBusError => "Xid (PCI:0000:02:00): 79, GPU has fallen off the bus".to_string(),
        GpuPageRetirement => format!("GPU dynamic page retirement: {} pages pending", 1 + v % 60),
        AlpsLaunchFailure => format!("apsched: placement failed for apid {}: node unavailable", v),
        MaintenanceNotice => "blade scheduled for warm swap; draining workload".to_string(),
    }
}

/// Benign operational messages (filter fodder). `variant` selects phrasing.
pub fn noise_message(variant: u32) -> (&'static str, String) {
    let v = variant as u64;
    match variant % 8 {
        0 => (
            "ntpd",
            format!("time slew {:+.3}s", (v % 200) as f64 / 1000.0 - 0.1),
        ),
        1 => (
            "sshd",
            format!("Accepted publickey for user port {}", 1024 + v % 50_000),
        ),
        2 => (
            "kernel",
            format!("eth0: link up, 10000 Mbps, full duplex (check {})", v % 7),
        ),
        3 => ("rsyslogd", "rsyslogd was HUPed".to_string()),
        4 => (
            "cron",
            format!("(root) CMD (run-parts /etc/cron.hourly) [{}]", v % 24),
        ),
        5 => (
            "lustre",
            format!(
                "Lustre: snx-OST{:04x}: haven't heard from client (idle)",
                v % 1440
            ),
        ),
        6 => ("apinit", format!("apid {} environment propagated", v)),
        _ => (
            "xtnmd",
            format!(
                "periodic health sweep complete: {} nodes polled",
                27_000 + v % 648
            ),
        ),
    }
}

/// Number of distinct phrasings [`error_message`] can render for
/// `category` (the `variant % N` selector inside the template).
///
/// Part of the template *enumeration* API: `logdiver lint` walks every
/// phrasing of every category and proves the analysis tool's independent
/// pattern table classifies each rendering back to the category it was
/// rendered from — the sim↔tool drift check, done statically instead of by
/// runtime sampling.
pub const fn phrasing_count(category: ErrorCategory) -> u32 {
    use ErrorCategory::*;
    match category {
        MachineCheckException | MemoryUncorrectable | KernelPanic => 2,
        _ => 1,
    }
}

/// How many instantiations per phrasing [`template_samples`] yields.
/// Several, so variable numeric fields get exercised too.
const SAMPLES_PER_PHRASING: u32 = 8;

/// Enumerates sample renderings of `category`: every phrasing, several
/// numeric-field instantiations each.
pub fn template_samples(category: ErrorCategory) -> impl Iterator<Item = String> {
    (0..phrasing_count(category) * SAMPLES_PER_PHRASING).map(move |v| error_message(category, v))
}

/// Number of distinct noise phrasings [`noise_message`] renders.
pub const fn noise_phrasing_count() -> u32 {
    8
}

/// Enumerates `(tag, message)` samples of the benign-noise corpus: every
/// phrasing, several instantiations each. A filter table must discard all
/// of them.
pub fn noise_samples() -> impl Iterator<Item = (&'static str, String)> {
    (0..noise_phrasing_count() * SAMPLES_PER_PHRASING).map(noise_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_has_tag_and_message() {
        for cat in ErrorCategory::ALL {
            let tag = tag_for(cat);
            assert!(!tag.is_empty() && !tag.contains(' '));
            for variant in 0..8 {
                let msg = error_message(cat, variant);
                assert!(!msg.is_empty(), "{cat} variant {variant}");
                assert!(!msg.contains('\n'));
            }
        }
    }

    #[test]
    fn messages_are_deterministic() {
        for cat in ErrorCategory::ALL {
            assert_eq!(error_message(cat, 42), error_message(cat, 42));
        }
        assert_eq!(noise_message(7), noise_message(7));
    }

    #[test]
    fn variants_differ() {
        // At least the numeric fields should vary with the variant.
        let a = error_message(ErrorCategory::MemoryCorrectable, 1);
        let b = error_message(ErrorCategory::MemoryCorrectable, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_covers_multiple_tags() {
        let tags: std::collections::HashSet<&str> = (0..16).map(|v| noise_message(v).0).collect();
        assert!(tags.len() >= 6);
    }

    #[test]
    fn enumeration_covers_every_phrasing() {
        for cat in ErrorCategory::ALL {
            let n = phrasing_count(cat);
            assert!(n >= 1, "{cat}");
            // Distinct phrasings really are distinct (beyond numeric fields):
            // consecutive variants with n > 1 differ structurally.
            if n > 1 {
                let heads: std::collections::HashSet<String> = (0..n)
                    .map(|v| error_message(cat, v).chars().take(12).collect())
                    .collect();
                assert_eq!(heads.len(), n as usize, "{cat} phrasings overlap");
            }
            assert_eq!(template_samples(cat).count(), (n * 8) as usize);
        }
        assert_eq!(
            noise_samples().count(),
            (noise_phrasing_count() * 8) as usize
        );
    }

    #[test]
    fn gpu_messages_mention_xid_or_retirement() {
        assert!(error_message(ErrorCategory::GpuDoubleBitError, 0).contains("Xid"));
        assert!(error_message(ErrorCategory::GpuBusError, 0).contains("fallen off the bus"));
        assert!(error_message(ErrorCategory::GpuPageRetirement, 0).contains("retirement"));
    }
}
