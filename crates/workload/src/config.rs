//! Workload configuration.

use bw_topology::Machine;
use logdiver_types::NodeType;
use serde::{Deserialize, Serialize};

/// Per-node-class workload parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMix {
    /// Node class these jobs run on.
    pub node_type: NodeType,
    /// Poisson arrival rate, jobs per hour.
    pub jobs_per_hour: f64,
    /// Largest allocatable width (the class size of the machine).
    pub max_nodes: u32,
    /// Probability a job is single-node (the dominant mode in the field).
    pub single_node_fraction: f64,
    /// Tail index of the truncated-Pareto body of the size distribution.
    pub pareto_alpha: f64,
    /// Probability a job is a capability run (top of the size range).
    pub capability_fraction: f64,
    /// Lower edge of the capability band, as a fraction of `max_nodes`.
    pub capability_lo_frac: f64,
    /// Probability a capability run uses the full class (`max_nodes`).
    pub capability_full_frac: f64,
    /// Duration multiplier for capability runs (they run much longer than
    /// the small-job background, which is what makes them dominate
    /// node-hours while being rare in count).
    pub capability_duration_multiplier: f64,
    /// Median application duration in seconds (log-normal).
    pub duration_median_secs: f64,
    /// Log-space sigma of the duration distribution.
    pub duration_sigma: f64,
    /// Mean applications per job (geometric, ≥ 1).
    pub apps_per_job_mean: f64,
}

impl ClassMix {
    /// Mean width in nodes implied by the mixture (used for capacity
    /// planning in tests; exact for the single-node and capability parts,
    /// analytic for the Pareto body).
    pub fn mean_nodes(&self) -> f64 {
        let body_frac = 1.0 - self.single_node_fraction - self.capability_fraction;
        let body_mean = hpc_stats::Pareto::truncated(2.0, self.pareto_alpha, self.max_nodes as f64)
            .map(|p| hpc_stats::Distribution::mean(&p))
            .unwrap_or(2.0);
        // Capability band: mix of full-scale and log-uniform over the band.
        let lo = self.capability_lo_frac * self.max_nodes as f64;
        let hi = self.max_nodes as f64;
        let log_uniform_mean = (hi - lo) / (hi / lo).ln();
        let cap_mean =
            self.capability_full_frac * hi + (1.0 - self.capability_full_frac) * log_uniform_mean;
        self.single_node_fraction + body_frac * body_mean + self.capability_fraction * cap_mean
    }
}

/// Full workload configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// One entry per node class (XE, XK).
    pub classes: Vec<ClassMix>,
    /// Number of distinct users.
    pub n_users: usize,
    /// Zipf exponent of user activity.
    pub zipf_s: f64,
    /// Base probability that an application fails for user reasons.
    pub base_user_failure: f64,
    /// Base probability that a job underestimates its walltime.
    pub base_walltime_miss: f64,
    /// Hard cap on a single application's duration, in seconds.
    pub max_app_duration_secs: f64,
}

impl WorkloadConfig {
    /// The full Blue Waters-scale configuration.
    ///
    /// Rates are set so that 518 days produce > 5 M application runs at
    /// roughly 70–80 % machine utilization: ~200 jobs/hour × ~2 apps/job ×
    /// 12,432 hours ≈ 5.1 M applications.
    pub fn blue_waters() -> Self {
        WorkloadConfig {
            classes: vec![
                ClassMix {
                    node_type: NodeType::Xe,
                    jobs_per_hour: 160.0,
                    max_nodes: 22_640,
                    single_node_fraction: 0.40,
                    pareto_alpha: 0.85,
                    capability_fraction: 0.0011,
                    capability_lo_frac: 0.40,
                    capability_full_frac: 0.50,
                    capability_duration_multiplier: 3.0,
                    duration_median_secs: 900.0,
                    duration_sigma: 1.5,
                    apps_per_job_mean: 2.0,
                },
                ClassMix {
                    node_type: NodeType::Xk,
                    jobs_per_hour: 42.0,
                    max_nodes: 4_224,
                    single_node_fraction: 0.45,
                    pareto_alpha: 0.90,
                    capability_fraction: 0.004,
                    capability_lo_frac: 0.40,
                    capability_full_frac: 0.50,
                    capability_duration_multiplier: 3.0,
                    duration_median_secs: 800.0,
                    duration_sigma: 1.4,
                    apps_per_job_mean: 2.0,
                },
            ],
            n_users: 900,
            zipf_s: 1.05,
            base_user_failure: 0.18,
            base_walltime_miss: 0.04,
            max_app_duration_secs: 24.0 * 3_600.0,
        }
    }

    /// A configuration matched to [`Machine::blue_waters_scaled`]: class
    /// sizes follow the scaled machine and arrival rates shrink by the same
    /// divisor, preserving utilization.
    pub fn scaled(divisor: u32) -> Self {
        let machine = Machine::blue_waters_scaled(divisor);
        Self::for_machine(&machine, divisor)
    }

    /// Derives a configuration for an arbitrary machine, dividing the full
    /// Blue Waters arrival rates by `rate_divisor`.
    pub fn for_machine(machine: &Machine, rate_divisor: u32) -> Self {
        let mut cfg = Self::blue_waters();
        for class in &mut cfg.classes {
            class.max_nodes = machine.count_of(class.node_type).max(1);
            class.jobs_per_hour /= rate_divisor.max(1) as f64;
        }
        cfg.n_users = (cfg.n_users / rate_divisor.max(1) as usize).max(20);
        cfg
    }

    /// The class entry for a node type, if configured.
    pub fn class(&self, ty: NodeType) -> Option<&ClassMix> {
        self.classes.iter().find(|c| c.node_type == ty)
    }

    /// Validation used at generator construction.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("no classes configured".into());
        }
        for c in &self.classes {
            if !c.node_type.is_compute() {
                return Err(format!("class {} is not a compute class", c.node_type));
            }
            if c.jobs_per_hour <= 0.0 || !c.jobs_per_hour.is_finite() {
                return Err(format!("class {}: bad arrival rate", c.node_type));
            }
            if c.max_nodes == 0 {
                return Err(format!("class {}: zero max_nodes", c.node_type));
            }
            let frac_sum = c.single_node_fraction + c.capability_fraction;
            if !(0.0..1.0).contains(&frac_sum) {
                return Err(format!(
                    "class {}: mixture fractions sum to {frac_sum}",
                    c.node_type
                ));
            }
            if c.apps_per_job_mean < 1.0 {
                return Err(format!("class {}: apps per job mean below 1", c.node_type));
            }
            if !(0.0..1.0).contains(&c.capability_lo_frac)
                || !(0.0..=1.0).contains(&c.capability_full_frac)
            {
                return Err(format!("class {}: bad capability band", c.node_type));
            }
            // NaN multipliers must fail this check, hence partial_cmp.
            if c.capability_duration_multiplier
                .partial_cmp(&1.0)
                .is_none_or(|o| o == std::cmp::Ordering::Less)
            {
                return Err(format!(
                    "class {}: bad capability duration multiplier",
                    c.node_type
                ));
            }
        }
        if self.n_users == 0 {
            return Err("no users".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_waters_config_is_valid() {
        let cfg = WorkloadConfig::blue_waters();
        cfg.validate().unwrap();
        assert_eq!(cfg.class(NodeType::Xe).unwrap().max_nodes, 22_640);
        assert_eq!(cfg.class(NodeType::Xk).unwrap().max_nodes, 4_224);
        assert!(cfg.class(NodeType::Service).is_none());
    }

    #[test]
    fn volume_reaches_five_million_apps() {
        let cfg = WorkloadConfig::blue_waters();
        let hours = 518.0 * 24.0;
        let apps: f64 = cfg
            .classes
            .iter()
            .map(|c| c.jobs_per_hour * hours * c.apps_per_job_mean)
            .sum();
        assert!(apps > 5.0e6, "only {apps:.0} apps configured");
        assert!(apps < 7.0e6, "implausibly many apps: {apps:.0}");
    }

    #[test]
    fn utilization_is_plausible() {
        // Mean node-hours demanded per hour must be below capacity but above
        // half of it (the paper's machine ran hot).
        let cfg = WorkloadConfig::blue_waters();
        let mut demand = 0.0;
        for c in &cfg.classes {
            let mean_duration_h =
                (c.duration_median_secs / 3_600.0) * (c.duration_sigma.powi(2) / 2.0).exp();
            // Split the mixture: capability runs carry the duration multiplier.
            let lo = c.capability_lo_frac * c.max_nodes as f64;
            let hi = c.max_nodes as f64;
            let cap_mean_nodes = c.capability_full_frac * hi
                + (1.0 - c.capability_full_frac) * (hi - lo) / (hi / lo).ln();
            let body_frac = 1.0 - c.single_node_fraction - c.capability_fraction;
            let body_mean = hpc_stats::Pareto::truncated(2.0, c.pareto_alpha, hi)
                .map(|p| hpc_stats::Distribution::mean(&p))
                .unwrap_or(2.0);
            let base = c.single_node_fraction + body_frac * body_mean;
            let cap = c.capability_fraction * cap_mean_nodes * c.capability_duration_multiplier;
            demand += c.jobs_per_hour * c.apps_per_job_mean * (base + cap) * mean_duration_h;
        }
        let capacity = 26_864.0;
        let util = demand / capacity;
        assert!(util > 0.45 && util < 0.98, "utilization {util:.2}");
    }

    #[test]
    fn scaled_config_matches_scaled_machine() {
        let cfg = WorkloadConfig::scaled(16);
        let m = Machine::blue_waters_scaled(16);
        assert_eq!(
            cfg.class(NodeType::Xe).unwrap().max_nodes,
            m.count_of(NodeType::Xe)
        );
        assert_eq!(
            cfg.class(NodeType::Xk).unwrap().max_nodes,
            m.count_of(NodeType::Xk)
        );
        cfg.validate().unwrap();
        let full = WorkloadConfig::blue_waters();
        assert!(
            cfg.class(NodeType::Xe).unwrap().jobs_per_hour
                < full.class(NodeType::Xe).unwrap().jobs_per_hour / 10.0
        );
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut cfg = WorkloadConfig::blue_waters();
        cfg.classes[0].jobs_per_hour = 0.0;
        assert!(cfg.validate().is_err());

        let mut cfg = WorkloadConfig::blue_waters();
        cfg.classes[0].single_node_fraction = 1.2;
        assert!(cfg.validate().is_err());

        let mut cfg = WorkloadConfig::blue_waters();
        cfg.n_users = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = WorkloadConfig::blue_waters();
        cfg.classes[0].node_type = NodeType::Service;
        assert!(cfg.validate().is_err());
    }
}
