//! The stochastic workload generator.
//!
//! Produces an endless, arrival-ordered stream of [`JobSpec`]s by merging
//! one Poisson arrival process per node class. Streaming matters: the full
//! field study is ~2.5 M jobs / 5 M applications, which the simulator
//! consumes one at a time without materializing the trace.

use hpc_stats::dist::Distribution;
use hpc_stats::{Exponential, LogNormal, Pareto};
use logdiver_types::{AppId, JobId, SimDuration, Timestamp, UserId};
use rand::Rng;

use crate::config::{ClassMix, WorkloadConfig};
use crate::job::{ApplicationSpec, IntrinsicOutcome, JobSpec};
use crate::users::UserPool;

/// Synthetic executable names, assigned per (user, small variation).
const COMMANDS: [&str; 12] = [
    "namd2", "chroma", "vasp", "milc", "amber.x", "cactus", "wrf.exe", "qmcpack", "gromacs",
    "enzo", "lammps", "nwchem",
];

struct ClassState {
    mix: ClassMix,
    interarrival: Exponential,
    duration: LogNormal,
    body: Pareto,
    next_arrival: Timestamp,
}

/// Streaming generator of jobs in arrival order.
pub struct WorkloadGenerator {
    classes: Vec<ClassState>,
    users: UserPool,
    next_job_id: u64,
    next_apid: u64,
    max_app_duration: SimDuration,
}

impl std::fmt::Debug for WorkloadGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadGenerator")
            .field("classes", &self.classes.len())
            .field("users", &self.users.len())
            .field("next_job_id", &self.next_job_id)
            .field("next_apid", &self.next_apid)
            .finish()
    }
}

impl WorkloadGenerator {
    /// Creates a generator starting at [`Timestamp::PRODUCTION_EPOCH`].
    ///
    /// # Errors
    ///
    /// Returns the validation message for an inconsistent configuration.
    pub fn new<R: Rng>(config: WorkloadConfig, rng: &mut R) -> Result<Self, String> {
        Self::starting_at(config, Timestamp::PRODUCTION_EPOCH, rng)
    }

    /// Creates a generator whose first arrivals fall after `start`.
    ///
    /// # Errors
    ///
    /// Returns the validation message for an inconsistent configuration.
    pub fn starting_at<R: Rng>(
        config: WorkloadConfig,
        start: Timestamp,
        rng: &mut R,
    ) -> Result<Self, String> {
        config.validate()?;
        let users = UserPool::new(
            config.n_users,
            config.zipf_s,
            config.base_user_failure,
            config.base_walltime_miss,
            rng,
        );
        let mut classes = Vec::with_capacity(config.classes.len());
        for mix in &config.classes {
            let interarrival = Exponential::new(mix.jobs_per_hour / 3_600.0)
                .map_err(|e| format!("class {}: {e}", mix.node_type))?;
            let duration = LogNormal::new(mix.duration_median_secs.ln(), mix.duration_sigma)
                .map_err(|e| format!("class {}: {e}", mix.node_type))?;
            let body = Pareto::truncated(2.0, mix.pareto_alpha, mix.max_nodes.max(3) as f64)
                .map_err(|e| format!("class {}: {e}", mix.node_type))?;
            let mut state = ClassState {
                mix: mix.clone(),
                interarrival,
                duration,
                body,
                next_arrival: start,
            };
            state.advance_arrival(rng);
            classes.push(state);
        }
        Ok(WorkloadGenerator {
            classes,
            users,
            next_job_id: 1,
            next_apid: 1_000_000,
            max_app_duration: SimDuration::from_secs(config.max_app_duration_secs as i64),
        })
    }

    /// The user pool (profiles are useful for downstream diagnostics).
    pub fn users(&self) -> &UserPool {
        &self.users
    }

    /// Arrival time of the next job, without consuming it.
    pub fn peek_arrival(&self) -> Timestamp {
        self.classes
            .iter()
            .map(|c| c.next_arrival)
            .min()
            .expect("at least one class by validation")
    }

    /// Produces the next job in global arrival order.
    pub fn next_job<R: Rng>(&mut self, rng: &mut R) -> JobSpec {
        let idx = self
            .classes
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.next_arrival)
            .map(|(i, _)| i)
            .expect("at least one class by validation");
        let arrival = self.classes[idx].next_arrival;
        self.classes[idx].advance_arrival(rng);
        let job_id = JobId::new(self.next_job_id);
        self.next_job_id += 1;
        let user = self.users.sample(rng);
        let profile = self.users.profile(user);

        let (mix_nodes, node_type, queue, apps_mean) = {
            let c = &self.classes[idx];
            let nodes = c.sample_width(rng);
            (
                nodes,
                c.mix.node_type,
                queue_for(nodes, c.mix.max_nodes),
                c.mix.apps_per_job_mean,
            )
        };

        // Applications: geometric count, widths within the allocation.
        let n_apps = sample_geometric(apps_mean, rng);
        let mut apps = Vec::with_capacity(n_apps);
        // Walltime requests are based on what the user *planned* — an app
        // that would overrun (intrinsic WalltimeExceeded) is budgeted at its
        // planned length, so the inflated actual duration hits the limit.
        let mut planned_secs: i64 = 0;
        for k in 0..n_apps {
            let width = if k == 0 || rng.random::<f64>() < 0.7 {
                mix_nodes
            } else {
                // A preparatory/post-processing step on part of the allocation.
                1 + (rng.random::<f64>() * mix_nodes as f64) as u32
            };
            let mut raw = self.classes[idx].duration.sample(rng);
            // Capability-scale runs are long: they dominate node-hours while
            // staying rare in count (see DESIGN.md §5).
            let mix = &self.classes[idx].mix;
            if (width as f64) >= mix.capability_lo_frac * mix.max_nodes as f64 {
                raw *= mix.capability_duration_multiplier;
            }
            let duration = SimDuration::from_secs((raw as i64).max(30))
                .clamp(SimDuration::from_secs(30), self.max_app_duration);
            let intrinsic = sample_intrinsic(profile.user_failure_prob, rng);
            planned_secs += duration.as_secs();
            // A user failure usually strikes partway through the run; a
            // would-be walltime overrun means the code runs far longer than
            // the user planned for (the deadline then cuts it off).
            let duration = match intrinsic {
                IntrinsicOutcome::Success => duration,
                IntrinsicOutcome::WalltimeExceeded => {
                    let inflate = 3.0 + 4.0 * rng.random::<f64>();
                    SimDuration::from_secs((duration.as_secs() as f64 * inflate) as i64)
                        .clamp(SimDuration::from_secs(60), self.max_app_duration)
                }
                _ => {
                    let frac = 0.05 + 0.95 * rng.random::<f64>();
                    SimDuration::from_secs(((duration.as_secs() as f64 * frac) as i64).max(10))
                }
            };
            apps.push(ApplicationSpec {
                apid: AppId::new(self.next_apid),
                node_type,
                nodes: width.clamp(1, mix_nodes),
                duration,
                command: command_for(user, k),
                intrinsic,
            });
            self.next_apid += 1;
        }

        // Walltime: padded over the *planned* duration unless the user
        // habitually underestimates, in which case the job will be cut off.
        let walltime = if rng.random::<f64>() < profile.walltime_miss_prob {
            let frac = 0.3 + 0.6 * rng.random::<f64>();
            SimDuration::from_secs(((planned_secs as f64 * frac) as i64).max(60))
        } else {
            SimDuration::from_secs(
                ((planned_secs as f64 * profile.walltime_padding) as i64).clamp(300, 48 * 3_600),
            )
        };

        let job = JobSpec {
            job: job_id,
            user,
            queue,
            arrival,
            node_type,
            nodes: mix_nodes,
            walltime,
            apps,
        };
        debug_assert_eq!(job.validate(), Ok(()));
        job
    }

    /// Collects every job arriving within `horizon` of the epoch.
    pub fn generate<R: Rng>(&mut self, horizon: SimDuration, rng: &mut R) -> Vec<JobSpec> {
        let end = Timestamp::PRODUCTION_EPOCH + horizon;
        let mut jobs = Vec::new();
        loop {
            let soonest = self
                .classes
                .iter()
                .map(|c| c.next_arrival)
                .min()
                .expect("at least one class");
            if soonest >= end {
                break;
            }
            jobs.push(self.next_job(rng));
        }
        jobs
    }
}

impl ClassState {
    fn advance_arrival<R: Rng>(&mut self, rng: &mut R) {
        let gap = self.interarrival.sample(rng).max(0.001);
        self.next_arrival += SimDuration::from_secs((gap as i64).max(1));
    }

    /// Samples a job width from the three-part mixture.
    fn sample_width<R: Rng>(&self, rng: &mut R) -> u32 {
        sample_job_width(&self.mix, &self.body, rng)
    }
}

/// Samples a job width from a class's three-part size mixture
/// (single-node mass / truncated-Pareto body / capability band).
///
/// Exposed so the calibration solver in `bw-sim` can integrate over the
/// exact size distribution the generator uses.
pub fn sample_width_for_mix<R: Rng>(mix: &ClassMix, rng: &mut R) -> u32 {
    let body = Pareto::truncated(2.0, mix.pareto_alpha, mix.max_nodes.max(3) as f64)
        .expect("validated parameters");
    sample_job_width(mix, &body, rng)
}

fn sample_job_width<R: Rng>(mix: &ClassMix, body: &Pareto, rng: &mut R) -> u32 {
    let u: f64 = rng.random();
    if u < mix.single_node_fraction {
        return 1;
    }
    if u < mix.single_node_fraction + mix.capability_fraction {
        // Capability band: sometimes the full class, otherwise
        // log-uniform across the band.
        if rng.random::<f64>() < mix.capability_full_frac {
            return mix.max_nodes;
        }
        let lo = (mix.capability_lo_frac * mix.max_nodes as f64).max(2.0);
        let hi = mix.max_nodes as f64;
        let x = (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp();
        return (x as u32).clamp(2, mix.max_nodes);
    }
    (body.sample(rng) as u32).clamp(2, mix.max_nodes)
}

fn queue_for(nodes: u32, max_nodes: u32) -> String {
    if nodes >= max_nodes / 2 {
        "capability".to_string()
    } else if nodes <= 2 {
        "small".to_string()
    } else {
        "normal".to_string()
    }
}

fn command_for(user: UserId, app_index: usize) -> String {
    let base = COMMANDS[(user.value() as usize + app_index) % COMMANDS.len()];
    base.to_string()
}

/// Geometric number of applications with the given mean (≥ 1).
fn sample_geometric<R: Rng>(mean: f64, rng: &mut R) -> usize {
    let p = (1.0 / mean.max(1.0)).clamp(0.05, 1.0);
    let mut k = 1;
    while k < 64 && rng.random::<f64>() > p {
        k += 1;
    }
    k
}

fn sample_intrinsic<R: Rng>(user_failure_prob: f64, rng: &mut R) -> IntrinsicOutcome {
    if rng.random::<f64>() >= user_failure_prob {
        return IntrinsicOutcome::Success;
    }
    match (rng.random::<f64>() * 100.0) as u32 {
        0..=34 => IntrinsicOutcome::Segfault,
        35..=64 => IntrinsicOutcome::NonzeroExit,
        65..=79 => IntrinsicOutcome::Abort,
        80..=89 => IntrinsicOutcome::OutOfMemory,
        _ => IntrinsicOutcome::WalltimeExceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdiver_types::NodeType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generator(seed: u64) -> (WorkloadGenerator, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = WorkloadGenerator::new(WorkloadConfig::scaled(16), &mut rng).unwrap();
        (generator, rng)
    }

    #[test]
    fn jobs_arrive_in_order_and_validate() {
        let (mut generator, mut rng) = generator(1);
        let jobs = generator.generate(SimDuration::from_days(2), &mut rng);
        assert!(jobs.len() > 100, "only {} jobs in 2 days", jobs.len());
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].job < w[1].job);
        }
        for job in &jobs {
            job.validate().unwrap();
        }
    }

    #[test]
    fn apids_are_unique_and_increasing() {
        let (mut generator, mut rng) = generator(2);
        let jobs = generator.generate(SimDuration::from_days(1), &mut rng);
        let apids: Vec<u64> = jobs
            .iter()
            .flat_map(|j| &j.apps)
            .map(|a| a.apid.value())
            .collect();
        let mut sorted = apids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), apids.len());
    }

    #[test]
    fn both_classes_appear() {
        let (mut generator, mut rng) = generator(3);
        let jobs = generator.generate(SimDuration::from_days(3), &mut rng);
        let xe = jobs.iter().filter(|j| j.node_type == NodeType::Xe).count();
        let xk = jobs.iter().filter(|j| j.node_type == NodeType::Xk).count();
        assert!(xe > 0 && xk > 0);
        assert!(xe > xk, "XE should dominate: {xe} vs {xk}");
    }

    #[test]
    fn size_mixture_has_expected_shape() {
        let (mut generator, mut rng) = generator(4);
        let jobs = generator.generate(SimDuration::from_days(20), &mut rng);
        let xe: Vec<&JobSpec> = jobs
            .iter()
            .filter(|j| j.node_type == NodeType::Xe)
            .collect();
        let singles = xe.iter().filter(|j| j.nodes == 1).count() as f64 / xe.len() as f64;
        assert!(
            (singles - 0.40).abs() < 0.06,
            "single-node fraction {singles}"
        );
        let max = xe.iter().map(|j| j.nodes).max().unwrap();
        let cfg_max = WorkloadConfig::scaled(16)
            .class(NodeType::Xe)
            .unwrap()
            .max_nodes;
        assert!(max <= cfg_max);
    }

    #[test]
    fn durations_respect_cap_and_floor() {
        let (mut generator, mut rng) = generator(5);
        let jobs = generator.generate(SimDuration::from_days(5), &mut rng);
        for app in jobs.iter().flat_map(|j| &j.apps) {
            assert!(app.duration.as_secs() >= 10);
            assert!(app.duration.as_hours_f64() <= 24.0 + 1e-9);
        }
    }

    #[test]
    fn user_failures_occur_at_configured_rate() {
        let (mut generator, mut rng) = generator(6);
        let jobs = generator.generate(SimDuration::from_days(10), &mut rng);
        let apps: Vec<_> = jobs.iter().flat_map(|j| &j.apps).collect();
        let failed = apps.iter().filter(|a| !a.intrinsic.is_success()).count() as f64;
        let rate = failed / apps.len() as f64;
        // Base is 0.18 but per-user spread recenters it; accept a wide band.
        assert!(rate > 0.05 && rate < 0.45, "user failure rate {rate}");
    }

    #[test]
    fn walltime_misses_exist_but_are_minority() {
        let (mut generator, mut rng) = generator(7);
        let jobs = generator.generate(SimDuration::from_days(10), &mut rng);
        let misses = jobs
            .iter()
            .filter(|j| j.walltime < j.natural_duration())
            .count() as f64;
        let rate = misses / jobs.len() as f64;
        assert!(rate > 0.0 && rate < 0.2, "walltime miss rate {rate}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut g1, mut r1) = generator(42);
        let (mut g2, mut r2) = generator(42);
        let a = g1.generate(SimDuration::from_days(1), &mut r1);
        let b = g2.generate(SimDuration::from_days(1), &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_geometric(2.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "geometric mean {mean}");
    }
}
