//! Batch-scheduler state machine: FCFS with EASY backfill.
//!
//! The policy matters for two reasons: (1) applications must occupy
//! *concrete node sets over concrete time windows* so faults intersect them
//! realistically, and (2) full-machine capability jobs must run without
//! collapsing utilization. EASY backfill achieves both: the head of the
//! queue gets a **reservation** at the earliest time enough nodes are
//! guaranteed free (computed from running jobs' walltime bounds), and a
//! waiting job may jump the queue only if it cannot delay that reservation
//! — either it ends before the shadow time, or it fits in the nodes the
//! head will not need.

use std::collections::{HashMap, VecDeque};

use bw_topology::{Machine, NodeAllocator, PlacementPolicy};
use logdiver_types::{JobId, NodeId, NodeSet, NodeType, SimDuration, Timestamp};
use serde::{Deserialize, Serialize};

use crate::job::JobSpec;

/// A job the scheduler has just started.
#[derive(Debug, Clone, PartialEq)]
pub struct StartedJob {
    /// The job specification.
    pub spec: JobSpec,
    /// Concrete nodes granted.
    pub nodes: NodeSet,
    /// Start time.
    pub start: Timestamp,
}

/// Aggregate scheduler statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Jobs started so far.
    pub started: u64,
    /// Jobs submitted so far.
    pub submitted: u64,
    /// Sum of queue waits in seconds (over started jobs).
    pub total_wait_secs: i64,
    /// Largest queue length observed.
    pub max_queue_len: usize,
    /// Jobs started by backfilling past a blocked head.
    pub backfilled: u64,
}

impl SchedulerStats {
    /// Mean queue wait over started jobs.
    pub fn mean_wait(&self) -> SimDuration {
        if self.started == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(self.total_wait_secs / self.started as i64)
        }
    }
}

/// What the scheduler remembers about a running job (for reservations).
#[derive(Debug, Clone, Copy)]
struct RunningInfo {
    walltime_end: Timestamp,
    nodes: u32,
    node_type: NodeType,
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    allocator: NodeAllocator,
    queue: VecDeque<(JobSpec, Timestamp)>,
    running: HashMap<u64, RunningInfo>,
    stats: SchedulerStats,
}

impl Scheduler {
    /// Creates a scheduler over a machine with every compute node free and
    /// packed placement.
    pub fn new(machine: &Machine) -> Self {
        Self::with_policy(machine, PlacementPolicy::Packed)
    }

    /// Creates a scheduler with an explicit placement policy.
    pub fn with_policy(machine: &Machine, policy: PlacementPolicy) -> Self {
        Scheduler {
            allocator: NodeAllocator::with_policy(machine, policy),
            queue: VecDeque::new(),
            running: HashMap::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Submits a job; returns every job that starts as a result.
    pub fn submit(&mut self, job: JobSpec, now: Timestamp) -> Vec<StartedJob> {
        self.stats.submitted += 1;
        self.queue.push_back((job, now));
        self.stats.max_queue_len = self.stats.max_queue_len.max(self.queue.len());
        self.try_start(now)
    }

    /// Reports a job completion, releasing its nodes; returns every queued
    /// job that starts as a result.
    pub fn job_finished(&mut self, job: JobId, nodes: &NodeSet, now: Timestamp) -> Vec<StartedJob> {
        self.running.remove(&job.value());
        self.allocator.release(nodes);
        self.try_start(now)
    }

    /// Takes a node out of service (it will not be granted to new jobs).
    pub fn node_down(&mut self, nid: NodeId) -> bool {
        self.allocator.mark_down(nid)
    }

    /// Returns a repaired node to service; may start queued jobs.
    pub fn node_up(&mut self, nid: NodeId, now: Timestamp) -> Vec<StartedJob> {
        if self.allocator.mark_up(nid) {
            self.try_start(now)
        } else {
            Vec::new()
        }
    }

    /// Jobs waiting in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Nodes currently allocated.
    pub fn allocated_nodes(&self) -> u32 {
        self.allocator.allocated_count()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Direct access to allocation state (used by the simulator to decide
    /// fault impact).
    pub fn allocator(&self) -> &NodeAllocator {
        &self.allocator
    }

    /// Earliest time at which `needed` nodes of class `ty` are guaranteed
    /// free, assuming every running job holds its nodes until its walltime
    /// bound, plus the node surplus at that time (`free_at_shadow − needed`).
    /// Returns `None` when even all running jobs ending cannot free enough
    /// (capacity shrank below the request — the job waits for repairs).
    fn reservation(&self, needed: u32, ty: NodeType) -> Option<(Timestamp, u32)> {
        let mut free = self.allocator.free_count(ty);
        if free >= needed {
            return Some((Timestamp::from_unix(i64::MIN / 2), free - needed));
        }
        let mut ends: Vec<(Timestamp, u32)> = self
            .running
            .values()
            .filter(|r| r.node_type == ty)
            .map(|r| (r.walltime_end, r.nodes))
            .collect();
        ends.sort_unstable_by_key(|&(t, _)| t);
        for (t, n) in ends {
            free += n;
            if free >= needed {
                return Some((t, free - needed));
            }
        }
        None
    }

    fn start_at(&mut self, idx: usize, now: Timestamp) -> StartedJob {
        let (job, submitted) = self.queue.remove(idx).expect("index in range");
        let nodes = self
            .allocator
            .allocate(job.node_type, job.nodes)
            .expect("caller checked free count");
        self.stats.started += 1;
        if idx > 0 {
            self.stats.backfilled += 1;
        }
        self.stats.total_wait_secs += (now - submitted).as_secs().max(0);
        self.running.insert(
            job.job.value(),
            RunningInfo {
                walltime_end: now + job.walltime,
                nodes: job.nodes,
                node_type: job.node_type,
            },
        );
        StartedJob {
            spec: job,
            nodes,
            start: now,
        }
    }

    fn try_start(&mut self, now: Timestamp) -> Vec<StartedJob> {
        let mut started = Vec::new();
        'outer: while let Some((head, _)) = self.queue.front() {
            // FCFS: the head starts whenever it fits.
            if self.allocator.free_count(head.node_type) >= head.nodes {
                started.push(self.start_at(0, now));
                continue;
            }
            // Head blocked: compute its reservation and backfill around it.
            // Jobs of the *other* class never delay the head (separate
            // pools); same-class jobs must not push the shadow time back.
            let head_ty = head.node_type;
            let head_needed = head.nodes;
            let reservation = self.reservation(head_needed, head_ty);
            for idx in 1..self.queue.len() {
                let (job, _) = &self.queue[idx];
                if self.allocator.free_count(job.node_type) < job.nodes {
                    continue;
                }
                let ok = if job.node_type != head_ty {
                    true
                } else {
                    match reservation {
                        // Ends before the reservation, or fits in nodes the
                        // head will leave over.
                        Some((shadow, extra)) => now + job.walltime <= shadow || job.nodes <= extra,
                        // No reservation exists (capacity shortfall): the
                        // head cannot start until repairs; do not let it
                        // starve behind an unbounded backfill stream of
                        // *long* jobs, but short ones keep the machine busy.
                        None => true,
                    }
                };
                if ok {
                    started.push(self.start_at(idx, now));
                    continue 'outer;
                }
            }
            break;
        }
        started
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{ApplicationSpec, IntrinsicOutcome};
    use bw_topology::MachineBuilder;
    use logdiver_types::{AppId, NodeType, UserId};

    fn machine() -> Machine {
        MachineBuilder::new("sched-test")
            .xe_nodes(16)
            .xk_nodes(4)
            .service_nodes(4)
            .build()
    }

    fn job_with_walltime(id: u64, nodes: u32, walltime_hours: i64) -> JobSpec {
        JobSpec {
            job: JobId::new(id),
            user: UserId::new(0),
            queue: "normal".into(),
            arrival: Timestamp::PRODUCTION_EPOCH,
            node_type: NodeType::Xe,
            nodes,
            walltime: SimDuration::from_hours(walltime_hours),
            apps: vec![ApplicationSpec {
                apid: AppId::new(id * 10),
                node_type: NodeType::Xe,
                nodes,
                duration: SimDuration::from_mins(30),
                command: "a.out".into(),
                intrinsic: IntrinsicOutcome::Success,
            }],
        }
    }

    fn job(id: u64, nodes: u32) -> JobSpec {
        job_with_walltime(id, nodes, 1)
    }

    fn t(hours: i64) -> Timestamp {
        Timestamp::PRODUCTION_EPOCH + SimDuration::from_hours(hours)
    }

    #[test]
    fn immediate_start_when_nodes_free() {
        let mut s = Scheduler::new(&machine());
        let started = s.submit(job(1, 8), t(0));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].nodes.len(), 8);
        assert_eq!(s.allocated_nodes(), 8);
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn queueing_and_release() {
        let mut s = Scheduler::new(&machine());
        let a = s.submit(job(1, 12), t(0));
        assert_eq!(a.len(), 1);
        let b = s.submit(job(2, 12), t(0));
        assert!(b.is_empty(), "12 nodes not free");
        assert_eq!(s.queue_len(), 1);
        let c = s.job_finished(JobId::new(1), &a[0].nodes, t(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].spec.job, JobId::new(2));
        assert_eq!(s.stats().mean_wait(), SimDuration::from_mins(30));
    }

    #[test]
    fn backfill_only_when_head_is_not_delayed() {
        let mut s = Scheduler::new(&machine());
        // Running job holds 10 nodes until t+2h (its walltime).
        let a = s.submit(job_with_walltime(1, 10, 2), t(0));
        assert_eq!(a.len(), 1);
        // Head needs 16: reservation at t+2h, extra = (6+10)−16 = 0.
        assert!(s.submit(job_with_walltime(2, 16, 2), t(0)).is_empty());
        // A short job (1 h ≤ 2 h shadow) backfills…
        let c = s.submit(job_with_walltime(3, 4, 1), t(0));
        assert_eq!(c.len(), 1, "short job should backfill");
        assert_eq!(c[0].spec.job, JobId::new(3));
        // …but a long one (3 h > shadow) must not delay the head.
        let d = s.submit(job_with_walltime(4, 2, 3), t(0));
        assert!(d.is_empty(), "long job would delay the reservation");
        assert_eq!(s.stats().backfilled, 1);
    }

    #[test]
    fn head_starts_at_reservation_time() {
        let mut s = Scheduler::new(&machine());
        let a = s.submit(job_with_walltime(1, 10, 2), t(0));
        assert!(s.submit(job_with_walltime(2, 16, 2), t(0)).is_empty());
        let started = s.job_finished(JobId::new(1), &a[0].nodes, t(2));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].spec.job, JobId::new(2));
    }

    #[test]
    fn other_class_jobs_always_backfill() {
        let mut s = Scheduler::new(&machine());
        let _a = s.submit(job_with_walltime(1, 10, 2), t(0));
        assert!(s.submit(job_with_walltime(2, 16, 48), t(0)).is_empty());
        // An XK job uses a different pool: it can never delay the XE head.
        let mut xk = job_with_walltime(3, 4, 48);
        xk.node_type = NodeType::Xk;
        xk.apps[0].node_type = NodeType::Xk;
        let c = s.submit(xk, t(0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn extra_nodes_admit_long_small_jobs() {
        let mut s = Scheduler::new(&machine());
        // Running: 4 nodes until t+2. Head needs 14 → shadow t+2,
        // extra = (12+4)−14 = 2.
        let _a = s.submit(job_with_walltime(1, 4, 2), t(0));
        assert!(s.submit(job_with_walltime(2, 14, 2), t(0)).is_empty());
        // A 2-node job of any length fits in the extra.
        let c = s.submit(job_with_walltime(3, 2, 40), t(0));
        assert_eq!(c.len(), 1, "fits in the head's surplus");
        // A 3-node long job would eat reserved nodes.
        let d = s.submit(job_with_walltime(4, 3, 40), t(0));
        assert!(d.is_empty());
    }

    #[test]
    fn down_node_shrinks_capacity() {
        let mut s = Scheduler::new(&machine());
        assert!(s.node_down(NodeId::new(0)));
        let a = s.submit(job(1, 16), t(0));
        assert!(a.is_empty(), "only 15 XE nodes in service");
        let b = s.node_up(NodeId::new(0), t(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn capacity_shortfall_does_not_block_short_work() {
        let mut s = Scheduler::new(&machine());
        for nid in 0..8 {
            s.node_down(NodeId::new(nid));
        }
        // Head wants 16 but only 8 XE nodes are in service and none running:
        // no reservation exists; smaller jobs still flow.
        assert!(s.submit(job(1, 16), t(0)).is_empty());
        let b = s.submit(job(2, 4), t(0));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn stats_track_submissions() {
        let mut s = Scheduler::new(&machine());
        s.submit(job(1, 16), t(0));
        s.submit(job(2, 16), t(0));
        assert_eq!(s.stats().submitted, 2);
        assert_eq!(s.stats().started, 1);
        assert_eq!(s.stats().max_queue_len, 1);
    }

    #[test]
    fn fcfs_order_is_preserved_among_equal_jobs() {
        let mut s = Scheduler::new(&machine());
        let a = s.submit(job_with_walltime(1, 16, 1), t(0));
        assert_eq!(a.len(), 1);
        assert!(s.submit(job(2, 10), t(0)).is_empty());
        assert!(s.submit(job(3, 10), t(0)).is_empty());
        let started = s.job_finished(JobId::new(1), &a[0].nodes, t(1));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].spec.job, JobId::new(2), "FCFS among equals");
    }
}
