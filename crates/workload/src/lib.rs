//! # bw-workload
//!
//! Synthetic Blue-Waters-like batch workload: users, jobs, application runs
//! (apruns), a stochastic workload generator, and a FCFS-with-backfill
//! scheduler state machine.
//!
//! ## Model
//!
//! - **Users** are Zipf-distributed: a few heavy projects dominate
//!   submission volume (as on any production machine).
//! - **Jobs** arrive by a Poisson process per node class (XE / XK). A job
//!   requests `n` nodes and a walltime, and runs `k ≥ 1` applications
//!   (aprun launches) back-to-back inside its allocation — the paper's unit
//!   of analysis is the application run, of which Blue Waters saw > 5 M in
//!   518 days.
//! - **Sizes** are heavy-tailed (mixture of single-node mass and a truncated
//!   Pareto body) with a small capability-run component at full machine
//!   scale so the scale-sensitivity figures have samples all the way out.
//! - **Durations** are log-normal; requested walltimes add user-specific
//!   padding.
//! - Each application carries an **intrinsic outcome** — what would happen
//!   absent any system problem (success, a user-caused failure, or hitting
//!   the walltime limit). The simulator overrides it when a system fault
//!   strikes the allocation, which is exactly the ground-truth distinction
//!   LogDiver is later asked to recover from the logs.
//!
//! ## Example
//!
//! ```
//! use bw_workload::{WorkloadConfig, WorkloadGenerator};
//! use logdiver_types::SimDuration;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let config = WorkloadConfig::scaled(16);
//! let mut generator = WorkloadGenerator::new(config, &mut rng).unwrap();
//! let jobs = generator.generate(SimDuration::from_days(1), &mut rng);
//! assert!(!jobs.is_empty());
//! assert!(jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod generator;
pub mod job;
pub mod scheduler;
pub mod swf;
pub mod users;

pub use config::{ClassMix, WorkloadConfig};
pub use generator::WorkloadGenerator;
pub use job::{ApplicationSpec, IntrinsicOutcome, JobSpec};
pub use scheduler::{Scheduler, SchedulerStats};
pub use users::UserPool;
