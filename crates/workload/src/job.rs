//! Job and application specifications produced by the generator.

use logdiver_types::{AppId, JobId, NodeType, SimDuration, Timestamp, UserId};
use serde::{Deserialize, Serialize};

/// What an application run would do if no system problem interfered.
///
/// This is generator-side *ground truth*; the simulator may override it with
/// a system-caused failure, and LogDiver never sees it directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntrinsicOutcome {
    /// Runs to completion and exits 0.
    Success,
    /// Dies on SIGSEGV/SIGBUS at some fraction of its natural duration.
    Segfault,
    /// Aborts itself (assertion, SIGABRT).
    Abort,
    /// Exceeds its memory and is OOM-killed.
    OutOfMemory,
    /// Exits with a nonzero code.
    NonzeroExit,
    /// Would run longer than the job's remaining walltime.
    WalltimeExceeded,
}

impl IntrinsicOutcome {
    /// True when the run would have succeeded absent system problems.
    pub const fn is_success(self) -> bool {
        matches!(self, IntrinsicOutcome::Success)
    }
}

/// One application run (aprun) inside a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationSpec {
    /// Application id, unique across the whole generated trace.
    pub apid: AppId,
    /// Node class the application needs.
    pub node_type: NodeType,
    /// Width in nodes (≤ the enclosing job's allocation).
    pub nodes: u32,
    /// Natural runtime absent interference.
    pub duration: SimDuration,
    /// Executable name (synthetic but stable per user/application mix).
    pub command: String,
    /// What happens if the system behaves.
    pub intrinsic: IntrinsicOutcome,
}

/// One batch job: an allocation request plus a sequence of applications run
/// back-to-back inside it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Job id, unique and increasing with arrival order.
    pub job: JobId,
    /// Submitting user.
    pub user: UserId,
    /// Queue name.
    pub queue: String,
    /// Submission time.
    pub arrival: Timestamp,
    /// Node class.
    pub node_type: NodeType,
    /// Allocation width in nodes (the max over its applications).
    pub nodes: u32,
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Applications, run in order.
    pub apps: Vec<ApplicationSpec>,
}

impl JobSpec {
    /// Natural runtime of the whole job: the sum of its applications'
    /// durations (plus nothing — inter-aprun gaps are folded into the
    /// durations), never negative.
    pub fn natural_duration(&self) -> SimDuration {
        self.apps
            .iter()
            .fold(SimDuration::ZERO, |acc, a| acc + a.duration)
    }

    /// Node-hours the job would consume if it ran its natural duration.
    pub fn natural_node_hours(&self) -> f64 {
        self.apps
            .iter()
            .map(|a| a.nodes as f64 * a.duration.as_hours_f64())
            .sum()
    }

    /// Basic well-formedness check used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        if self.apps.is_empty() {
            return Err(format!("job {} has no applications", self.job));
        }
        if self.nodes == 0 {
            return Err(format!("job {} requests zero nodes", self.job));
        }
        for app in &self.apps {
            if app.nodes == 0 || app.nodes > self.nodes {
                return Err(format!(
                    "app {} width {} outside job allocation {}",
                    app.apid, app.nodes, self.nodes
                ));
            }
            if app.node_type != self.node_type {
                return Err(format!("app {} class differs from job", app.apid));
            }
            if app.duration <= SimDuration::ZERO {
                return Err(format!("app {} has non-positive duration", app.apid));
            }
        }
        if self.walltime <= SimDuration::ZERO {
            return Err(format!("job {} has non-positive walltime", self.job));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(apid: u64, nodes: u32, secs: i64) -> ApplicationSpec {
        ApplicationSpec {
            apid: AppId::new(apid),
            node_type: NodeType::Xe,
            nodes,
            duration: SimDuration::from_secs(secs),
            command: "a.out".into(),
            intrinsic: IntrinsicOutcome::Success,
        }
    }

    fn job() -> JobSpec {
        JobSpec {
            job: JobId::new(1),
            user: UserId::new(0),
            queue: "normal".into(),
            arrival: Timestamp::PRODUCTION_EPOCH,
            node_type: NodeType::Xe,
            nodes: 8,
            walltime: SimDuration::from_hours(2),
            apps: vec![app(1, 8, 1800), app(2, 4, 1800)],
        }
    }

    #[test]
    fn natural_duration_sums_apps() {
        let j = job();
        assert_eq!(j.natural_duration(), SimDuration::from_hours(1));
        assert!((j.natural_node_hours() - (8.0 * 0.5 + 4.0 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(job().validate().is_ok());
    }

    #[test]
    fn validate_catches_problems() {
        let mut j = job();
        j.apps.clear();
        assert!(j.validate().is_err());

        let mut j = job();
        j.apps[0].nodes = 16; // exceeds allocation
        assert!(j.validate().is_err());

        let mut j = job();
        j.apps[1].node_type = NodeType::Xk;
        assert!(j.validate().is_err());

        let mut j = job();
        j.apps[0].duration = SimDuration::ZERO;
        assert!(j.validate().is_err());

        let mut j = job();
        j.walltime = SimDuration::ZERO;
        assert!(j.validate().is_err());
    }

    #[test]
    fn intrinsic_success_predicate() {
        assert!(IntrinsicOutcome::Success.is_success());
        assert!(!IntrinsicOutcome::Segfault.is_success());
        assert!(!IntrinsicOutcome::WalltimeExceeded.is_success());
    }
}
