//! The user population.
//!
//! Submission volume on production machines is heavily skewed: a few teams
//! drive most of the load. Users are Zipf-distributed over submission
//! probability, and each carries a per-user failure proneness (some codes
//! segfault a lot, some teams pad walltimes well) sampled once at pool
//! construction — which produces the realistic per-user clustering of
//! user-caused failures.

use hpc_stats::Zipf;
use logdiver_types::UserId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-user behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Probability that an application fails for a user-attributable reason.
    pub user_failure_prob: f64,
    /// Probability that a job underestimates its walltime.
    pub walltime_miss_prob: f64,
    /// Multiplier applied to requested walltime over natural duration.
    pub walltime_padding: f64,
}

/// A population of users with Zipf-skewed activity.
#[derive(Debug, Clone)]
pub struct UserPool {
    zipf: Zipf,
    profiles: Vec<UserProfile>,
}

impl UserPool {
    /// Creates a pool of `n` users with activity exponent `s` and profiles
    /// drawn around the given base rates.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or base rates are outside `[0, 1)`.
    pub fn new<R: Rng>(
        n: usize,
        s: f64,
        base_user_failure: f64,
        base_walltime_miss: f64,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "user pool cannot be empty");
        assert!(
            (0.0..1.0).contains(&base_user_failure),
            "base_user_failure out of [0,1)"
        );
        assert!(
            (0.0..1.0).contains(&base_walltime_miss),
            "base_walltime_miss out of [0,1)"
        );
        let zipf = Zipf::new(n, s).expect("validated parameters");
        let profiles = (0..n)
            .map(|_| {
                // Spread each rate by a ×0.25..×2.5 factor around the base.
                let spread = |base: f64, r: &mut R| -> f64 {
                    (base * (0.25 + 2.25 * r.random::<f64>())).clamp(0.0, 0.95)
                };
                UserProfile {
                    user_failure_prob: spread(base_user_failure, rng),
                    walltime_miss_prob: spread(base_walltime_miss, rng),
                    walltime_padding: 1.2 + 2.0 * rng.random::<f64>(),
                }
            })
            .collect();
        UserPool { zipf, profiles }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when the pool is empty (cannot happen after construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Draws a submitting user (rank 1 = most active → `UserId(0)`).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> UserId {
        UserId::new((self.zipf.sample_rank(rng) - 1) as u32)
    }

    /// Profile of a user.
    ///
    /// # Panics
    ///
    /// Panics for a user id outside the pool.
    pub fn profile(&self, user: UserId) -> UserProfile {
        self.profiles[user.value() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn activity_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = UserPool::new(200, 1.1, 0.2, 0.05, &mut rng);
        let mut counts = vec![0u32; 200];
        for _ in 0..20_000 {
            counts[pool.sample(&mut rng).value() as usize] += 1;
        }
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
    }

    #[test]
    fn profiles_are_in_range_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = UserPool::new(100, 1.0, 0.2, 0.05, &mut rng);
        let mut min_f: f64 = 1.0;
        let mut max_f: f64 = 0.0;
        for u in 0..100 {
            let p = pool.profile(UserId::new(u));
            assert!((0.0..=0.95).contains(&p.user_failure_prob));
            assert!((0.0..=0.95).contains(&p.walltime_miss_prob));
            assert!(p.walltime_padding >= 1.2);
            min_f = min_f.min(p.user_failure_prob);
            max_f = max_f.max(p.user_failure_prob);
        }
        assert!(max_f > 2.0 * min_f, "profiles should vary across users");
    }

    #[test]
    #[should_panic(expected = "user pool cannot be empty")]
    fn empty_pool_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = UserPool::new(0, 1.0, 0.1, 0.1, &mut rng);
    }
}
