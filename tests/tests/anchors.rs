//! The abstract's anchored numbers, measured end-to-end on the scaled
//! machine (the full-machine versions are the F1/F2 bench targets; this
//! test pins the *relative* curve, which is scale-invariant by design).

use bw_sim::SimConfig;
use logdiver_integration::{run_end_to_end, EndToEnd};
use logdiver_types::NodeType;

/// The anchor measurements need a usable sample of capability-scale runs.
/// On a geometry-scaled machine those arrive every few days at the paper's
/// mix, so the anchor tests raise the capability *frequency* (count share)
/// — per-run failure probabilities are anchored per width fraction and are
/// unaffected; the calibration solve runs on the modified mix.
fn anchor_run(seed: u64, days: u32) -> EndToEnd {
    let mut config = SimConfig::scaled(16, days).with_seed(seed);
    for class in &mut config.workload.classes {
        class.capability_fraction *= 8.0;
    }
    run_end_to_end(config)
}

#[test]
fn full_scale_failure_probability_matches_anchor_band() {
    // 60 days at /16 scale with boosted capability frequency gives a few
    // hundred capability runs per class.
    let e2e = anchor_run(31, 60);
    let m = &e2e.analysis.metrics;
    for (ty, full_anchor) in [(NodeType::Xe, 0.162), (NodeType::Xk, 0.129)] {
        let curve = m.scale_curves.iter().find(|c| c.node_type == ty).unwrap();
        let max_nodes = curve.buckets.last().unwrap().hi;
        let full = curve.bucket_containing(max_nodes).unwrap();
        assert!(full.runs >= 30, "{ty}: only {} full-scale runs", full.runs);
        // The Wilson interval must overlap a band around the anchor.
        assert!(
            full.ci.0 < full_anchor * 1.6 && full.ci.1 > full_anchor * 0.6,
            "{ty}: P(full)={:.3} CI [{:.3},{:.3}] vs anchor {full_anchor}",
            full.probability,
            full.ci.0,
            full.ci.1
        );
    }
}

#[test]
fn scale_curve_rises_steeply_toward_full_machine() {
    let e2e = anchor_run(32, 60);
    let m = &e2e.analysis.metrics;
    let xe = m
        .scale_curves
        .iter()
        .find(|c| c.node_type == NodeType::Xe)
        .unwrap();
    // Probability in the largest bucket must dwarf the small-app buckets.
    let small: Vec<_> = xe
        .buckets
        .iter()
        .filter(|b| b.hi <= 1_024 && b.runs > 50)
        .collect();
    let full = xe.buckets.last().unwrap();
    assert!(full.runs > 0);
    for b in small {
        assert!(
            full.probability > 5.0 * b.probability.max(0.002),
            "full {:.4} vs bucket {}-{} {:.4}",
            full.probability,
            b.lo,
            b.hi,
            b.probability
        );
    }
}

#[test]
fn blend_sits_near_the_paper_value() {
    let e2e = anchor_run(33, 60);
    let f = e2e.analysis.metrics.system_failure_fraction;
    // Paper: 1.53 %. Allow sampling noise at this volume.
    assert!(f > 0.010 && f < 0.022, "system-failure fraction {f}");
}

#[test]
fn failed_runs_carry_outsized_node_hours() {
    let e2e = anchor_run(34, 60);
    let m = &e2e.analysis.metrics;
    // Paper: 1.53 % of runs ↔ ~9 % of node-hours. Our simulator lands in
    // the same regime (count share ≪ node-hour share); see EXPERIMENTS.md
    // for the measured full-scale number and its analysis.
    assert!(
        m.failed_node_hours_fraction > 2.0 * m.system_failure_fraction,
        "node-hour share {:.4} vs count share {:.4}",
        m.failed_node_hours_fraction,
        m.system_failure_fraction
    );
    assert!(
        m.failed_node_hours_fraction > 0.02 && m.failed_node_hours_fraction < 0.20,
        "node-hour share {:.4}",
        m.failed_node_hours_fraction
    );
}

#[test]
fn hybrid_detection_gap_shows_up() {
    // Lesson (iii) is carried by node-scoped GPU faults, which are
    // per-node-hour processes — invisible on a small machine over weeks.
    // Boost them (mechanism test; calibration skipped) to make the XE/XK
    // contrast measurable; the full-machine bench shows it at paper rates.
    let mut config = SimConfig::scaled(32, 20)
        .with_seed(35)
        .without_calibration();
    config.faults.gpu_fault_per_node_hour = 2.0e-2;
    config.faults.xk_node_crash_per_node_hour = 1.0e-3;
    config.faults.xe_node_crash_per_node_hour = 1.0e-3;
    for class in &mut config.workload.classes {
        if class.node_type == NodeType::Xk {
            class.jobs_per_hour *= 4.0; // keep XK nodes busy enough to be hit
        }
    }
    let e2e = run_end_to_end(config);
    let m = &e2e.analysis.metrics;
    let xe = m
        .detection
        .iter()
        .find(|d| d.node_type == NodeType::Xe)
        .unwrap();
    let xk = m
        .detection
        .iter()
        .find(|d| d.node_type == NodeType::Xk)
        .unwrap();
    assert!(
        xk.system_failures > 20,
        "too few XK system failures: {}",
        xk.system_failures
    );
    // Lesson (iii): hybrid failures are far more often unexplained.
    assert!(
        xk.fraction_undetermined > 1.5 * xe.fraction_undetermined.max(0.01),
        "XK {:.3} vs XE {:.3}",
        xk.fraction_undetermined,
        xe.fraction_undetermined
    );
}
