//! Failure injection on the tool itself: corrupted, truncated and
//! out-of-order input must degrade gracefully, never panic.

use bw_sim::SimConfig;
use logdiver::{LogCollection, LogDiver};
use logdiver_integration::{run_end_to_end, to_log_collection};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn corrupt(line: &str, rng: &mut impl Rng) -> String {
    let mut s = line.to_string();
    match rng.random_range(0..4) {
        0 => s.truncate(s.len() / 2),    // truncated write
        1 => s = format!("{s}{s}"),      // doubled write
        2 => s = s.replace(' ', ""),     // mangled separators
        _ => s = format!("\u{fffd}{s}"), // encoding damage
    }
    s
}

#[test]
fn corrupted_lines_never_panic_and_are_counted() {
    let e2e = run_end_to_end(SimConfig::scaled(48, 3).with_seed(41));
    let mut logs = to_log_collection(&e2e.sim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    // Corrupt 10 % of every stream.
    for stream in [
        &mut logs.syslog,
        &mut logs.hwerr,
        &mut logs.alps,
        &mut logs.torque,
        &mut logs.netwatch,
    ] {
        let n = stream.len();
        for _ in 0..n / 10 {
            let i = rng.random_range(0..stream.len());
            stream[i] = corrupt(&stream[i], &mut rng);
        }
    }
    let analysis = LogDiver::new().analyze(&logs);
    let bad: u64 = analysis.stats.parse.iter().map(|c| c.bad).sum();
    assert!(bad > 0, "corruption must be detected");
    // Most runs still reconstruct and classify.
    assert!(analysis.runs.len() as f64 > 0.7 * e2e.analysis.runs.len() as f64);
}

#[test]
fn shuffled_input_yields_identical_events() {
    let e2e = run_end_to_end(SimConfig::scaled(48, 3).with_seed(42));
    let mut logs = to_log_collection(&e2e.sim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    logs.syslog.shuffle(&mut rng);
    logs.hwerr.shuffle(&mut rng);
    logs.netwatch.shuffle(&mut rng);
    let analysis = LogDiver::new().analyze(&logs);
    assert_eq!(analysis.events.len(), e2e.analysis.events.len());
    assert_eq!(
        analysis.metrics.system_failure_fraction,
        e2e.analysis.metrics.system_failure_fraction
    );
}

#[test]
fn missing_sources_degrade_gracefully() {
    let e2e = run_end_to_end(SimConfig::scaled(48, 5).with_seed(43));
    // Without error logs, everything that needs evidence becomes
    // undetermined/user, but the workload reconstruction is unaffected.
    let mut logs = to_log_collection(&e2e.sim);
    logs.syslog.clear();
    logs.hwerr.clear();
    logs.netwatch.clear();
    let analysis = LogDiver::new().analyze(&logs);
    assert_eq!(analysis.runs.len(), e2e.analysis.runs.len());
    assert!(analysis.events.is_empty());
    // Without torque, walltime kills cannot be recognized.
    let mut logs2 = to_log_collection(&e2e.sim);
    logs2.torque.clear();
    let analysis2 = LogDiver::new().analyze(&logs2);
    assert_eq!(analysis2.runs.len(), e2e.analysis.runs.len());
    let wt = analysis2
        .runs
        .iter()
        .filter(|r| r.class == logdiver_types::ExitClass::WalltimeExceeded)
        .count();
    assert_eq!(wt, 0, "walltime verdicts need torque context");
}

#[test]
fn empty_collection_is_fine() {
    let analysis = LogDiver::new().analyze(&LogCollection::new());
    assert_eq!(analysis.metrics.total_runs, 0);
}
