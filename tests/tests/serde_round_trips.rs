//! Serialization round-trips: configurations and reports are data (C-SERDE)
//! — they must survive JSON round-trips so runs can be described in config
//! files and results archived.

use bw_sim::SimConfig;
use logdiver_integration::run_end_to_end;

#[test]
fn sim_config_round_trips() {
    let config = SimConfig::scaled(16, 30).with_seed(9);
    let json = serde_json::to_string_pretty(&config).unwrap();
    let back: SimConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, config);
    assert!(json.contains("machine_divisor"));
    assert!(json.contains("wide_kill_xe"));
}

#[test]
fn fault_and_detection_configs_round_trip() {
    let faults = bw_faults::FaultConfig::blue_waters();
    let back: bw_faults::FaultConfig =
        serde_json::from_str(&serde_json::to_string(&faults).unwrap()).unwrap();
    assert_eq!(back, faults);

    let detection = bw_faults::DetectionModel::hardened_gpu();
    let back: bw_faults::DetectionModel =
        serde_json::from_str(&serde_json::to_string(&detection).unwrap()).unwrap();
    assert_eq!(back, detection);
}

#[test]
fn metric_set_round_trips_with_data() {
    // JSON float text can drop the last ULP on the first pass, so the
    // correctness property is *idempotence*: the second round trip is exact
    // and all integer-valued fields survive the first one unchanged.
    let e2e = run_end_to_end(SimConfig::scaled(48, 3).with_seed(10));
    let m = &e2e.analysis.metrics;
    let json = serde_json::to_string(m).unwrap();
    assert!(json.contains("scale_curves"));
    assert!(json.contains("precursors"));
    let once: logdiver::MetricSet = serde_json::from_str(&json).unwrap();
    assert_eq!(once.total_runs, m.total_runs);
    assert_eq!(once.outcomes.len(), m.outcomes.len());
    for (a, b) in once.outcomes.iter().zip(&m.outcomes) {
        assert_eq!(a.runs, b.runs);
        assert!((a.node_hours - b.node_hours).abs() < 1e-9);
    }
    assert_eq!(once.scale_curves, m.scale_curves);
    let json2 = serde_json::to_string(&once).unwrap();
    let twice: logdiver::MetricSet = serde_json::from_str(&json2).unwrap();
    assert_eq!(twice, once, "JSON round trip must be idempotent");
}

#[test]
fn classified_runs_round_trip() {
    let e2e = run_end_to_end(SimConfig::scaled(64, 2).with_seed(11));
    let runs = &e2e.analysis.runs;
    assert!(!runs.is_empty());
    let json = serde_json::to_string(runs).unwrap();
    let back: Vec<logdiver::ClassifiedRun> = serde_json::from_str(&json).unwrap();
    assert_eq!(&back, runs);
}

#[test]
fn machine_round_trips() {
    let m = bw_topology::Machine::blue_waters_scaled(32);
    let back: bw_topology::Machine =
        serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    assert_eq!(back, m);
}
