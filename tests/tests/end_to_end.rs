//! End-to-end: simulate a scaled machine, run LogDiver on the raw logs,
//! and check that the measured picture is coherent.

use bw_sim::SimConfig;
use logdiver::LogDiver;
use logdiver_integration::{run_end_to_end, to_log_collection};
use logdiver_types::ExitClass;

#[test]
fn analysis_reconstructs_every_run() {
    let e2e = run_end_to_end(SimConfig::scaled(32, 5).with_seed(11));
    // Every ground-truth run must be reconstructed from the logs.
    assert_eq!(e2e.analysis.runs.len(), e2e.sim.truths.len());
    assert_eq!(e2e.analysis.runs.len() as u64, e2e.report.apps_completed);
    // And every run must be classified (Unknown allowed but rare).
    let unknown = e2e
        .analysis
        .runs
        .iter()
        .filter(|r| r.class == ExitClass::Unknown)
        .count();
    assert!(
        (unknown as f64) < 0.01 * e2e.analysis.runs.len() as f64,
        "{unknown} unknown of {}",
        e2e.analysis.runs.len()
    );
}

#[test]
fn node_hours_agree_with_ground_truth() {
    let e2e = run_end_to_end(SimConfig::scaled(32, 5).with_seed(12));
    let measured = e2e.analysis.metrics.total_node_hours;
    let truth = e2e.report.node_hours;
    assert!(
        (measured - truth).abs() / truth < 0.01,
        "measured {measured} vs truth {truth}"
    );
}

#[test]
fn outcome_mix_is_plausible() {
    let e2e = run_end_to_end(SimConfig::scaled(32, 10).with_seed(13));
    let m = &e2e.analysis.metrics;
    let find = |label: &str| {
        m.outcomes
            .iter()
            .find(|o| o.label == label)
            .map(|o| o.pct_runs)
            .unwrap_or(0.0)
    };
    let success = find("Success");
    let user = find("User failure");
    let system = find("System failure");
    assert!(success > 0.5, "success share {success}");
    assert!(user > 0.05 && user < 0.45, "user share {user}");
    assert!(system > 0.003 && system < 0.08, "system share {system}");
    // The blend should sit near the paper's 1.53 % (generous band at this
    // scale; the full-machine bench pins it tighter).
    assert!(
        m.system_failure_fraction > 0.008 && m.system_failure_fraction < 0.035,
        "system failure fraction {}",
        m.system_failure_fraction
    );
}

#[test]
fn same_seed_same_analysis() {
    let a = run_end_to_end(SimConfig::scaled(48, 3).with_seed(99));
    let b = run_end_to_end(SimConfig::scaled(48, 3).with_seed(99));
    assert_eq!(a.analysis.runs, b.analysis.runs);
    assert_eq!(a.analysis.metrics, b.analysis.metrics);
    let c = run_end_to_end(SimConfig::scaled(48, 3).with_seed(100));
    assert_ne!(a.analysis.metrics, c.analysis.metrics);
}

#[test]
fn pipeline_discards_most_syslog() {
    let e2e = run_end_to_end(SimConfig::scaled(32, 5).with_seed(14));
    let stats = &e2e.analysis.stats;
    assert!(stats.filter.syslog_examined > 1_000);
    assert!(
        stats.filter.syslog_discard_ratio() > 0.5,
        "discard ratio {}",
        stats.filter.syslog_discard_ratio()
    );
    assert!(stats.events > 0);
    assert!(stats.coalescing_ratio() >= 1.0);
}

#[test]
fn analysis_is_stable_under_log_shuffling() {
    // Log collection order within a source must not matter beyond
    // timestamps: reverse every file and re-analyze.
    let e2e = run_end_to_end(SimConfig::scaled(48, 3).with_seed(15));
    let mut logs = to_log_collection(&e2e.sim);
    // ALPS order must stay coherent per apid (PLACED before EXIT), so sort
    // the others only.
    logs.syslog.reverse();
    logs.hwerr.reverse();
    logs.netwatch.reverse();
    let analysis2 = LogDiver::new().analyze(&logs);
    // Filtering sorts by time, so events and verdicts are unchanged.
    assert_eq!(
        analysis2.metrics.system_failure_fraction,
        e2e.analysis.metrics.system_failure_fraction
    );
    assert_eq!(analysis2.events.len(), e2e.analysis.events.len());
}

#[test]
fn scheduler_sustains_throughput_with_capability_jobs() {
    // Regression guard for the EASY-backfill fix: with the old drain
    // policy, capability jobs collapsed utilization and the queue grew
    // without bound (jobs_submitted ≫ jobs run).
    let mut config = SimConfig::scaled(16, 10).with_seed(71);
    for class in &mut config.workload.classes {
        class.capability_fraction *= 8.0;
    }
    let e2e = run_end_to_end(config);
    let r = &e2e.report;
    assert!(r.jobs_submitted > 1_000);
    let completion = r.jobs_completed as f64 / r.jobs_submitted as f64;
    assert!(
        completion > 0.95,
        "only {completion:.2} of jobs ran — queue collapse"
    );
    let apps_per_job = r.apps_completed as f64 / r.jobs_completed.max(1) as f64;
    assert!(
        apps_per_job > 1.6,
        "apps/job {apps_per_job:.2} — jobs truncated"
    );
    assert!(
        r.scheduler.backfilled > 0,
        "EASY should backfill around capability heads"
    );
}
