//! End-to-end precursor analysis: the simulator's escalation channel (CE
//! flood → uncorrectable error on the same node) must surface in
//! LogDiver's F7 report with the configured lead-time window.

use bw_sim::SimConfig;
use logdiver_integration::run_end_to_end;
use logdiver_types::ErrorCategory;

fn boosted() -> SimConfig {
    let mut config = SimConfig::scaled(32, 20)
        .with_seed(61)
        .without_calibration();
    config.faults.ce_floods_per_hour = 2.0;
    config.faults.ce_flood_escalation_prob = 0.25;
    config.faults.xe_node_crash_per_node_hour = 1.0e-5; // mostly escalations
    config.faults.xk_node_crash_per_node_hour = 1.0e-5;
    config
}

#[test]
fn escalated_failures_show_their_precursors() {
    let e2e = run_end_to_end(boosted());
    let p = &e2e.analysis.metrics.precursors;
    assert!(
        p.lethal_events > 20,
        "too few lethal node events: {}",
        p.lethal_events
    );
    // Escalations dominate node crashes in this config, so coverage is high.
    assert!(
        p.fraction() > 0.5,
        "precursor coverage {:.2} over {} events",
        p.fraction(),
        p.lethal_events
    );
    // Lead times must fall inside the configured escalation window (plus
    // the CE-flood burst span).
    let (lo, hi) = (
        e2e.analysis.metrics.precursors.lookback.as_hours_f64() * 0.0,
        e2e.analysis.metrics.precursors.lookback.as_hours_f64(),
    );
    for &lead in &p.lead_times_hours {
        assert!(lead >= lo && lead <= hi, "lead {lead} outside [{lo}, {hi}]");
    }
    let median = p.median_lead_hours().unwrap();
    assert!(median > 0.1 && median < 2.1, "median lead {median}");
    // The memory channel carries the coverage.
    let ue = p
        .by_category
        .iter()
        .find(|r| r.category == ErrorCategory::MemoryUncorrectable);
    assert!(
        ue.is_some_and(|r| r.with_precursor > 10),
        "{:?}",
        p.by_category
    );
}

#[test]
fn baseline_rates_have_low_precursor_coverage() {
    // Without the escalation channel, warnings and crashes are independent;
    // coverage should be near the coincidence floor.
    let mut config = boosted();
    config.faults.ce_flood_escalation_prob = 0.0;
    config.faults.xe_node_crash_per_node_hour = 2.0e-4; // independent crashes
    config.faults.xk_node_crash_per_node_hour = 2.0e-4;
    let e2e = run_end_to_end(config);
    let p = &e2e.analysis.metrics.precursors;
    assert!(p.lethal_events > 10, "{}", p.lethal_events);
    assert!(
        p.fraction() < 0.25,
        "independent faults should rarely have precursors: {:.2}",
        p.fraction()
    );
}
