//! Experiment V1: LogDiver's attribution quality against ground truth.
//!
//! The paper validated LogDiver against operator failure reports; our
//! simulator gives exact ground truth instead. The tool never sees it —
//! this test compares its verdicts after the fact.

use std::collections::HashMap;

use bw_sim::{AppTruth, SimConfig, TrueOutcome};
use logdiver_integration::run_end_to_end;
use logdiver_types::{ExitClass, FailureCause};

fn confusion(truths: &[AppTruth], runs: &[logdiver::ClassifiedRun]) -> (u64, u64, u64, u64) {
    let truth_by_apid: HashMap<u64, &AppTruth> =
        truths.iter().map(|t| (t.apid.value(), t)).collect();
    let (mut tp, mut fp, mut fnc, mut tn) = (0u64, 0u64, 0u64, 0u64);
    for run in runs {
        let truth = truth_by_apid
            .get(&run.run.apid.value())
            .expect("every run has ground truth");
        let is_sys_truth = truth.outcome.is_system();
        let is_sys_measured = run.class.is_system_failure();
        match (is_sys_truth, is_sys_measured) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fnc += 1,
            (false, false) => tn += 1,
        }
    }
    (tp, fp, fnc, tn)
}

#[test]
fn system_failure_attribution_has_high_precision_and_recall() {
    let e2e = run_end_to_end(SimConfig::scaled(24, 20).with_seed(21));
    let (tp, fp, fnc, tn) = confusion(&e2e.sim.truths, &e2e.analysis.runs);
    assert!(tp + fp + fnc + tn > 1_000, "not enough runs");
    assert!(tp > 10, "too few true system failures to judge: tp={tp}");
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fnc).max(1) as f64;
    // The detection gap makes perfect recall impossible (undetected GPU
    // deaths that the health sweep also misses look like user crashes) —
    // that is the paper's point. Precision suffers only from coincidental
    // overlaps with wide events.
    assert!(precision > 0.88, "precision {precision} (tp={tp} fp={fp})");
    assert!(recall > 0.85, "recall {recall} (tp={tp} fn={fnc})");
}

#[test]
fn cause_attribution_matches_when_detected() {
    let e2e = run_end_to_end(SimConfig::scaled(24, 20).with_seed(22));
    let truth_by_apid: HashMap<u64, &AppTruth> =
        e2e.sim.truths.iter().map(|t| (t.apid.value(), t)).collect();
    let mut agree = 0u64;
    let mut total = 0u64;
    for run in &e2e.analysis.runs {
        let truth = truth_by_apid[&run.run.apid.value()];
        let (
            TrueOutcome::SystemFailure {
                cause,
                detected: true,
            },
            ExitClass::SystemFailure(measured),
        ) = (truth.outcome, run.class)
        else {
            continue;
        };
        // Undetermined is not a cause claim; skip.
        if measured == FailureCause::Undetermined {
            continue;
        }
        total += 1;
        if measured == cause {
            agree += 1;
        }
    }
    assert!(total > 10, "too few detected system failures: {total}");
    let accuracy = agree as f64 / total as f64;
    assert!(
        accuracy > 0.80,
        "cause accuracy {accuracy} ({agree}/{total})"
    );
}

#[test]
fn walltime_and_user_failures_are_not_blamed_on_the_system() {
    let e2e = run_end_to_end(SimConfig::scaled(24, 15).with_seed(23));
    let truth_by_apid: HashMap<u64, &AppTruth> =
        e2e.sim.truths.iter().map(|t| (t.apid.value(), t)).collect();
    let mut user_total = 0u64;
    let mut user_misblamed = 0u64;
    let mut walltime_total = 0u64;
    let mut walltime_correct = 0u64;
    for run in &e2e.analysis.runs {
        let truth = truth_by_apid[&run.run.apid.value()];
        match truth.outcome {
            TrueOutcome::UserFailure(_) => {
                user_total += 1;
                if run.class.is_system_failure() {
                    user_misblamed += 1;
                }
            }
            TrueOutcome::WalltimeExceeded => {
                walltime_total += 1;
                if run.class == ExitClass::WalltimeExceeded {
                    walltime_correct += 1;
                }
            }
            _ => {}
        }
    }
    assert!(user_total > 100);
    let misblame = user_misblamed as f64 / user_total as f64;
    assert!(misblame < 0.03, "user failures misattributed at {misblame}");
    assert!(walltime_total > 10, "no walltime kills in 15 days?");
    let wt = walltime_correct as f64 / walltime_total as f64;
    assert!(
        wt > 0.9,
        "walltime recognition {wt} ({walltime_correct}/{walltime_total})"
    );
}

#[test]
fn undetected_failures_surface_as_undetermined_or_missed() {
    // Node/GPU faults are per-node-hour processes; at small machine scale
    // they are vanishingly rare, so this *mechanism* test boosts their
    // rates (and skips the anchor calibration, which those rates would
    // violate) to exercise the detection-gap path heavily.
    let mut config = SimConfig::scaled(32, 10)
        .with_seed(24)
        .without_calibration();
    config.faults.gpu_fault_per_node_hour = 2.0e-2;
    config.faults.xk_node_crash_per_node_hour = 2.0e-3;
    config.faults.xe_node_crash_per_node_hour = 5.0e-4;
    let e2e = run_end_to_end(config);
    let truth_by_apid: HashMap<u64, &AppTruth> =
        e2e.sim.truths.iter().map(|t| (t.apid.value(), t)).collect();
    let mut undetected_total = 0u64;
    let mut flagged_undetermined = 0u64;
    let mut missed = 0u64;
    for run in &e2e.analysis.runs {
        let truth = truth_by_apid[&run.run.apid.value()];
        if let TrueOutcome::SystemFailure {
            detected: false, ..
        } = truth.outcome
        {
            undetected_total += 1;
            match run.class {
                ExitClass::SystemFailure(FailureCause::Undetermined) => flagged_undetermined += 1,
                c if !c.is_system_failure() => missed += 1,
                _ => {}
            }
        }
    }
    assert!(
        undetected_total > 5,
        "too few undetected system kills: {undetected_total}"
    );
    // An undetected failure is usually flagged undetermined (the health
    // sweep caught the corpse) or missed entirely. At these boosted rates a
    // few pick up a cause from an unrelated coincident event — itself a
    // realistic tool behaviour — so demand a dominant share, not totality.
    assert!(flagged_undetermined > 0, "health-sweep path never taken");
    assert!(
        (flagged_undetermined + missed) as f64 >= 0.7 * undetected_total as f64,
        "flagged {flagged_undetermined} + missed {missed} of {undetected_total}"
    );
}
