//! The serve daemon's hard correctness bar: for any interleaving,
//! chunking, and connection chaos (mid-line disconnects, duplicates,
//! stale replays, half-open sockets), each tenant's drained analysis must
//! equal that tenant's batch `LogDiver::analyze` — and killing the daemon
//! at any record and resuming from checkpoints must give the same answer
//! as an uninterrupted run.
//!
//! Three concurrent tenants, each fed a different simulated corpus, per
//! ISSUE 6's acceptance bar.

use std::path::PathBuf;
use std::sync::OnceLock;

use bw_faults::{chaos_transcripts, ChaosStream, ConnChaosConfig, Connection};
use logdiver::{Analysis, LogCollection};
use logdiver_integration::{run_end_to_end, to_log_collection};
use logdiver_serve::{BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::{Source, StreamConfig};
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

/// Per-tenant corpora, generated once and shared across proptest cases.
fn corpus(which: usize) -> &'static (LogCollection, Analysis) {
    static CORPORA: [OnceLock<(LogCollection, Analysis)>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    CORPORA[which].get_or_init(|| {
        let seed = 6401 + which as u64;
        let e2e = run_end_to_end(bw_sim::SimConfig::scaled(64, 2).with_seed(seed));
        (to_log_collection(&e2e.sim), e2e.analysis)
    })
}

fn sources_of(logs: &LogCollection) -> [(Source, &Vec<String>); 5] {
    [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ]
}

fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// The smallest lateness under which no in-order line is late, across all
/// tenants (one `StreamConfig` serves the whole fleet).
fn fleet_lateness() -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for which in 0..TENANTS.len() {
        let (logs, _) = corpus(which);
        for (_, lines) in sources_of(logs) {
            let mut high: Option<Timestamp> = None;
            for line in lines {
                let Some(ts) = line_timestamp(line) else {
                    continue;
                };
                if let Some(h) = high {
                    worst = worst.max(h - ts);
                }
                high = Some(high.map_or(ts, |h| h.max(ts)));
            }
        }
    }
    worst + SimDuration::from_secs(1)
}

/// A serve config with an effectively unlimited budget (shedding is
/// covered by the serve crate's own tests; equivalence requires every
/// line to land) and no persistence unless `dir` is given.
fn serve_config(dir: Option<PathBuf>, checkpoint_every: u64) -> ServeConfig {
    ServeConfig {
        tenants_dir: dir,
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 2,
        checkpoint_every,
        stream: StreamConfig::default().with_lateness(fleet_lateness()),
    }
}

/// One chaos stream per (tenant, source), starting at index `from` —
/// within-stream order is per-source push order, which is all the indexed
/// protocol requires.
fn push_streams(from: &dyn Fn(&str, Source) -> u64) -> Vec<ChaosStream> {
    let mut streams = Vec::new();
    for (which, tenant) in TENANTS.iter().enumerate() {
        let (logs, _) = corpus(which);
        for (source, lines) in sources_of(logs) {
            let start = from(tenant, source) as usize;
            if start >= lines.len() {
                continue;
            }
            streams.push(ChaosStream {
                key: format!("{tenant}/{}", source.name()),
                commands: lines
                    .iter()
                    .enumerate()
                    .skip(start)
                    .map(|(i, line)| format!("PUSH {tenant} {} {i} {line}", source.name()))
                    .collect(),
            });
        }
    }
    streams
}

/// Feeds whole connections into the core in arbitrary byte chunks. Every
/// complete line must be answered `OK`/`OK dup` — in-order indexed
/// delivery can never produce a gap, and the budget never sheds.
fn deliver(core: &mut ServeCore, conns: &[Connection], rng: &mut StdRng) {
    for conn in conns {
        let id = core.open_conn();
        let mut off = 0;
        while off < conn.bytes.len() {
            let n = rng.random_range(1..=(conn.bytes.len() - off).min(1500));
            for resp in core.feed(id, &conn.bytes[off..off + n]) {
                assert!(resp.starts_with("OK"), "unexpected response: {resp}");
            }
            off += n;
        }
        if conn.closed {
            core.close_conn(id);
        }
    }
}

/// Asks the daemon where to resume one (tenant, source) stream, exactly
/// as a reconnecting client does.
fn hello_cursor(core: &mut ServeCore, tenant: &str, source: Source) -> u64 {
    let resp = core.handle_line(&format!("HELLO {tenant}"));
    let accepted = resp
        .split("accepted=")
        .nth(1)
        .unwrap_or_else(|| panic!("bad HELLO response: {resp}"));
    let counts: Vec<u64> = accepted
        .split(',')
        .map(|c| c.parse().expect("cursor count"))
        .collect();
    counts[source.index()]
}

fn drain_and_compare(mut core: ServeCore) {
    for (which, tenant) in TENANTS.iter().enumerate() {
        let (_, batch) = corpus(which);
        let served = core
            .drain_tenant(tenant)
            .unwrap_or_else(|| panic!("tenant {tenant} missing at drain"));
        assert_eq!(served.runs, batch.runs, "tenant {tenant} runs");
        assert_eq!(served.events, batch.events, "tenant {tenant} events");
        assert_eq!(served.coverage, batch.coverage, "tenant {tenant} coverage");
        assert_eq!(served.metrics, batch.metrics, "tenant {tenant} metrics");
        assert_eq!(served.stats, batch.stats, "tenant {tenant} stats");
    }
}

fn temp_tenants_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logdiver-serve-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any connection chaos over three interleaved tenants: each tenant
    /// drains to exactly its batch analysis.
    #[test]
    fn chaotic_ingest_equals_batch_per_tenant(
        chaos_seed in 0u64..10_000,
        feed_seed in 0u64..10_000,
        mild in any::<bool>(),
    ) {
        let chaos = if mild { ConnChaosConfig::mild() } else { ConnChaosConfig::default() };
        let streams = push_streams(&|_, _| 0);
        let mut rng = StdRng::seed_from_u64(chaos_seed);
        let conns = chaos_transcripts(&streams, &chaos, &mut rng);

        let mut core = ServeCore::new(serve_config(None, 0)).expect("core");
        let mut feed_rng = StdRng::seed_from_u64(feed_seed);
        deliver(&mut core, &conns, &mut feed_rng);
        drain_and_compare(core);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill the daemon at an arbitrary point mid-ingest (queued lines and
    /// connections lost, checkpoints durable), restart from the tenants
    /// dir, and let each client replay from its `HELLO` cursor — under
    /// fresh connection chaos. The final answer must equal an
    /// uninterrupted batch run.
    #[test]
    fn kill_and_resume_equals_batch(
        chaos_seed in 0u64..10_000,
        kill_frac in 0.0f64..1.0,
        replay_seed in 0u64..10_000,
    ) {
        let dir = temp_tenants_dir(&format!("{chaos_seed}-{replay_seed}"));
        let streams = push_streams(&|_, _| 0);
        let mut rng = StdRng::seed_from_u64(chaos_seed);
        let conns = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut rng);

        // Phase 1: ingest with a tight auto-checkpoint cadence, then die
        // abruptly partway through — possibly mid-connection, possibly
        // before the first checkpoint ever fires.
        let kill_at = ((conns.len() as f64) * kill_frac) as usize;
        {
            let mut core = ServeCore::new(serve_config(Some(dir.clone()), 257)).expect("core");
            let mut feed_rng = StdRng::seed_from_u64(chaos_seed ^ 0x5eed);
            deliver(&mut core, &conns[..kill_at.min(conns.len())], &mut feed_rng);
            if let Some(partial) = conns.get(kill_at) {
                let cut = partial.bytes.len() / 2;
                let id = core.open_conn();
                for resp in core.feed(id, &partial.bytes[..cut]) {
                    prop_assert!(resp.starts_with("OK"), "unexpected response: {}", resp);
                }
            }
            // SIGKILL: the core is dropped on the floor — no shutdown
            // checkpoint, queued-but-unapplied lines are gone.
        }

        // Phase 2: restart resumes every checkpointed tenant; clients ask
        // HELLO where to resume and replay from there, chaotically again.
        let mut core = ServeCore::new(serve_config(Some(dir.clone()), 257)).expect("restart");
        let mut cursors = std::collections::HashMap::new();
        for tenant in TENANTS {
            for source in Source::ALL {
                cursors.insert((tenant, source.index()), hello_cursor(&mut core, tenant, source));
            }
        }
        let replays = push_streams(&|tenant: &str, source: Source| cursors[&(tenant, source.index())]);
        let mut rng = StdRng::seed_from_u64(replay_seed);
        let replay_conns = chaos_transcripts(&replays, &ConnChaosConfig::default(), &mut rng);
        let mut feed_rng = StdRng::seed_from_u64(replay_seed ^ 0x5eed);
        deliver(&mut core, &replay_conns, &mut feed_rng);
        drain_and_compare(core);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Deterministic sanity path: no chaos, round-robin interleaving of the
/// three tenants over one connection, drain equals batch.
#[test]
fn interleaved_tenants_without_chaos_equal_batch() {
    let streams = push_streams(&|_, _| 0);
    let mut core = ServeCore::new(serve_config(None, 0)).expect("core");
    let conn = core.open_conn();
    let longest = streams.iter().map(|s| s.commands.len()).max().unwrap_or(0);
    for i in 0..longest {
        for stream in &streams {
            if let Some(command) = stream.commands.get(i) {
                let resp = core.feed(conn, format!("{command}\n").as_bytes());
                assert_eq!(resp, vec!["OK".to_string()], "push {command:?}");
            }
        }
    }
    drain_and_compare(core);
}

/// A half-open connection's buffered fragment must not block or corrupt
/// later connections carrying the same tenant.
#[test]
fn half_open_fragment_does_not_leak_into_later_connections() {
    let mut core = ServeCore::new(serve_config(None, 0)).expect("core");
    let (logs, _) = corpus(0);
    let line = &logs.syslog[0];
    // A torn prefix on a connection that never closes...
    let torn = core.open_conn();
    let fragment = format!("PUSH alpha syslog 0 {line}");
    assert!(core
        .feed(torn, &fragment.as_bytes()[..fragment.len() / 2])
        .is_empty());
    // ...while a healthy connection delivers the same push completely.
    let ok = core.open_conn();
    let resp = core.feed(ok, format!("{fragment}\n").as_bytes());
    assert_eq!(resp, vec!["OK".to_string()]);
    let resp = core.handle_line("HELLO alpha");
    assert_eq!(resp, "OK tenant=alpha accepted=1,0,0,0,0");
}
