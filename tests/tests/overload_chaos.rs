//! The overload chaos drill (ISSUE 8): resilient `logdiver-push` sessions
//! deliver their corpora through a seeded chaotic network — latency,
//! dribbled writes, stalls, mid-response resets, refused connects — into
//! an in-process `ServeCore` that is overloaded (pressure-shed), drained,
//! killed, and restarted mid-run. The bar: every tenant's drained analysis
//! equals the batch pipeline's answer, every server cursor lands exactly
//! at the corpus length (zero lost, zero double-applied records), and
//! every client finishes `complete` with only retry-shaped scars.
//!
//! Everything is deterministic under the proptest seed; CI additionally
//! sweeps `CHAOS_SEED` to widen coverage across runs.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use bw_faults::{ChaosFs, NetChaosConfig, NetFaultPlan, RecvOutcome, SendOutcome};
use logdiver::{Analysis, LogCollection};
use logdiver_integration::{run_end_to_end, to_log_collection};
use logdiver_push::{Action, PushPlan, Session, SessionConfig};
use logdiver_serve::{BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::StreamConfig;
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;

const TENANTS: [&str; 2] = ["alpha", "beta"];

/// Per-tenant corpora, generated once and shared across proptest cases.
fn corpus(which: usize) -> &'static (LogCollection, Analysis) {
    static CORPORA: [OnceLock<(LogCollection, Analysis)>; 2] = [OnceLock::new(), OnceLock::new()];
    CORPORA[which].get_or_init(|| {
        let seed = 8101 + which as u64;
        let e2e = run_end_to_end(bw_sim::SimConfig::scaled(64, 1).with_seed(seed));
        (to_log_collection(&e2e.sim), e2e.analysis)
    })
}

/// The tenant's corpus as a push plan, in the server's source order.
fn plan_for(which: usize) -> PushPlan {
    let (logs, _) = corpus(which);
    PushPlan {
        tenant: TENANTS[which].to_string(),
        lines: [
            logs.syslog.clone(),
            logs.hwerr.clone(),
            logs.alps.clone(),
            logs.torque.clone(),
            logs.netwatch.clone(),
        ],
    }
}

fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// Smallest lateness under which no in-order line is late, fleet-wide.
fn fleet_lateness() -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for which in 0..TENANTS.len() {
        let plan = plan_for(which);
        for lines in &plan.lines {
            let mut high: Option<Timestamp> = None;
            for line in lines {
                let Some(ts) = line_timestamp(line) else {
                    continue;
                };
                if let Some(h) = high {
                    worst = worst.max(h - ts);
                }
                high = Some(high.map_or(ts, |h| h.max(ts)));
            }
        }
    }
    worst + SimDuration::from_secs(1)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        tenants_dirs: vec![PathBuf::from("/tenants")],
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 2,
        checkpoint_every: 509,
        stream: StreamConfig::default().with_lateness(fleet_lateness()),
        ..ServeConfig::default()
    }
}

/// One client's seat at the drill: its session, its fault plan, and its
/// current connection (validated against the server generation, so a
/// restart invalidates it).
struct Seat {
    session: Session,
    plan: NetFaultPlan,
    conn: Option<(u64, u64)>,
}

/// The shared server side: `None` while the daemon is "down" between the
/// kill and the restart.
struct Harness {
    core: Option<ServeCore>,
    generation: u64,
    fs: Arc<ChaosFs>,
}

impl Harness {
    fn kill(&mut self) {
        self.core = None; // dropped without any shutdown checkpoint
        self.generation += 1;
    }

    fn restart(&mut self) {
        self.core = Some(ServeCore::with_fs(serve_config(), self.fs.clone()).expect("restart"));
    }
}

/// Advance one seat by one action. Fault injection happens at the same
/// seams a real TCP wire has: the connect, the send, and the response.
fn step(seat: &mut Seat, harness: &mut Harness) {
    match seat.session.action() {
        Action::Connect => {
            if harness.core.is_some() && seat.plan.connect_ok() {
                let id = harness
                    .core
                    .as_mut()
                    .map(|c| c.open_conn())
                    .unwrap_or_default();
                seat.conn = Some((harness.generation, id));
                seat.session.on_connected();
            } else {
                seat.session.on_connect_failed();
            }
        }
        Action::Send(line) => {
            let live = seat
                .conn
                .map(|(generation, _)| generation == harness.generation)
                .unwrap_or(false);
            let (Some(core), Some((_, id)), true) = (harness.core.as_mut(), seat.conn, live) else {
                seat.conn = None;
                seat.session.on_wire_error();
                return;
            };
            match seat.plan.send(line.len()) {
                SendOutcome::Delivered { .. } => {
                    let responses = core.feed(id, format!("{line}\n").as_bytes());
                    assert_eq!(responses.len(), 1, "lockstep broken for {line:?}");
                    match seat.plan.recv() {
                        RecvOutcome::Delivered { .. } => seat.session.on_response(&responses[0]),
                        RecvOutcome::Reset => {
                            // Delivered server-side, ack lost — the hard
                            // exactly-once case.
                            core.close_conn(id);
                            seat.conn = None;
                            seat.session.on_wire_error();
                        }
                    }
                }
                SendOutcome::Stalled | SendOutcome::Reset => {
                    core.close_conn(id);
                    seat.conn = None;
                    seat.session.on_wire_error();
                }
            }
        }
        Action::Sleep(ms) => seat.session.on_slept(ms),
        Action::Done => {}
    }
}

/// Drive all unfinished seats round-robin until `stop` says so (or they
/// all finish). Returns the number of sweeps driven.
fn drive(
    seats: &mut [Seat],
    harness: &mut Harness,
    max_sweeps: usize,
    mut stop: impl FnMut(&[Seat]) -> bool,
) -> usize {
    for sweep in 0..max_sweeps {
        if seats.iter().all(|s| s.session.finished()) || stop(seats) {
            return sweep;
        }
        for seat in seats.iter_mut() {
            if !seat.session.finished() {
                step(seat, harness);
            }
        }
    }
    max_sweeps
}

fn pushed(seats: &[Seat]) -> u64 {
    seats.iter().map(|s| s.session.summary().pushed).sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Overload → drain → kill → restart, all mid-delivery, all under
    /// network chaos: exactly-once end to end.
    #[test]
    fn resilient_clients_survive_overload_drain_kill_restart(case_seed in 0u64..10_000) {
        let seed = case_seed ^ seed_base().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fs = Arc::new(ChaosFs::clean());
        let mut harness = Harness {
            core: Some(ServeCore::with_fs(serve_config(), fs.clone()).expect("core")),
            generation: 0,
            fs,
        };
        let mut seats: Vec<Seat> = (0..TENANTS.len())
            .map(|which| Seat {
                session: Session::new(
                    plan_for(which),
                    SessionConfig {
                        max_attempts: 100_000,
                        seed: seed ^ which as u64,
                        ..SessionConfig::default()
                    },
                ),
                plan: NetFaultPlan::new(seed.wrapping_add(which as u64), NetChaosConfig::default()),
                conn: None,
            })
            .collect();

        // Phase A: normal chaotic delivery until every client has landed
        // some lines (so every tenant exists server-side).
        drive(&mut seats, &mut harness, 100_000, |seats| {
            seats.iter().all(|s| s.session.summary().pushed >= 10)
        });
        prop_assert!(seats.iter().all(|s| !s.session.finished()), "corpus too small for the drill");

        // Phase B: overload. With pump pressure past the deadline every
        // new push is shed with a retry hint; obedient clients make no
        // progress but never fail.
        if let Some(core) = harness.core.as_mut() {
            core.set_pressure(10_000);
        }
        let before = pushed(&seats);
        drive(&mut seats, &mut harness, 5_000, |seats| {
            seats.iter().map(|s| s.session.summary().shed_overload).sum::<u64>() >= 5
        });
        let sheds: u64 = seats.iter().map(|s| s.session.summary().shed_overload).sum();
        prop_assert!(sheds >= 5, "overload window shed nothing");
        prop_assert!(
            pushed(&seats) == before,
            "pushes slipped through a saturated server"
        );
        if let Some(core) = harness.core.as_mut() {
            core.set_pressure(0);
        }

        // Phase C: drain, then die. The drain checkpoints every tenant, so
        // the kill loses nothing; clients see hints, then dead sockets.
        if let Some(core) = harness.core.as_mut() {
            let resp = core.handle_line("DRAIN");
            prop_assert!(resp.starts_with("OK draining tenants=2"), "{}", resp);
        }
        drive(&mut seats, &mut harness, 2_000, |seats| {
            seats.iter().map(|s| s.session.summary().shed_draining).sum::<u64>() >= 1
        });
        harness.kill();
        drive(&mut seats, &mut harness, 200, |_| false);
        harness.restart();

        // Phase D: the successor serves the stragglers to completion.
        drive(&mut seats, &mut harness, 2_000_000, |_| false);

        for (which, seat) in seats.iter().enumerate() {
            let summary = seat.session.summary();
            prop_assert!(summary.complete, "tenant {} incomplete: {:?}", TENANTS[which], summary);
            // Exactly-once on the client's ledger: every slot advanced
            // once, as a fresh push or an acknowledged duplicate.
            prop_assert!(
                summary.pushed + summary.dups <= summary.total_lines,
                "over-delivered: {:?}", summary
            );
            prop_assert!(summary.reconnects >= 1, "never reconnected: {:?}", summary);
            prop_assert!(summary.backoffs >= 1, "never backed off: {:?}", summary);
        }

        // Zero loss / zero duplicates server-side: each cursor sits exactly
        // at its corpus length, and the analyses are byte-equal to batch.
        let mut core = harness.core.take().expect("core");
        for (which, tenant) in TENANTS.iter().enumerate() {
            let plan = plan_for(which);
            let expected: Vec<String> = plan.lines.iter().map(|l| l.len().to_string()).collect();
            prop_assert_eq!(
                core.handle_line(&format!("HELLO {tenant}")),
                format!("OK tenant={tenant} accepted={}", expected.join(","))
            );
            let (_, batch) = corpus(which);
            let served = core
                .drain_tenant(tenant)
                .unwrap_or_else(|| panic!("tenant {tenant} missing at drain"));
            prop_assert!(served.runs == batch.runs, "tenant {} runs differ", tenant);
            prop_assert!(served.events == batch.events, "tenant {} events differ", tenant);
            prop_assert!(
                served.metrics == batch.metrics,
                "tenant {} metrics differ",
                tenant
            );
            prop_assert!(served.stats == batch.stats, "tenant {} stats differ", tenant);
        }
    }
}

/// CI sweeps seeds via `CHAOS_SEED`; locally it defaults to 0.
fn seed_base() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}
