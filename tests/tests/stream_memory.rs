//! The streaming engine's memory bar: on an arbitrarily long stream, open
//! state (reorder buffer, open events, unfinalized runs) stays bounded by
//! the configured windows — it must not grow with stream length — and
//! `snapshot()` stays queryable the whole time.

use std::time::{Duration, Instant};

use logdiver_stream::{Source, StreamConfig, StreamEngine, StreamSnapshot};
use logdiver_types::{SimDuration, Timestamp};

/// One synthetic 3-minute cycle of activity across all five sources: a
/// batch job, an aprun that exits next cycle, an MCE burst on a rotating
/// node, and a link failure.
fn cycle_lines(i: u64) -> [(Source, Vec<String>); 5] {
    let t = Timestamp::PRODUCTION_EPOCH + SimDuration::from_secs(i as i64 * 180);
    let t1 = t + SimDuration::from_secs(1);
    let nid = 2 + (i % 48);
    let slot = i % 4;
    let blade = (i / 4) % 8;
    let mut alps = vec![format!(
        "{t} apsys PLACED apid={i} batch={i}.bw user=u0001 cmd=a.out type=XE width=1 nodelist=nid[{n}]",
        n = 1000 + nid
    )];
    if i > 0 {
        alps.push(format!(
            "{t1} apsys EXIT apid={p} code=0 signal=none node_failed=no runtime=180",
            p = i - 1
        ));
    }
    [
        (
            Source::Torque,
            vec![format!(
                "{t};S;{i}.bw;user=u0001 queue=normal nodes=1 walltime=86400"
            )],
        ),
        (Source::Alps, alps),
        (
            Source::Syslog,
            vec![
                format!("{t} nid{nid:05} kernel: Machine Check Exception: bank 4 status 0xb200"),
                format!("{t1} nid00900 ntpd: time slew +0.012s"),
            ],
        ),
        (
            Source::HwErr,
            vec![format!("{t}|c0-0c0s{blade}n{slot}|MCE|CRIT|bank=4")],
        ),
        (
            Source::Netwatch,
            vec![format!("{t} netwatch LINK_FAILED coord=(0,0,0) dim=X")],
        ),
    ]
}

/// Polls until the coordinator has processed every pushed line, so counter
/// assertions are about settled state rather than channel lag.
fn settled_snapshot(engine: &StreamEngine, pushed: u64) -> StreamSnapshot {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = engine.snapshot();
        let delivered: u64 = snap.parse.iter().map(|c| c.total).sum();
        if delivered == pushed {
            return snap;
        }
        assert!(
            Instant::now() < deadline,
            "engine stalled: {delivered}/{pushed} lines"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn open_state_is_bounded_on_a_long_stream() {
    // 120 cycles x 180 s = 6 h of logs: 12x the 1800 s max event span, with
    // a tight 60 s lateness so the watermarks actually close things.
    const CYCLES: u64 = 120;
    const BUFFER_CAP: usize = 64;
    const OPEN_EVENT_CAP: usize = 32;
    const OPEN_RUN_CAP: usize = 40;

    let config = StreamConfig::default().with_lateness(SimDuration::from_secs(60));
    let mut engine = StreamEngine::new(config);
    let mut pushed = 0u64;
    let mut peak_buffered = 0usize;
    let mut peak_open_events = 0usize;
    let mut peak_open_runs = 0usize;

    for i in 0..CYCLES {
        for (source, lines) in cycle_lines(i) {
            pushed += lines.len() as u64;
            engine.push_batch(source, lines).unwrap();
        }
        // Queryable on every cycle, even while workers are mid-line.
        let live = engine.snapshot();
        assert_eq!(live.late_dropped, 0);

        if i % 10 == 9 {
            let snap = settled_snapshot(&engine, pushed);
            peak_buffered = peak_buffered.max(snap.buffered_entries);
            peak_open_events = peak_open_events.max(snap.open_events);
            peak_open_runs = peak_open_runs.max(snap.open_runs);
            assert!(
                snap.buffered_entries < BUFFER_CAP,
                "cycle {i}: reorder buffer grew to {}",
                snap.buffered_entries
            );
            assert!(
                snap.open_events < OPEN_EVENT_CAP,
                "cycle {i}: {} events stuck open",
                snap.open_events
            );
            assert!(
                snap.open_runs < OPEN_RUN_CAP,
                "cycle {i}: {} runs stuck open",
                snap.open_runs
            );
        }
    }

    let snap = settled_snapshot(&engine, pushed);
    assert!(
        snap.classified_runs >= 100,
        "only {} of {CYCLES} runs classified before drain — finalization is not incremental",
        snap.classified_runs
    );
    // Adjacent-node MCEs chain into per-blade events, so there are fewer
    // events than cycles — but far more than could ever be open at once.
    assert!(
        snap.closed_events > 40,
        "only {} events closed",
        snap.closed_events
    );
    assert!(snap.watermark.is_some(), "watermark never advanced");
    assert!(
        snap.metrics.total_runs >= 100,
        "live metrics missing finalized runs"
    );

    let analysis = engine.drain();
    assert_eq!(
        analysis.runs.len(),
        CYCLES as usize,
        "every run must surface at drain"
    );
    assert_eq!(
        analysis.stats.parse.iter().map(|c| c.total).sum::<u64>(),
        pushed
    );
    // The whole stream closed far more events than were ever open at once.
    assert!(analysis.events.len() > 3 * peak_open_events);
    assert!(peak_open_runs < OPEN_RUN_CAP && peak_buffered < BUFFER_CAP);
}
