//! The parallel batch pipeline's hard correctness bar: `analyze` with any
//! thread count must produce a result identical to the serial path — same
//! verdicts, same events, same metrics, same per-stage accounting. Every
//! parallel stage is an order-preserving map with a deterministic merge
//! (DESIGN.md §13); these tests are the enforcement.

use std::sync::OnceLock;

use bw_sim::SimConfig;
use logdiver::{Analysis, LogCollection, LogDiver};
use logdiver_integration::{run_end_to_end, to_log_collection};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Simulated corpora, generated once and shared across proptest cases.
/// The stored analysis is the serial (1-thread) reference.
fn corpus(which: usize) -> &'static (LogCollection, Analysis) {
    static CORPORA: [OnceLock<(LogCollection, Analysis)>; 2] = [OnceLock::new(), OnceLock::new()];
    CORPORA[which].get_or_init(|| {
        let seed = 2401 + which as u64;
        let e2e = run_end_to_end(SimConfig::scaled(64, 2).with_seed(seed));
        (to_log_collection(&e2e.sim), e2e.analysis)
    })
}

fn assert_analyses_equal(parallel: &Analysis, serial: &Analysis) {
    assert_eq!(parallel.runs.len(), serial.runs.len(), "run count");
    for (p, s) in parallel.runs.iter().zip(&serial.runs) {
        assert_eq!(p, s, "run {:?} classified differently", s.run.apid);
    }
    assert_eq!(parallel.events, serial.events, "events");
    assert_eq!(parallel.coverage, serial.coverage, "coverage gaps");
    assert_eq!(parallel.metrics, serial.metrics, "metric set");
    assert_eq!(parallel.stats, serial.stats, "pipeline stats");
}

/// Corrupts a deterministic sample of lines, so the corrupt-line counting
/// paths (which differ per chunk in the parallel scan) are exercised too.
fn corrupt_some(logs: &mut LogCollection, fraction_pct: u64, rng: &mut impl Rng) {
    for lines in [
        &mut logs.syslog,
        &mut logs.hwerr,
        &mut logs.alps,
        &mut logs.torque,
        &mut logs.netwatch,
    ] {
        for line in lines.iter_mut() {
            if rng.random_range(0..100u64) < fraction_pct {
                let mut keep = line.len() / 2;
                while keep > 0 && !line.is_char_boundary(keep) {
                    keep -= 1;
                }
                line.truncate(keep);
            }
        }
    }
}

/// Every thread count gives the serial answer, byte for byte.
#[test]
fn thread_counts_agree_with_serial() {
    let (logs, _) = corpus(0);
    let serial = LogDiver::new().with_threads(1).analyze(logs);
    for threads in [2, 4, 8] {
        let parallel = LogDiver::new().with_threads(threads).analyze(logs);
        assert_analyses_equal(&parallel, &serial);
    }
}

/// The directory (streaming-parse) path agrees across thread counts too.
#[test]
fn analyze_dir_threads_agree_with_serial() {
    let (logs, _) = corpus(1);
    let dir = std::env::temp_dir().join(format!("logdiver-par-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, lines) in [
        ("messages.log", &logs.syslog),
        ("hwerr.log", &logs.hwerr),
        ("apsys.log", &logs.alps),
        ("torque.log", &logs.torque),
        ("netwatch.log", &logs.netwatch),
    ] {
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        std::fs::write(dir.join(name), text).unwrap();
    }
    let serial = LogDiver::new().with_threads(1).analyze_dir(&dir).unwrap();
    for threads in [2, 4, 8] {
        let parallel = LogDiver::new()
            .with_threads(threads)
            .analyze_dir(&dir)
            .unwrap();
        assert_analyses_equal(&parallel, &serial);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary corpus + arbitrary corruption + arbitrary thread count:
    /// parallel == serial, including the parse/filter accounting.
    #[test]
    fn parallel_equals_serial_for_arbitrary_collections(
        which in 0usize..2,
        threads in 2usize..=8,
        corrupt_pct in 0u64..30,
        rng_seed in 0u64..1_000,
    ) {
        let (logs, _) = corpus(which);
        let mut mutated = logs.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        corrupt_some(&mut mutated, corrupt_pct, &mut rng);
        let serial = LogDiver::new().with_threads(1).analyze(&mutated);
        let parallel = LogDiver::new().with_threads(threads).analyze(&mutated);
        prop_assert_eq!(&parallel.runs, &serial.runs);
        prop_assert_eq!(&parallel.events, &serial.events);
        prop_assert_eq!(&parallel.coverage, &serial.coverage);
        prop_assert_eq!(&parallel.metrics, &serial.metrics);
        prop_assert_eq!(&parallel.stats, &serial.stats);
    }
}

/// `with_threads(1)` and the plain constructor are the same pipeline — the
/// serial reference stored in the corpus came from the default path.
#[test]
fn default_is_serial() {
    let (logs, reference) = corpus(0);
    let explicit = LogDiver::new().with_threads(1).analyze(logs);
    assert_analyses_equal(&explicit, reference);
}
