//! The CLI's own smoke tests live in `crates/cli/tests/smoke.rs` (where the
//! binary path is available); this cross-crate test exercises the same
//! reproduce path through the library API to keep it covered here too.

use bw_sim::SimConfig;
use logdiver::report;
use logdiver_integration::run_end_to_end;

#[test]
fn full_report_renders_from_a_real_run() {
    let e2e = run_end_to_end(SimConfig::scaled(64, 2).with_seed(55));
    let text = report::full_report(&e2e.analysis.metrics, &e2e.analysis.stats);
    for needle in ["T2", "T3", "F1", "F2", "F3", "T4", "F6", "F5", "T5"] {
        assert!(text.contains(needle), "missing {needle} in report");
    }
}
