//! Durability bar for the replicated checkpoint store (ISSUE 7): under a
//! seeded chaos filesystem, killing the daemon at any record and resuming
//! with any single replica corrupted, torn, or absent must give exactly
//! the batch answer — and evicting idle tenants to the store at any point
//! (with transparent resurrection on their next PUSH) must too. Both run
//! under the same connection chaos as `serve_equivalence`.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use bw_faults::{chaos_transcripts, ChaosFs, ChaosStream, ConnChaosConfig, Connection};
use logdiver::{Analysis, LogCollection};
use logdiver_integration::{run_end_to_end, to_log_collection};
use logdiver_serve::{store, BudgetPolicy, ServeConfig, ServeCore};
use logdiver_stream::{Source, StreamConfig};
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
const REPLICAS: usize = 3;

/// Per-tenant corpora, generated once and shared across proptest cases.
fn corpus(which: usize) -> &'static (LogCollection, Analysis) {
    static CORPORA: [OnceLock<(LogCollection, Analysis)>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    CORPORA[which].get_or_init(|| {
        let seed = 7001 + which as u64;
        let e2e = run_end_to_end(bw_sim::SimConfig::scaled(64, 2).with_seed(seed));
        (to_log_collection(&e2e.sim), e2e.analysis)
    })
}

fn sources_of(logs: &LogCollection) -> [(Source, &Vec<String>); 5] {
    [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ]
}

fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// The smallest lateness under which no in-order line is late, across all
/// tenants (one fleet-wide `StreamConfig`).
fn fleet_lateness() -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for which in 0..TENANTS.len() {
        let (logs, _) = corpus(which);
        for (_, lines) in sources_of(logs) {
            let mut high: Option<Timestamp> = None;
            for line in lines {
                let Some(ts) = line_timestamp(line) else {
                    continue;
                };
                if let Some(h) = high {
                    worst = worst.max(h - ts);
                }
                high = Some(high.map_or(ts, |h| h.max(ts)));
            }
        }
    }
    worst + SimDuration::from_secs(1)
}

fn replica_dirs() -> Vec<PathBuf> {
    (0..REPLICAS)
        .map(|i| PathBuf::from(format!("/r{i}")))
        .collect()
}

fn serve_config(dirs: Vec<PathBuf>, checkpoint_every: u64, evict_after: u64) -> ServeConfig {
    ServeConfig {
        tenants_dirs: dirs,
        budget: BudgetPolicy {
            global_bytes: usize::MAX / 2,
            quota_bytes: usize::MAX / 4,
        },
        shards: 2,
        checkpoint_every,
        evict_after,
        stream: StreamConfig::default().with_lateness(fleet_lateness()),
        ..ServeConfig::default()
    }
}

/// One chaos stream per (tenant, source), starting at index `from`.
fn push_streams(from: &dyn Fn(&str, Source) -> u64) -> Vec<ChaosStream> {
    let mut streams = Vec::new();
    for (which, tenant) in TENANTS.iter().enumerate() {
        let (logs, _) = corpus(which);
        for (source, lines) in sources_of(logs) {
            let start = from(tenant, source) as usize;
            if start >= lines.len() {
                continue;
            }
            streams.push(ChaosStream {
                key: format!("{tenant}/{}", source.name()),
                commands: lines
                    .iter()
                    .enumerate()
                    .skip(start)
                    .map(|(i, line)| format!("PUSH {tenant} {} {i} {line}", source.name()))
                    .collect(),
            });
        }
    }
    streams
}

/// Feeds whole connections into the core in arbitrary byte chunks; every
/// complete line must be answered `OK`/`OK dup`.
fn deliver(core: &mut ServeCore, conns: &[Connection], rng: &mut StdRng) {
    for conn in conns {
        let id = core.open_conn();
        let mut off = 0;
        while off < conn.bytes.len() {
            let n = rng.random_range(1..=(conn.bytes.len() - off).min(1500));
            for resp in core.feed(id, &conn.bytes[off..off + n]) {
                assert!(resp.starts_with("OK"), "unexpected response: {resp}");
            }
            off += n;
        }
        if conn.closed {
            core.close_conn(id);
        }
    }
}

fn hello_cursor(core: &mut ServeCore, tenant: &str, source: Source) -> u64 {
    let resp = core.handle_line(&format!("HELLO {tenant}"));
    let accepted = resp
        .split("accepted=")
        .nth(1)
        .unwrap_or_else(|| panic!("bad HELLO response: {resp}"));
    let counts: Vec<u64> = accepted
        .split(',')
        .map(|c| c.parse().expect("cursor count"))
        .collect();
    counts[source.index()]
}

fn drain_and_compare(mut core: ServeCore) {
    for (which, tenant) in TENANTS.iter().enumerate() {
        let (_, batch) = corpus(which);
        let served = core
            .drain_tenant(tenant)
            .unwrap_or_else(|| panic!("tenant {tenant} missing at drain"));
        assert_eq!(served.runs, batch.runs, "tenant {tenant} runs");
        assert_eq!(served.events, batch.events, "tenant {tenant} events");
        assert_eq!(served.coverage, batch.coverage, "tenant {tenant} coverage");
        assert_eq!(served.metrics, batch.metrics, "tenant {tenant} metrics");
        assert_eq!(served.stats, batch.stats, "tenant {tenant} stats");
    }
}

/// How one replica is sabotaged between the kill and the restart.
#[derive(Debug, Clone, Copy)]
enum Sabotage {
    /// Flip bits in every checkpoint the replica holds (at-rest bit rot).
    Corrupt,
    /// Keep only a prefix of every checkpoint (torn write).
    Truncate,
    /// The whole replica directory is gone (disk replaced).
    Absent,
}

impl Sabotage {
    fn pick(which: usize) -> Sabotage {
        match which % 3 {
            0 => Sabotage::Corrupt,
            1 => Sabotage::Truncate,
            _ => Sabotage::Absent,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Kill at any record, sabotage any single replica (bit rot, torn
    /// write, or total loss), restart against the same chaos disk, replay
    /// from the HELLO cursors under fresh connection chaos: the drained
    /// analysis must equal batch for every tenant.
    #[test]
    fn kill_and_resume_with_one_replica_sabotaged_equals_batch(
        chaos_seed in 0u64..10_000,
        kill_frac in 0.0f64..1.0,
        victim in 0usize..REPLICAS,
        sabotage_pick in 0usize..3,
        replay_seed in 0u64..10_000,
    ) {
        let fs = Arc::new(ChaosFs::clean());
        let streams = push_streams(&|_, _| 0);
        let mut rng = StdRng::seed_from_u64(chaos_seed);
        let conns = chaos_transcripts(&streams, &ConnChaosConfig::default(), &mut rng);

        // Phase 1: ingest with a tight auto-checkpoint cadence, then die
        // abruptly partway through.
        let kill_at = ((conns.len() as f64) * kill_frac) as usize;
        {
            let mut core = ServeCore::with_fs(
                serve_config(replica_dirs(), 257, 0),
                fs.clone(),
            ).expect("core");
            let mut feed_rng = StdRng::seed_from_u64(chaos_seed ^ 0x5eed);
            deliver(&mut core, &conns[..kill_at.min(conns.len())], &mut feed_rng);
            if let Some(partial) = conns.get(kill_at) {
                let cut = partial.bytes.len() / 2;
                let id = core.open_conn();
                for resp in core.feed(id, &partial.bytes[..cut]) {
                    prop_assert!(resp.starts_with("OK"), "unexpected response: {}", resp);
                }
            }
            // SIGKILL: core dropped, no shutdown checkpoint.
        }

        // The victim replica is damaged while the daemon is down. The
        // ChaosFs clone shares the disk, so this is exactly what the
        // restarted daemon will see.
        let victim_dir = PathBuf::from(format!("/r{victim}"));
        let sabotage = Sabotage::pick(sabotage_pick);
        match sabotage {
            Sabotage::Corrupt => {
                for tenant in TENANTS {
                    fs.corrupt(&store::ckpt_path(&victim_dir, tenant));
                }
            }
            Sabotage::Truncate => {
                for tenant in TENANTS {
                    fs.truncate(&store::ckpt_path(&victim_dir, tenant), 17);
                }
            }
            Sabotage::Absent => fs.remove_tree(&victim_dir),
        }

        // Phase 2: restart on the same disk. Resume must pick the newest
        // VALID replica for each tenant and never trust the sabotaged one.
        let mut core = ServeCore::with_fs(
            serve_config(replica_dirs(), 257, 0),
            fs.clone(),
        ).expect("restart");
        let mut cursors = std::collections::HashMap::new();
        for tenant in TENANTS {
            for source in Source::ALL {
                cursors.insert((tenant, source.index()), hello_cursor(&mut core, tenant, source));
            }
        }
        let replays = push_streams(&|tenant: &str, source: Source| cursors[&(tenant, source.index())]);
        let mut rng = StdRng::seed_from_u64(replay_seed);
        let replay_conns = chaos_transcripts(&replays, &ConnChaosConfig::default(), &mut rng);
        let mut feed_rng = StdRng::seed_from_u64(replay_seed ^ 0x5eed);
        deliver(&mut core, &replay_conns, &mut feed_rng);
        drain_and_compare(core);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Evict every idle tenant to the store at an arbitrary record, then
    /// keep pushing: each PUSH resurrects its tenant transparently and
    /// the drained analysis equals the never-evicted (batch) answer.
    #[test]
    fn evict_and_resurrect_at_any_record_equals_batch(
        chaos_seed in 0u64..10_000,
        evict_frac in 0.0f64..1.0,
        evict_after in 1u64..6,
    ) {
        let fs = Arc::new(ChaosFs::clean());
        let streams = push_streams(&|_, _| 0);
        let mut rng = StdRng::seed_from_u64(chaos_seed);
        let conns = chaos_transcripts(&streams, &ConnChaosConfig::mild(), &mut rng);

        let mut core = ServeCore::with_fs(
            serve_config(replica_dirs(), 0, evict_after),
            fs.clone(),
        ).expect("core");
        let mut feed_rng = StdRng::seed_from_u64(chaos_seed ^ 0x5eed);

        // Deliver a prefix, then force enough idle sweeps that every
        // drained-queue tenant is checkpointed out of memory.
        let split = ((conns.len() as f64) * evict_frac) as usize;
        deliver(&mut core, &conns[..split.min(conns.len())], &mut feed_rng);
        for _ in 0..=evict_after + 1 {
            core.pump();
        }
        prop_assert!(
            core.tenant_names().is_empty(),
            "idle tenants not evicted: {:?}", core.tenant_names()
        );

        // The rest of the corpus resurrects each tenant mid-stream.
        deliver(&mut core, &conns[split.min(conns.len())..], &mut feed_rng);
        if split > 0 && !conns.is_empty() {
            prop_assert!(core.stats().evicted > 0, "nothing was ever evicted");
        }
        drain_and_compare(core);
    }
}
