//! The streaming engine's hard correctness bar: for *any* chunking of the
//! same logs — including chunk boundaries mid-burst — and any
//! within-lateness reordering inside a source, `StreamEngine::drain()`
//! must equal `LogDiver::analyze()` verdict-for-verdict.

use std::sync::OnceLock;

use bw_sim::SimConfig;
use logdiver::{Analysis, LogCollection};
use logdiver_integration::{run_end_to_end, to_log_collection};
use logdiver_stream::{Source, StreamConfig, StreamEngine};
use logdiver_types::{SimDuration, Timestamp};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Simulated corpora, generated once and shared across proptest cases.
fn corpus(which: usize) -> &'static (LogCollection, Analysis) {
    static CORPORA: [OnceLock<(LogCollection, Analysis)>; 2] = [OnceLock::new(), OnceLock::new()];
    CORPORA[which].get_or_init(|| {
        let seed = 1201 + which as u64;
        let e2e = run_end_to_end(SimConfig::scaled(64, 2).with_seed(seed));
        (to_log_collection(&e2e.sim), e2e.analysis)
    })
}

/// Moves each line at most `jitter` positions, simulating bounded
/// out-of-order arrival within one source.
fn jitter_lines(lines: &mut [String], jitter: usize, rng: &mut impl Rng) {
    if jitter == 0 || lines.len() < 2 {
        return;
    }
    for i in 0..lines.len() {
        let j = (i + rng.random_range(0..=jitter)).min(lines.len() - 1);
        lines.swap(i, j);
    }
}

fn line_timestamp(line: &str) -> Option<Timestamp> {
    line.get(..19)?.parse().ok()
}

/// The smallest allowed lateness under which no line in `lines` is late:
/// the largest backward timestamp jump, plus a second of slack.
fn needed_lateness(sources: &[&[String]]) -> SimDuration {
    let mut worst = SimDuration::ZERO;
    for lines in sources {
        let mut high: Option<Timestamp> = None;
        for line in *lines {
            let Some(ts) = line_timestamp(line) else {
                continue;
            };
            if let Some(h) = high {
                worst = worst.max(h - ts);
            }
            high = Some(high.map_or(ts, |h| h.max(ts)));
        }
    }
    worst + SimDuration::from_secs(1)
}

/// Pushes the five logs as interleaved chunks of `chunk` lines per source
/// per round — an arbitrary chunking of the arrival stream.
fn stream_in_chunks(logs: &LogCollection, chunk: usize, lateness: SimDuration) -> Analysis {
    let config = StreamConfig::default().with_lateness(lateness);
    let mut engine = StreamEngine::new(config);
    let sources = [
        (Source::Syslog, &logs.syslog),
        (Source::HwErr, &logs.hwerr),
        (Source::Alps, &logs.alps),
        (Source::Torque, &logs.torque),
        (Source::Netwatch, &logs.netwatch),
    ];
    let mut offsets = [0usize; 5];
    loop {
        let mut moved = false;
        for (i, (source, lines)) in sources.iter().enumerate() {
            let lo = offsets[i];
            let hi = (lo + chunk).min(lines.len());
            if lo < hi {
                engine
                    .push_batch(*source, lines[lo..hi].iter().cloned())
                    .unwrap();
                offsets[i] = hi;
                moved = true;
            } else if lo == lines.len() {
                engine.close(*source);
            }
        }
        if !moved {
            break;
        }
    }
    engine.drain()
}

fn in_order_lateness(logs: &LogCollection) -> SimDuration {
    needed_lateness(&[
        &logs.syslog,
        &logs.hwerr,
        &logs.alps,
        &logs.torque,
        &logs.netwatch,
    ])
}

fn assert_analyses_equal(streamed: &Analysis, batch: &Analysis) {
    assert_eq!(streamed.runs.len(), batch.runs.len(), "run count");
    for (s, b) in streamed.runs.iter().zip(&batch.runs) {
        assert_eq!(s, b, "run {:?} classified differently", b.run.apid);
    }
    assert_eq!(streamed.events, batch.events, "closed events");
    assert_eq!(streamed.coverage, batch.coverage, "coverage gaps");
    assert_eq!(streamed.metrics, batch.metrics, "metric set");
    assert_eq!(streamed.stats, batch.stats, "pipeline stats");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any chunk size, any corpus, any bounded reorder: drain == analyze.
    #[test]
    fn drain_equals_batch_for_any_chunking(
        which in 0usize..2,
        chunk in 1usize..64,
        jitter in 0usize..4,
        rng_seed in 0u64..1_000,
    ) {
        let (logs, batch) = corpus(which);
        let mut jittered = logs.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        for lines in [&mut jittered.syslog, &mut jittered.hwerr, &mut jittered.netwatch] {
            jitter_lines(lines, jitter, &mut rng);
        }
        let lateness = needed_lateness(&[
            &jittered.syslog,
            &jittered.hwerr,
            &jittered.alps,
            &jittered.torque,
            &jittered.netwatch,
        ]);
        let streamed = stream_in_chunks(&jittered, chunk, lateness);
        // The batch pipeline sorts entries itself, so the jittered logs give
        // it the same answer as the pristine ones.
        prop_assert_eq!(&streamed.runs, &batch.runs);
        prop_assert_eq!(&streamed.events, &batch.events);
        prop_assert_eq!(&streamed.coverage, &batch.coverage);
        prop_assert_eq!(&streamed.metrics, &batch.metrics);
        prop_assert_eq!(&streamed.stats, &batch.stats);
    }
}

/// Line-at-a-time arrival (chunk = 1) — the most adversarial chunking —
/// checked exhaustively against the batch result.
#[test]
fn line_at_a_time_equals_batch() {
    let (logs, batch) = corpus(0);
    let streamed = stream_in_chunks(logs, 1, in_order_lateness(logs));
    assert_analyses_equal(&streamed, batch);
}

/// A chunk boundary that splits an error burst and a PLACED/EXIT pair must
/// not change the coalesced events or the verdicts.
#[test]
fn mid_burst_chunk_boundaries_are_harmless() {
    let (logs, batch) = corpus(1);
    for chunk in [2, 3, 7, 17] {
        let streamed = stream_in_chunks(logs, chunk, in_order_lateness(logs));
        assert_analyses_equal(&streamed, batch);
    }
}

/// One big push per source (chunk = everything) is the degenerate chunking.
#[test]
fn single_chunk_equals_batch() {
    let (logs, batch) = corpus(0);
    let streamed = stream_in_chunks(logs, usize::MAX / 2, in_order_lateness(logs));
    assert_analyses_equal(&streamed, batch);
}
