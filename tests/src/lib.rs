//! Shared helpers for the cross-crate integration tests.

use bw_sim::{MemoryOutput, SimConfig, SimReport, Simulation};
use logdiver::{Analysis, LogCollection, LogDiver};

/// Bundle of everything an end-to-end test needs.
#[derive(Debug)]
pub struct EndToEnd {
    /// The simulator's raw output (logs + ground truth).
    pub sim: MemoryOutput,
    /// The simulator's aggregate report.
    pub report: SimReport,
    /// LogDiver's analysis of the raw logs.
    pub analysis: Analysis,
}

/// Converts simulator output into the tool's input: the five raw log files,
/// nothing else (ground truth stays on the simulator side).
pub fn to_log_collection(out: &MemoryOutput) -> LogCollection {
    let mut logs = LogCollection::new();
    logs.syslog = out.syslog.clone();
    logs.hwerr = out.hwerr.clone();
    logs.alps = out.alps.clone();
    logs.torque = out.torque.clone();
    logs.netwatch = out.netwatch.clone();
    logs
}

/// Runs a simulation and analyzes its logs with a default LogDiver.
pub fn run_end_to_end(config: SimConfig) -> EndToEnd {
    let mut sim_out = MemoryOutput::new();
    let report = Simulation::new(config)
        .expect("valid config")
        .run(&mut sim_out);
    let logs = to_log_collection(&sim_out);
    let analysis = LogDiver::new().analyze(&logs);
    EndToEnd {
        sim: sim_out,
        report,
        analysis,
    }
}
