//! Offline stand-in for `criterion`.
//!
//! Implements the benchmarking surface the workspace uses — `Criterion`,
//! `benchmark_group`, `Throughput`, `bench_function`, `criterion_group!`,
//! `criterion_main!` — with simple wall-clock median-of-samples timing and
//! plain-text reporting. No statistical analysis, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target time spent measuring each benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Applies a substring filter from the command line, as `cargo bench --
    /// <filter>` does.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" | "--quiet" | "--exact" => {}
                flag if flag.starts_with("--") => {
                    // Flags with values we don't honour (e.g. --save-baseline x).
                    let _ = args.next();
                }
                filter => self.filter = Some(filter.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let filter = self.filter.clone();
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        run_one(id, None, &filter, sample_size, measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.throughput,
            &self.criterion.filter.clone(),
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, first estimating a per-sample iteration count, then
    /// recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit in one sample slot?
        let calibration = Instant::now();
        let mut calls = 0u64;
        while calibration.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            calls += 1;
            if calls >= 1_000_000 {
                break;
            }
        }
        let per_call = calibration.elapsed().as_secs_f64() / calls as f64;
        let slot = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((slot / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    filter: &Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<40} (no samples — closure never called iter)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let lo = bencher.samples[0];
    let hi = bencher.samples[bencher.samples.len() - 1];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Throughput::Bytes(n) => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
    });
    println!(
        "{id:<40} time: [{} {} {}]{}",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        rate.unwrap_or_default()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}
