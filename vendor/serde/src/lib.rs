//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the real serde cannot be
//! fetched. This crate provides the same *surface* the workspace uses —
//! `Serialize` / `Deserialize` traits plus `#[derive(Serialize, Deserialize)]`
//! — implemented over a concrete JSON-like [`Value`] data model instead of
//! serde's visitor machinery. The companion `serde_json` stand-in renders
//! and parses [`Value`] as real JSON text, preserving serde's observable
//! conventions: structs are objects keyed by field name, newtype structs are
//! transparent, enums are externally tagged, `Option` maps to `null`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The concrete data model serialized values pass through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys (field declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, when this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The array elements, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (ints included); `null` coerces to NaN so
    /// non-finite floats round-trip.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError {
            message: msg.to_string(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a field in an object, with a typed missing-field error.
pub fn get_field<'a>(
    obj: &'a [(String, Value)],
    name: &str,
    ty: &str,
) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field {name} of {ty}")))
}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Reconstruction from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// primitive impls
// ---------------------------------------------------------------------------

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() { Value::Float(f) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        arr.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::custom("wrong tuple arity"));
                }
                Ok(($($t::deserialize_value(&arr[$idx])?,)+))
            }
        }
    )+};
}
tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object map"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_float_round_trip() {
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        let v = f64::NAN.serialize_value();
        assert!(v.is_null());
        assert_eq!(3.5f64.serialize_value(), Value::Float(3.5));
    }

    #[test]
    fn array_round_trip() {
        let a = [1u64, 2, 3];
        let v = a.serialize_value();
        let back: [u64; 3] = Deserialize::deserialize_value(&v).unwrap();
        assert_eq!(back, a);
    }
}
