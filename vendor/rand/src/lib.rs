//! Offline stand-in for `rand` 0.9.
//!
//! The build container has no crates.io access, so this crate re-creates the
//! slice of the rand API the workspace uses: [`RngCore`] (object-safe),
//! [`Rng`] with `random`/`random_range`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. `StdRng` here is
//! xoshiro256++ seeded via SplitMix64 — deterministic per seed, but *not*
//! bit-compatible with upstream rand's ChaCha12 `StdRng`.

/// Core random-number source. Object-safe: `&mut dyn RngCore` works.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl StandardUniform for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching rand's open-high convention.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform draw in `[0, span)` by rejection sampling (span > 0, span <= 2^64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= 1 << 64);
    if span == 1 << 64 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Reject draws from the final partial bucket to stay unbiased.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Samples a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[0].wrapping_add(self.s[3]).rotate_left(23));
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x1234_5678, 0x9ABC_DEF0];
            }
            StdRng { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice extensions mirroring rand's `SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[SampleRange::sample_from(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn super::RngCore = &mut rng;
        let f: f64 = dyn_rng.random();
        assert!((0.0..1.0).contains(&f));
        let v = dyn_rng.random_range(0..100usize);
        assert!(v < 100);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, sorted);
    }
}
