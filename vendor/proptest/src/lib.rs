//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: `proptest!` test blocks with
//! `pattern in strategy` bindings, numeric range strategies, tuple strategies,
//! `any::<T>()`, `collection::{vec, btree_set}`, regex-ish string strategies,
//! `prop_assert!`/`prop_assert_eq!`, and `ProptestConfig::with_cases`.
//! Cases are generated from a seed derived from the test name, so runs are
//! deterministic. There is no shrinking: a failing case reports its inputs
//! via the assertion message and case index instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    use super::*;

    /// A generator of values for one `pattern in strategy` binding.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            self.start + rng.random::<f32>() * (self.end - self.start)
        }
    }

    /// String literals act as regex-subset strategies (see [`regex`]).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            regex::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            regex::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
    );
}

pub mod arbitrary {
    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.random::<bool>()
        }
    }

    macro_rules! arb_int {
        ($($t:ty : $via:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random::<$via>() as $t
                }
            }
        )*};
    }
    arb_int!(u8: u32, u16: u32, u32: u32, u64: u64, usize: u64,
             i8: i32, i16: i32, i32: i32, i64: i64, isize: i64);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = (rng.random::<f64>() * 600.0 - 300.0).exp2();
            if rng.random::<bool>() {
                mag
            } else {
                -mag
            }
        }
    }

    /// Strategy wrapper returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::*;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = sample_len(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` targeting a size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets of `element` values with sizes at most `size.end - 1`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = sample_len(&self.size, rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded number
            // of times so narrow domains still terminate.
            for _ in 0..target.saturating_mul(4).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    fn sample_len(size: &Range<usize>, rng: &mut StdRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        rng.random_range(size.clone())
    }
}

pub mod regex {
    //! Tiny regex-subset string generator covering the patterns used in this
    //! workspace: literal characters, `[...]` classes with ranges, `\PC`
    //! (any non-control char), `.`, and the quantifiers `*`, `+`, `?`,
    //! `{n}`, `{m,n}`.

    use super::*;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
        AnyPrintable,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Generates one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let n = if piece.min == piece.max {
                piece.min
            } else {
                rng.random_range(piece.min..=piece.max)
            };
            for _ in 0..n {
                out.push(sample_atom(&piece.atom, rng));
            }
        }
        out
    }

    fn sample_atom(atom: &Atom, rng: &mut StdRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.random_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).unwrap_or(*lo);
                    }
                    pick -= span;
                }
                ranges[0].0
            }
            Atom::AnyPrintable => {
                // Mostly ASCII printable with occasional wider unicode.
                if rng.random_range(0..8u32) == 0 {
                    char::from_u32(rng.random_range(0xA1u32..0x2000)).unwrap_or('§')
                } else {
                    char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap()
                }
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => {
                            // `\PC` — not-a-control-character.
                            i += 1; // past 'P'
                            if chars.get(i) == Some(&'C') {
                                i += 1;
                            }
                            Atom::AnyPrintable
                        }
                        Some('d') => {
                            i += 1;
                            Atom::Class(vec![('0', '9')])
                        }
                        Some(&c) => {
                            i += 1;
                            Atom::Literal(match c {
                                'n' => '\n',
                                'r' => '\r',
                                't' => '\t',
                                other => other,
                            })
                        }
                        None => Atom::Literal('\\'),
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            i += 2;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    i += 1; // past ']'
                    Atom::Class(ranges)
                }
                '.' => {
                    i += 1;
                    Atom::AnyPrintable
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                Some('+') => {
                    i += 1;
                    (1, 16)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                    match close {
                        Some(close) => {
                            let inner: String = chars[i + 1..close].iter().collect();
                            i = close + 1;
                            if let Some((lo, hi)) = inner.split_once(',') {
                                (
                                    lo.trim().parse().unwrap_or(0),
                                    hi.trim().parse().unwrap_or(16),
                                )
                            } else {
                                let n = inner.trim().parse().unwrap_or(1);
                                (n, n)
                            }
                        }
                        None => (1, 1),
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }
}

pub mod test_runner {
    /// Per-block configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Deterministic per-test seed (FNV-1a over the test name).
pub fn seed_for(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Fresh generator for a named test.
pub fn rng_for(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)
     $(
         $(#[$meta:meta])+
         fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::rng_for(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $p = $crate::strategy::Strategy::generate(&$s, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {}): {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            $crate::seed_for(stringify!($name)),
                            err,
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No shrinking/rejection machinery: treat as a vacuous pass.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(v in 5u32..10, pair in (0i64..4, any::<bool>())) {
            prop_assert!((5..10).contains(&v));
            prop_assert!((0..4).contains(&pair.0));
        }

        #[test]
        fn collections(mut xs in crate::collection::vec(0u8..4, 1..60),
                       set in crate::collection::btree_set(0u32..512, 0..64)) {
            xs.sort_unstable();
            prop_assert!(!xs.is_empty() && xs.len() < 60);
            prop_assert!(set.len() < 64);
            prop_assert!(set.iter().all(|&x| x < 512));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn regex_subset(s in "[a-z]{2,8}", t in "2013-03-28 12:30:0[0-9]", u in "\\PC*") {
            prop_assert!(s.len() >= 2 && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.starts_with("2013-03-28 12:30:0"));
            prop_assert!(t.chars().last().unwrap().is_ascii_digit());
            prop_assert!(u.chars().all(|c| !c.is_control()));
        }
    }
}
